//! Release-mode stress of the streaming scan subsystem: long scans,
//! writers, and point readers hammering one store concurrently.
//!
//! Invariants exercised:
//!
//! * every scan yields strictly increasing keys (sorted, no duplicates)
//!   no matter how much churn runs beside it;
//! * a scan over the lsmkv backend is snapshot-consistent: all keys
//!   preloaded before any scanner starts are present in every drain;
//! * point reads keep completing (and succeeding) while large scans are
//!   in flight — the cooperative chunking means no reader can be starved
//!   behind a scan;
//! * every parked cursor is released once the iterators are gone.
//!
//! CI runs this file under `--release`; the op counts are sized so the
//! debug build still finishes in seconds on one core.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

use p2kvs::engine::LsmFactory;
use p2kvs::{KvsEngine, P2Kvs, P2KvsOptions};

const PRELOAD: usize = if cfg!(debug_assertions) { 1_500 } else { 6_000 };
const DRAINS_PER_SCANNER: usize = if cfg!(debug_assertions) { 4 } else { 10 };
const WRITES_PER_WRITER: usize = if cfg!(debug_assertions) { 1_000 } else { 4_000 };

fn open_store(workers: usize) -> P2Kvs<lsmkv::Db> {
    let mut opts = P2KvsOptions::with_workers(workers);
    opts.pin_workers = false;
    P2Kvs::open(LsmFactory::new(lsmkv::Options::for_test()), "scan-stress", opts).unwrap()
}

fn wait_no_active_scans<E: KvsEngine>(store: &P2Kvs<E>) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let active: u64 = store.snapshot().workers.iter().map(|w| w.active_scans).sum();
        if active == 0 {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "parked cursors were never released ({active} still active)"
        );
        thread::yield_now();
    }
}

#[test]
fn scanners_writers_and_point_readers_interleave() {
    let store = open_store(4);
    for i in 0..PRELOAD {
        store
            .put(format!("base{i:06}").as_bytes(), b"seed")
            .unwrap();
    }

    let stop = AtomicBool::new(false);
    let new_written = AtomicUsize::new(0);
    let point_reads = AtomicUsize::new(0);

    thread::scope(|s| {
        // Two full-store scanners: one entry-at-a-time, one paginated.
        for paginate in [false, true] {
            let store = &store;
            let stop = &stop;
            s.spawn(move || {
                for _ in 0..DRAINS_PER_SCANNER {
                    let mut it = store.iter().unwrap();
                    let mut last: Option<Vec<u8>> = None;
                    let mut base_seen = 0usize;
                    loop {
                        let batch = if paginate {
                            it.next_chunk(97).unwrap()
                        } else {
                            match it.next_entry().unwrap() {
                                Some(e) => vec![e],
                                None => Vec::new(),
                            }
                        };
                        if batch.is_empty() {
                            break;
                        }
                        for (k, _) in batch {
                            if let Some(prev) = &last {
                                assert!(*prev < k, "scan went backwards or duplicated a key");
                            }
                            if k.starts_with(b"base") {
                                base_seen += 1;
                            }
                            last = Some(k);
                        }
                    }
                    // lsmkv cursors are snapshot-consistent, so every
                    // preloaded key is visible in every drain regardless
                    // of the concurrent churn.
                    assert_eq!(base_seen, PRELOAD, "snapshot lost preloaded keys");
                }
                stop.store(true, Ordering::Release);
            });
        }

        // Two writers: fresh inserts plus overwrites of the preload.
        for w in 0..2usize {
            let store = &store;
            let new_written = &new_written;
            s.spawn(move || {
                for i in 0..WRITES_PER_WRITER {
                    store
                        .put(format!("new{w}-{i:06}").as_bytes(), b"fresh")
                        .unwrap();
                    new_written.fetch_add(1, Ordering::Relaxed);
                    store
                        .put(format!("base{:06}", i % PRELOAD).as_bytes(), b"overwritten")
                        .unwrap();
                }
            });
        }

        // Two point readers: every preloaded key must stay readable while
        // the scans run (chunked execution means no starvation).
        for r in 0..2usize {
            let store = &store;
            let stop = &stop;
            let point_reads = &point_reads;
            s.spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Acquire) {
                    let key = format!("base{:06}", i % PRELOAD);
                    assert!(
                        store.get(key.as_bytes()).unwrap().is_some(),
                        "preloaded key {key} vanished mid-run"
                    );
                    point_reads.fetch_add(1, Ordering::Relaxed);
                    i += 7;
                }
            });
        }
    });

    assert!(point_reads.load(Ordering::Relaxed) > 0, "readers never ran");
    wait_no_active_scans(&store);

    // Quiescent final drain: exactly the preload plus everything written.
    let total = store.iter().unwrap().map(|r| r.unwrap()).count();
    assert_eq!(total, PRELOAD + new_written.load(Ordering::Relaxed));
}

#[test]
fn bounded_range_scans_stay_bounded_under_churn() {
    let store = open_store(4);
    for i in 0..PRELOAD {
        store.put(format!("r{i:06}").as_bytes(), b"seed").unwrap();
    }
    let lo = PRELOAD / 4;
    let hi = 3 * PRELOAD / 4;
    let begin = format!("r{lo:06}").into_bytes();
    let end = format!("r{hi:06}").into_bytes();

    thread::scope(|s| {
        let writer = {
            let store = &store;
            s.spawn(move || {
                for i in 0..WRITES_PER_WRITER {
                    // Churn both inside and outside the scanned window.
                    store
                        .put(format!("q{i:06}").as_bytes(), b"outside")
                        .unwrap();
                    store
                        .put(format!("r{:06}", lo + i % (hi - lo)).as_bytes(), b"inside")
                        .unwrap();
                }
            })
        };
        for _ in 0..DRAINS_PER_SCANNER {
            let entries: Vec<_> = store
                .iter_range(&begin, &end)
                .unwrap()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(entries.len(), hi - lo, "range drain missed or grew keys");
            assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(entries.iter().all(|(k, _)| *k >= begin && *k < end));
        }
        writer.join().unwrap();
    });

    wait_no_active_scans(&store);
}

#[test]
fn dropped_iterators_release_cursors_mid_scan() {
    let store = open_store(2);
    for i in 0..PRELOAD {
        store.put(format!("d{i:06}").as_bytes(), b"v").unwrap();
    }
    // Open many iterators, consume a few entries, drop them mid-stream.
    for round in 0..20 {
        let mut it = store.iter().unwrap();
        for _ in 0..=round {
            it.next_entry().unwrap();
        }
        drop(it);
    }
    wait_no_active_scans(&store);
    // The store still works end to end afterwards.
    assert_eq!(
        store.iter().unwrap().map(|r| r.unwrap()).count(),
        PRELOAD
    );
}
