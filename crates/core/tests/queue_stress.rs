//! Stress and allocation tests for the lock-free accessing layer.
//!
//! These exercise exactly the guarantees the framework relies on:
//!
//! * every request whose `push` returned `Ok` completes **exactly once**,
//!   even when `close()` races producers mid-stream;
//! * OBM batches never cross a request-class boundary and never exceed
//!   the bound `M`;
//! * a full ring applies backpressure (bounded depth) instead of growing;
//! * the steady-state consumer loop performs **zero heap allocations**
//!   (verified with a counting global allocator);
//! * pooled completion slots are actually recycled.
//!
//! The tests drive `RequestQueue` directly (no engine) so they isolate
//! the accessing layer; CI additionally runs this file under `--release`
//! to shake out orderings the debug interleavings miss.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use p2kvs::queue::{PushError, RequestQueue};
use p2kvs::types::{Completion, Op, OpClass, Request, Response};

// ---------------------------------------------------------------------------
// Counting allocator (active only on threads that opt in)
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// Multi-producer stress with close() mid-stream
// ---------------------------------------------------------------------------

/// 8 producers × mixed op classes × `close()` mid-stream: every `Ok`
/// push completes exactly once, every `Err` push completes zero times,
/// and no OBM batch ever mixes classes or exceeds the bound.
#[test]
fn multi_producer_mixed_close_midstream_exactly_once() {
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 2_000;
    const BATCH_MAX: usize = 32;

    // Small capacity: forces wraparound and backpressure under the race.
    let queue = Arc::new(RequestQueue::with_capacity(64));
    // completions[i] counts how many times request i was finished.
    let completions: Arc<Vec<AtomicU8>> = Arc::new(
        (0..PRODUCERS * PER_PRODUCER)
            .map(|_| AtomicU8::new(0))
            .collect(),
    );
    // pushed_ok[i] = 1 iff push(i) returned Ok.
    let pushed_ok: Arc<Vec<AtomicU8>> = Arc::new(
        (0..PRODUCERS * PER_PRODUCER)
            .map(|_| AtomicU8::new(0))
            .collect(),
    );

    let consumer = {
        let queue = queue.clone();
        thread::spawn(move || {
            let mut batch = Vec::with_capacity(BATCH_MAX);
            let mut drained = 0usize;
            while queue.pop_batch_into(BATCH_MAX, &mut batch) {
                assert!(!batch.is_empty() && batch.len() <= BATCH_MAX);
                let class = batch[0].op.class();
                if class == OpClass::Solo {
                    assert_eq!(batch.len(), 1, "solo requests are never merged");
                }
                for req in &batch {
                    assert_eq!(req.op.class(), class, "batch crossed a class boundary");
                }
                drained += batch.len();
                for req in batch.drain(..) {
                    req.finish(Ok(Response::Done));
                }
            }
            drained
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = queue.clone();
            let completions = completions.clone();
            let pushed_ok = pushed_ok.clone();
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let id = p * PER_PRODUCER + i;
                    let op = match (p + i) % 4 {
                        0 | 1 => Op::Put {
                            key: format!("k{id}").into_bytes(),
                            value: b"v".to_vec(),
                        },
                        2 => Op::Get {
                            key: format!("k{id}").into_bytes(),
                        },
                        _ => Op::ScanOpen {
                            start: b"k".to_vec(),
                            end: None,
                            limit: 1,
                            max_bytes: usize::MAX,
                        },
                    };
                    let completions = completions.clone();
                    let req = Request::asynchronous(
                        op,
                        Box::new(move |_| {
                            completions[id].fetch_add(1, Ordering::Relaxed);
                        }),
                    );
                    if queue.push(req).is_ok() {
                        pushed_ok[id].store(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // Close somewhere in the middle of the stream.
    thread::sleep(Duration::from_millis(5));
    queue.close();

    for p in producers {
        p.join().unwrap();
    }
    let drained = consumer.join().unwrap();

    let mut accepted = 0usize;
    for id in 0..PRODUCERS * PER_PRODUCER {
        let ok = pushed_ok[id].load(Ordering::Relaxed) == 1;
        let completed = completions[id].load(Ordering::Relaxed);
        if ok {
            accepted += 1;
            assert_eq!(
                completed, 1,
                "request {id} accepted but completed {completed}×"
            );
        } else {
            assert_eq!(completed, 0, "request {id} rejected but still completed");
        }
    }
    assert_eq!(
        drained, accepted,
        "consumer drained exactly the accepted set"
    );
    assert!(accepted > 0, "close fired before anything was accepted");
    assert!(queue.is_empty());
}

/// Without a close, a sustained 8-producer run over a tiny ring delivers
/// everything exactly once (pure backpressure path, lots of laps).
#[test]
fn multi_producer_sustained_wraparound() {
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 5_000;
    let queue = Arc::new(RequestQueue::with_capacity(16));
    let done = Arc::new(AtomicUsize::new(0));

    let consumer = {
        let queue = queue.clone();
        thread::spawn(move || {
            let mut batch = Vec::with_capacity(32);
            let mut n = 0usize;
            while queue.pop_batch_into(32, &mut batch) {
                n += batch.len();
                for req in batch.drain(..) {
                    req.finish(Ok(Response::Done));
                }
            }
            n
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = queue.clone();
            let done = done.clone();
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let done = done.clone();
                    let req = Request::asynchronous(
                        Op::Put {
                            key: format!("p{p}i{i}").into_bytes(),
                            value: b"v".to_vec(),
                        },
                        Box::new(move |_| {
                            done.fetch_add(1, Ordering::Relaxed);
                        }),
                    );
                    queue.push(req).expect("queue not closed");
                }
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    queue.close();
    let drained = consumer.join().unwrap();
    assert_eq!(drained, PRODUCERS * PER_PRODUCER);
    assert_eq!(done.load(Ordering::Relaxed), PRODUCERS * PER_PRODUCER);
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

/// A full ring blocks producers instead of growing: with a slow consumer
/// the depth gauge stays (approximately) bounded by the capacity, and
/// every push still lands.
#[test]
fn backpressure_bounds_depth() {
    const CAP: usize = 8;
    const PUSHES: usize = 400;
    let queue = Arc::new(RequestQueue::with_capacity(CAP));

    let producer = {
        let queue = queue.clone();
        thread::spawn(move || {
            for i in 0..PUSHES {
                let req = Request::asynchronous(
                    Op::Put {
                        key: format!("{i}").into_bytes(),
                        value: b"v".to_vec(),
                    },
                    Box::new(|_| {}),
                );
                queue.push(req).unwrap();
            }
        })
    };

    let mut drained = 0;
    let mut batch = Vec::with_capacity(4);
    while drained < PUSHES {
        // The gauge is event-counted with relaxed atomics, so allow a
        // sliver of slack over the hard ring bound.
        assert!(
            queue.len() <= CAP + 2,
            "depth {} exceeded backpressure bound",
            queue.len()
        );
        assert!(queue.pop_batch_into(4, &mut batch));
        drained += batch.len();
        for req in batch.drain(..) {
            req.finish(Ok(Response::Done));
        }
        // A slow consumer: give producers time to hit the Full path.
        if drained % 64 == 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
    producer.join().unwrap();
    assert!(queue.is_empty());
    // And the non-blocking variant reports Full rather than waiting.
    for i in 0..CAP {
        queue
            .push(Request::asynchronous(
                Op::Get { key: vec![i as u8] },
                Box::new(|_| {}),
            ))
            .unwrap();
    }
    let extra = Request::asynchronous(Op::Get { key: b"x".to_vec() }, Box::new(|_| {}));
    assert!(matches!(queue.try_push(extra), Err(PushError::Full(_))));
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

/// The consumer loop — blocking batched pop with a reused `Vec` plus
/// request completion — performs no heap allocation at all.
#[test]
fn consumer_steady_state_allocates_nothing() {
    const REQUESTS: usize = 256;
    const BATCH_MAX: usize = 32;
    let queue = RequestQueue::with_capacity(512);

    // Producer side (allocations here are expected and not counted):
    // everything is enqueued up front, then the queue is closed, so the
    // consumer below never parks and never sees an empty ring.
    for i in 0..REQUESTS {
        let (req, waiter) = Request::sync(Op::Put {
            key: format!("k{i:04}").into_bytes(),
            value: b"v".to_vec(),
        });
        queue.push(req).ok().unwrap();
        // The waiter is intentionally dropped: completion stores the
        // result in the slot and the slot is freed when the last Arc
        // goes — no waiter ever parks, which is irrelevant to the
        // consumer-side allocation count.
        drop(waiter);
    }
    queue.close();

    let mut batch: Vec<Request> = Vec::with_capacity(BATCH_MAX);
    // Warm up one iteration (first pop primes nothing today, but keep
    // the measurement honest against future lazy init).
    assert!(queue.pop_batch_into(BATCH_MAX, &mut batch));
    let mut drained = batch.len();
    for req in batch.drain(..) {
        req.finish(Ok(Response::Done));
    }

    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    while queue.pop_batch_into(BATCH_MAX, &mut batch) {
        drained += batch.len();
        for req in batch.drain(..) {
            req.finish(Ok(Response::Done));
        }
    }
    COUNTING.with(|c| c.set(false));

    assert_eq!(drained, REQUESTS);
    assert_eq!(
        ALLOCS.load(Ordering::Relaxed),
        0,
        "steady-state consumer loop must not allocate"
    );
}

// ---------------------------------------------------------------------------
// Completion slot pooling
// ---------------------------------------------------------------------------

/// Sequential synchronous round-trips through a worker-style echo thread
/// reuse a handful of pooled completion slots instead of allocating one
/// per request.
#[test]
fn completion_slots_recycle_across_round_trips() {
    const ROUND_TRIPS: usize = 200;
    let queue = Arc::new(RequestQueue::new());
    let echo = {
        let queue = queue.clone();
        thread::spawn(move || {
            let mut batch = Vec::with_capacity(8);
            while queue.pop_batch_into(8, &mut batch) {
                for req in batch.drain(..) {
                    req.finish(Ok(Response::Done));
                }
            }
        })
    };

    let mut slots_seen = std::collections::HashSet::new();
    for i in 0..ROUND_TRIPS {
        let (req, waiter) = Request::sync(Op::Put {
            key: format!("rt{i}").into_bytes(),
            value: b"v".to_vec(),
        });
        if let Completion::Sync(slot) = &req.completion {
            slots_seen.insert(Arc::as_ptr(slot) as usize);
        }
        queue.push(req).ok().unwrap();
        assert_eq!(waiter.wait().unwrap(), Response::Done);
    }
    queue.close();
    echo.join().unwrap();

    // Recycling is opportunistic (a spin-woken waiter can race the
    // worker's Arc drop), so demand substantial — not perfect — reuse.
    assert!(
        slots_seen.len() < ROUND_TRIPS / 2,
        "expected pooled slots to be reused, saw {} distinct slots in {} round trips",
        slots_seen.len(),
        ROUND_TRIPS
    );
}

/// Waiters that outlive their thread's pool (cross-thread waits) still
/// complete correctly.
#[test]
fn cross_thread_wait_completes() {
    let queue = Arc::new(RequestQueue::new());
    let echo = {
        let queue = queue.clone();
        thread::spawn(move || {
            let mut batch = Vec::with_capacity(8);
            while queue.pop_batch_into(8, &mut batch) {
                // Delay past the waiter spin budget so it really parks.
                thread::sleep(Duration::from_millis(20));
                for req in batch.drain(..) {
                    req.finish(Ok(Response::Value(Some(b"v".to_vec()))));
                }
            }
        })
    };
    let mut waiters = Vec::new();
    for i in 0..8 {
        let (req, waiter) = Request::sync(Op::Get {
            key: format!("x{i}").into_bytes(),
        });
        queue.push(req).ok().unwrap();
        waiters.push(thread::spawn(move || waiter.wait()));
    }
    for w in waiters {
        assert_eq!(
            w.join().unwrap().unwrap(),
            Response::Value(Some(b"v".to_vec()))
        );
    }
    queue.close();
    echo.join().unwrap();
}
