//! Stress and allocation tests for the lock-free hot-record read cache.
//!
//! These exercise the guarantees the cache layer claims on top of the
//! 2D framework:
//!
//! * a cache **hit** completes on the calling thread with exactly one
//!   heap allocation — the returned value bytes (verified with a
//!   counting global allocator, same pattern as `queue_stress`);
//! * **read-your-writes** holds through the cache under concurrent
//!   writers, readers, and shard migrations: an acked `put` is visible
//!   to the writer's next `get`, and readers never observe a per-key
//!   version going backwards;
//! * the **byte budget** is enforced by CLOCK eviction without ever
//!   serving a stale or corrupt value.
//!
//! CI additionally runs this file under `--release` to shake out
//! orderings the debug interleavings miss.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};

// ---------------------------------------------------------------------------
// Counting allocator (active only on threads that opt in)
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn open_cached(workers: usize, cache_capacity: usize) -> P2Kvs<lsmkv::Db> {
    let mut opts = P2KvsOptions::with_workers(workers);
    opts.pin_workers = false;
    opts.cache_capacity = cache_capacity;
    P2Kvs::open(
        LsmFactory::new(lsmkv::Options::for_test()),
        "cache-stress",
        opts,
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Zero-overhead hit path
// ---------------------------------------------------------------------------

/// A cache hit performs exactly one heap allocation: the `Vec<u8>`
/// handed back to the caller. Probing, tag checks, the epoch pin, the
/// CLOCK reference bit, trace sampling, and the counters are all
/// allocation-free.
#[test]
fn cache_hits_allocate_only_the_value() {
    const HITS: usize = 256;
    let store = open_cached(2, 4 << 20);
    store.put(b"hot-key", &[7u8; 64]).unwrap();

    // Warm up: the first get is a miss that marks the doorkeeper, the
    // second is a miss that fills the cache, and the third pins this
    // thread's epoch slot (first pin registers TLS) and confirms the
    // entry is resident.
    assert_eq!(store.get(b"hot-key").unwrap().unwrap(), vec![7u8; 64]);
    assert_eq!(store.get(b"hot-key").unwrap().unwrap(), vec![7u8; 64]);
    assert_eq!(store.get(b"hot-key").unwrap().unwrap().len(), 64);
    let warm = store.metrics_snapshot();
    assert!(warm.counter("p2kvs_cache_hits").unwrap() >= 1, "not warm");

    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    for _ in 0..HITS {
        let v = store.get(b"hot-key").unwrap().unwrap();
        assert_eq!(v.len(), 64);
    }
    COUNTING.with(|c| c.set(false));

    assert_eq!(
        ALLOCS.load(Ordering::Relaxed),
        HITS,
        "hit path must allocate exactly the returned value"
    );
    let snap = store.metrics_snapshot();
    assert!(
        snap.counter("p2kvs_cache_hits").unwrap()
            >= warm.counter("p2kvs_cache_hits").unwrap() + HITS as u64,
        "measured loop was not served from the cache"
    );
}

// ---------------------------------------------------------------------------
// Coherence under concurrent writers, readers, and migrations
// ---------------------------------------------------------------------------

/// Tiny deterministic PRNG so the readers need no external crate.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Writers own disjoint key ranges and bump a per-key version each
/// round; after every acked `put` the writer immediately re-reads the
/// key and must see its own write (the ack invalidates the cache before
/// completing). Readers assert per-key versions never go backwards
/// (a stale cached value would). A migrator thread shuffles shard
/// ownership the whole time, forcing cache flushes on both halves of
/// every handoff.
#[test]
fn concurrent_reads_writes_and_migrations_stay_coherent() {
    const WRITERS: usize = 2;
    const KEYS_PER_WRITER: usize = 48;
    const ROUNDS: u64 = 20;
    const READERS: usize = 2;
    const READS: usize = 2_500;

    let store = Arc::new(open_cached(4, 256 << 10));
    let stop = Arc::new(AtomicBool::new(false));

    let key_of = |w: usize, i: usize| format!("w{w}-k{i:03}").into_bytes();

    // Seed every key at version 0 so readers never hit a missing key.
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            store.put(&key_of(w, i), b"00000000").unwrap();
        }
    }

    let migrator = {
        let store = store.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let workers = store.workers();
            let mut rot = 1usize;
            let mut moves = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for s in 0..store.shards() {
                    if store.migrate_shard(s, (s + rot) % workers).is_ok() {
                        moves += 1;
                    }
                }
                rot += 1;
                thread::sleep(std::time::Duration::from_millis(2));
            }
            moves
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = store.clone();
            thread::spawn(move || {
                for round in 1..=ROUNDS {
                    for i in 0..KEYS_PER_WRITER {
                        let key = key_of(w, i);
                        let val = format!("{round:08}").into_bytes();
                        store.put(&key, &val).unwrap();
                        // Read-your-writes: nobody else writes this key,
                        // so the ack means this exact version is visible.
                        let got = store.get(&key).unwrap().unwrap();
                        assert_eq!(got, val, "writer {w} lost its own write to {i}");
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let store = store.clone();
            thread::spawn(move || {
                let mut seed = 0x9E3779B9u64.wrapping_mul(r as u64 + 1);
                let mut last_seen: HashMap<(usize, usize), u64> = HashMap::new();
                for _ in 0..READS {
                    let w = (lcg(&mut seed) as usize) % WRITERS;
                    let i = (lcg(&mut seed) as usize) % KEYS_PER_WRITER;
                    let v = store.get(&key_of(w, i)).unwrap().unwrap();
                    let version: u64 = std::str::from_utf8(&v).unwrap().parse().unwrap();
                    let floor = last_seen.entry((w, i)).or_insert(0);
                    assert!(
                        version >= *floor,
                        "key w{w}-k{i} went backwards: {version} after {floor}"
                    );
                    *floor = version;
                }
            })
        })
        .collect();

    for h in writers {
        h.join().unwrap();
    }
    for h in readers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let moves = migrator.join().unwrap();
    assert!(moves > 0, "migrator never migrated — test lost its teeth");

    // Final model: every key holds its last written version, read both
    // through the cache and (after the first read refills) from it.
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            let want = format!("{ROUNDS:08}").into_bytes();
            assert_eq!(store.get(&key_of(w, i)).unwrap().unwrap(), want);
            assert_eq!(store.get(&key_of(w, i)).unwrap().unwrap(), want);
        }
    }
    let snap = store.metrics_snapshot();
    assert!(snap.counter("p2kvs_cache_invalidations").unwrap() > 0);
    assert!(snap.counter("p2kvs_cache_hits").unwrap() > 0);
}

// ---------------------------------------------------------------------------
// Byte budget under pressure
// ---------------------------------------------------------------------------

/// A working set ~3× the cache budget forces CLOCK eviction; every read
/// still returns the correct bytes and the resident-bytes gauge stays
/// under the configured capacity.
#[test]
fn eviction_under_pressure_preserves_correctness() {
    const KEYS: usize = 192;
    let store = open_cached(2, 64 << 10);
    let value_of = |i: usize| {
        let mut v = vec![0u8; 1024];
        v[..8].copy_from_slice(&(i as u64).to_le_bytes());
        v
    };
    for i in 0..KEYS {
        store.put(format!("big{i:04}").as_bytes(), &value_of(i)).unwrap();
    }
    for pass in 0..2 {
        for i in 0..KEYS {
            let v = store.get(format!("big{i:04}").as_bytes()).unwrap().unwrap();
            assert_eq!(v, value_of(i), "pass {pass} key {i}");
        }
    }
    let snap = store.metrics_snapshot();
    assert!(
        snap.counter("p2kvs_cache_evictions").unwrap() > 0,
        "working set never overflowed the budget"
    );
    let bytes = snap.gauge("p2kvs_cache_bytes").unwrap();
    assert!(
        bytes <= (64 << 10) as f64,
        "resident bytes {bytes} exceed the configured budget"
    );
    assert!(snap.counter("p2kvs_cache_fills").unwrap() > 0);
}
