//! Release-mode stress of the parallel, queue-aware compaction path:
//! concurrent background compaction jobs with key-range subcompactions
//! on a four-queue device, hammered by writers, overwriters, deleters,
//! and point readers.
//!
//! Invariants exercised:
//!
//! * every key reads back exactly its last written value once the churn
//!   stops — overlapping subcompactions must never resurrect an
//!   overwritten version or drop a live key behind a tombstone;
//! * a full scan after the run is sorted, duplicate-free, and matches
//!   the oracle key count exactly;
//! * the run really did compact (nonzero compaction traffic) and the
//!   queue-affine placement really did spread output across submission
//!   queues — the stress is not silently running the serial path;
//! * a serial single-queue store fed the same operation sequence
//!   converges to byte-identical logical contents.
//!
//! CI runs this file under `--release`; the op counts are sized so the
//! debug build still finishes in seconds on one core.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::{DeviceProfile, EnvRef, SimEnv};

const KEYS_PER_WRITER: usize = if cfg!(debug_assertions) { 400 } else { 1_500 };
const ROUNDS_PER_WRITER: usize = if cfg!(debug_assertions) { 4 } else { 10 };
const WRITERS: usize = 4;
const QUEUES: usize = 4;

fn key_of(writer: usize, i: usize) -> Vec<u8> {
    format!("w{writer}-k{i:06}").into_bytes()
}

/// Values carry the (writer, key, round) identity plus padding so the
/// tree takes real bytes and compactions actually cascade.
fn value_of(writer: usize, i: usize, round: usize) -> Vec<u8> {
    let mut v = format!("v{writer}-{i:06}-r{round:03}-").into_bytes();
    v.resize(128, b'.');
    v
}

/// Tiny memtables and files over an instant multi-queue device: the
/// churn below rolls the tree through hundreds of flushes and
/// multi-level compactions in seconds, with parallel jobs and four-way
/// subcompactions racing the foreground traffic.
fn churn_options(env: EnvRef, threads: usize, subcompactions: usize) -> lsmkv::Options {
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 16 << 10;
    lsm.max_immutable_memtables = 2;
    // Files much smaller than levels so `partition_bounds` has real key
    // boundaries to split subcompactions on.
    lsm.target_file_size = 4 << 10;
    lsm.base_level_size = 16 << 10;
    lsm.level_multiplier = 4;
    lsm.l0_compaction_trigger = 2;
    lsm.l0_slowdown_trigger = 6;
    lsm.l0_stop_trigger = 10;
    lsm.sync = lsmkv::SyncPolicy::Buffered;
    lsm.compaction_threads = threads;
    lsm.subcompactions = subcompactions;
    lsm
}

fn open_store(name: &str, queues: usize, threads: usize, subcompactions: usize) -> P2Kvs<lsmkv::Db> {
    let env: EnvRef = Arc::new(SimEnv::with_profile(
        DeviceProfile::instant().with_queues(queues),
    ));
    let mut opts = P2KvsOptions::with_workers(WRITERS);
    opts.pin_workers = false;
    opts.shards = WRITERS;
    opts.cache_capacity = 0;
    P2Kvs::open(LsmFactory::new(churn_options(env, threads, subcompactions)), name, opts).unwrap()
}

/// Order-independent fold over logical contents (summed per-entry FNV),
/// insensitive to scan order and SST layout.
fn contents_fold(entries: &[(Vec<u8>, Vec<u8>)]) -> u64 {
    let fnv = |mut h: u64, bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    };
    let mut fold = 0u64;
    for (k, v) in entries {
        fold = fold.wrapping_add(fnv(fnv(0xcbf29ce484222325, k), v));
    }
    fold
}

#[test]
fn parallel_subcompactions_survive_concurrent_churn() {
    let store = open_store("comp-stress", QUEUES, 3, 4);

    // Preload every writer's slice so point readers always have a target.
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            store.put(&key_of(w, i), &value_of(w, i, 0)).unwrap();
        }
    }

    let stop = AtomicBool::new(false);
    let point_reads = AtomicUsize::new(0);
    thread::scope(|s| {
        // Each writer owns a disjoint key slice and rewrites it round by
        // round, deleting a sliding third of the slice and restoring it
        // the next round — so compactions constantly merge overwrites
        // and tombstones from every shard at once.
        for w in 0..WRITERS {
            let store = &store;
            s.spawn(move || {
                for round in 1..=ROUNDS_PER_WRITER {
                    for i in 0..KEYS_PER_WRITER {
                        if (i + round) % 3 == 0 && round < ROUNDS_PER_WRITER {
                            store.delete(&key_of(w, i)).unwrap();
                        } else {
                            store.put(&key_of(w, i), &value_of(w, i, round)).unwrap();
                        }
                    }
                }
            });
        }

        // Two point readers walk foreign slices while compactions churn:
        // a key is either absent (deleted this round) or carries a value
        // stamped with its own identity — never a torn or foreign value.
        for r in 0..2usize {
            let store = &store;
            let stop = &stop;
            let point_reads = &point_reads;
            s.spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Acquire) {
                    let w = i % WRITERS;
                    let k = i % KEYS_PER_WRITER;
                    if let Some(v) = store.get(&key_of(w, k)).unwrap() {
                        let prefix = format!("v{w}-{k:06}-r");
                        assert!(
                            v.starts_with(prefix.as_bytes()),
                            "key w{w}-k{k} read a foreign value"
                        );
                    }
                    point_reads.fetch_add(1, Ordering::Relaxed);
                    i += 13;
                }
            });
        }

        // Writers finish, then release the readers.
        while point_reads.load(Ordering::Relaxed) == 0 {
            thread::yield_now();
        }
        // The scope joins writer threads before readers see `stop`, so
        // flip it from a dedicated watcher once writers are done.
        let store = &store;
        let stop = &stop;
        s.spawn(move || {
            // Writers are the first WRITERS spawns; simplest determinism:
            // poll until every slice reads back its final round somewhere.
            loop {
                let settled = (0..WRITERS).all(|w| {
                    store
                        .get(&key_of(w, KEYS_PER_WRITER - 1))
                        .unwrap()
                        .map(|v| v.starts_with(format!("v{w}-{:06}-r{ROUNDS_PER_WRITER:03}", KEYS_PER_WRITER - 1).as_bytes()))
                        .unwrap_or(false)
                });
                if settled {
                    break;
                }
                thread::yield_now();
            }
            stop.store(true, Ordering::Release);
        });
    });
    assert!(point_reads.load(Ordering::Relaxed) > 0, "readers never ran");

    // Final oracle check: the last round writes every key (no deletes),
    // so all slices must be complete with round-stamped values.
    let entries = store.range(b"", &[0xffu8; 16]).unwrap();
    assert_eq!(entries.len(), WRITERS * KEYS_PER_WRITER, "scan lost or grew keys");
    assert!(entries.windows(2).all(|p| p[0].0 < p[1].0), "scan unsorted");
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            let v = store.get(&key_of(w, i)).unwrap().expect("final-round key missing");
            assert_eq!(v, value_of(w, i, ROUNDS_PER_WRITER));
        }
    }

    // The run must have exercised the parallel path, not degenerated:
    // real compaction traffic, spread across more than one queue.
    let snap = store.metrics_snapshot();
    let compaction_bytes = snap
        .counters
        .iter()
        .find(|(n, _)| n == "p2kvs_device_compaction_bytes_total")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(compaction_bytes > 0, "the stress never compacted");
    let queues_active = (0..QUEUES)
        .filter(|q| {
            snap.counters
                .iter()
                .any(|(n, v)| n == &format!("p2kvs_device_q{q}_bytes_written_total") && *v > 0)
        })
        .count();
    assert!(
        queues_active >= 2,
        "affinity routed all traffic to one queue ({queues_active} active)"
    );
    store.close();
}

#[test]
fn parallel_and_serial_compaction_converge_identically() {
    // One deterministic single-threaded op sequence, replayed into a
    // parallel multi-queue store and a serial single-queue store; the
    // logical contents must be byte-identical however the background
    // work was scheduled and placed.
    let mut folds = Vec::new();
    for (name, queues, threads, subs) in
        [("conv-par", QUEUES, 3, 4), ("conv-ser", 1, 1, 1)]
    {
        let store = open_store(name, queues, threads, subs);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 16
        };
        for _ in 0..(WRITERS * KEYS_PER_WRITER * 2) {
            let w = (next() % WRITERS as u64) as usize;
            let i = (next() % KEYS_PER_WRITER as u64) as usize;
            match next() % 10 {
                0 => store.delete(&key_of(w, i)).unwrap(),
                r => store.put(&key_of(w, i), &value_of(w, i, r as usize)).unwrap(),
            }
        }
        let entries = store.range(b"", &[0xffu8; 16]).unwrap();
        folds.push((entries.len(), contents_fold(&entries)));
        store.close();
    }
    assert_eq!(
        folds[0], folds[1],
        "parallel and serial compaction diverged: {folds:?}"
    );
}
