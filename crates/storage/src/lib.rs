//! Storage substrate: the `Env` file abstraction and simulated devices.
//!
//! The paper evaluates p2KVS on three physical devices (a 10 TB HDD, a SATA
//! SSD, and an Intel Optane 905p NVMe SSD). This reproduction has none of
//! that hardware, so — per the substitution rule in `DESIGN.md` — every
//! engine in the workspace performs its file IO through the [`Env`] trait,
//! which has three implementations:
//!
//! * [`MemEnv`] — an in-memory filesystem with no timing model; used by unit
//!   tests that only care about correctness.
//! * [`SimEnv`] — [`MemEnv`] plus a [`DeviceModel`]: every read/write/sync
//!   charges a service time computed from per-IO base latency, seek penalty,
//!   bandwidth, and a bounded number of internal channels. This is what the
//!   benchmark harness runs on, with profiles calibrated to the paper's
//!   devices ([`DeviceModel::hdd`], [`DeviceModel::sata_ssd`],
//!   [`DeviceModel::nvme_optane`]).
//! * [`StdEnv`] — passthrough to the real filesystem, for running the stack
//!   on an actual disk.
//!
//! All implementations share [`IoStats`]: byte and operation counters plus
//! device busy time, from which the harness derives IO amplification
//! (Fig 12b), bandwidth utilization (Figs 4, 5b, 12c, 21a), and the
//! compaction/flush traffic split.

pub mod device;
pub mod env;
pub mod fault;
pub mod ioqueue;
pub mod mem;
pub mod sim;
pub mod stats;
pub mod stdfs;

pub use device::{DeviceModel, DeviceProfile, QueueDepthSnapshot};
pub use env::{Env, FaultHook, RandomAccessFile, RandomRwFile, SequentialFile, WritableFile};
pub use fault::{FaultEvent, FaultPlan, FaultyEnv};
pub use ioqueue::{
    resolve_queue, set_thread_io_queue, thread_io_queue, QueueId, QueueScope, MAX_QUEUES,
};
pub use mem::{MemEnv, MemFs};
pub use sim::SimEnv;
pub use stats::{IoClass, IoStats, IoStatsSnapshot, QueueIoSnapshot};
pub use stdfs::StdEnv;

use std::sync::Arc;

/// A shared, dynamically typed environment handle.
pub type EnvRef = Arc<dyn Env>;

/// Convenience: an in-memory env with no timing model.
pub fn mem_env() -> EnvRef {
    Arc::new(MemEnv::new())
}

/// Convenience: a simulated env over the given device profile.
pub fn sim_env(profile: DeviceProfile) -> Arc<SimEnv> {
    Arc::new(SimEnv::new(DeviceModel::from_profile(profile)))
}
