//! Submission-queue identities and thread-affine queue selection.
//!
//! The multi-queue device model ([`crate::DeviceModel`]) services each
//! submission queue on its own timeline, so *which* queue an IO lands on
//! decides what it contends with. Queue selection is resolved per
//! operation, in priority order:
//!
//! 1. an explicit per-file pin ([`crate::Env::new_writable_on`] and
//!    friends) — the placement API compaction uses to spread
//!    subcompaction outputs,
//! 2. the calling thread's ambient queue ([`set_thread_io_queue`]) — the
//!    affinity API: each p2KVS worker pins its queue once at spawn and
//!    every WAL append or engine read issued from that thread rides it,
//! 3. a deterministic per-file default (`file_id % queues`) so unhinted
//!    traffic still spreads instead of piling onto queue 0.
//!
//! Resolving at operation time (not file-open time) means a WAL handle
//! follows its shard across an ownership migration for free: the new
//! owning worker's ambient queue takes over on its first append.

use std::cell::Cell;

/// Index of a device submission queue, `0..queues`.
pub type QueueId = usize;

/// Hard bound on modeled submission queues. Per-queue statistics are
/// fixed-size arrays of this length so snapshots stay `Copy`; device
/// profiles clamp their queue count to it.
pub const MAX_QUEUES: usize = 16;

thread_local! {
    /// The calling thread's ambient submission queue, if pinned.
    static AMBIENT_QUEUE: Cell<Option<QueueId>> = const { Cell::new(None) };
}

/// Pins (or with `None` clears) the calling thread's ambient IO queue.
/// Every subsequent un-pinned file operation from this thread resolves
/// to it. Returns the previous value.
pub fn set_thread_io_queue(queue: Option<QueueId>) -> Option<QueueId> {
    AMBIENT_QUEUE.with(|q| q.replace(queue))
}

/// The calling thread's ambient IO queue, if one is pinned.
pub fn thread_io_queue() -> Option<QueueId> {
    AMBIENT_QUEUE.with(|q| q.get())
}

/// RAII scope that pins the ambient queue and restores the previous
/// value on drop — for code that borrows a queue for one job (a
/// subcompaction, a flush) on a thread it does not own.
pub struct QueueScope {
    prev: Option<QueueId>,
}

impl QueueScope {
    /// Enters a scope with the ambient queue set to `queue`.
    pub fn enter(queue: QueueId) -> QueueScope {
        QueueScope {
            prev: set_thread_io_queue(Some(queue)),
        }
    }

    /// Enters a scope with the ambient queue set (or cleared) to `queue`.
    pub fn enter_opt(queue: Option<QueueId>) -> QueueScope {
        QueueScope {
            prev: set_thread_io_queue(queue),
        }
    }
}

impl Drop for QueueScope {
    fn drop(&mut self) {
        set_thread_io_queue(self.prev);
    }
}

/// Resolves the effective queue for one operation on a device with
/// `queues` submission queues: explicit file pin, then the thread's
/// ambient queue, then the per-file default. Always in `0..queues`.
pub fn resolve_queue(pin: Option<QueueId>, file_id: u64, queues: usize) -> QueueId {
    let queues = queues.clamp(1, MAX_QUEUES);
    pin.or_else(thread_io_queue)
        .unwrap_or(file_id as usize)
        % queues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_queue_is_thread_local() {
        set_thread_io_queue(Some(3));
        assert_eq!(thread_io_queue(), Some(3));
        let other = std::thread::spawn(|| thread_io_queue()).join().unwrap();
        assert_eq!(other, None, "ambient pin must not leak across threads");
        set_thread_io_queue(None);
    }

    #[test]
    fn scope_restores_previous_pin() {
        set_thread_io_queue(Some(1));
        {
            let _g = QueueScope::enter(5);
            assert_eq!(thread_io_queue(), Some(5));
            {
                let _g2 = QueueScope::enter_opt(None);
                assert_eq!(thread_io_queue(), None);
            }
            assert_eq!(thread_io_queue(), Some(5));
        }
        assert_eq!(thread_io_queue(), Some(1));
        set_thread_io_queue(None);
    }

    #[test]
    fn resolution_priority_pin_ambient_default() {
        let _g = QueueScope::enter(2);
        // Pin wins over ambient.
        assert_eq!(resolve_queue(Some(1), 99, 4), 1);
        // Ambient wins over the per-file default.
        assert_eq!(resolve_queue(None, 99, 4), 2);
        drop(_g);
        // Default spreads by file id, modulo the queue count.
        assert_eq!(resolve_queue(None, 7, 4), 3);
        assert_eq!(resolve_queue(None, 8, 4), 0);
        // Everything reduces mod queues; single queue maps all to 0.
        assert_eq!(resolve_queue(Some(9), 7, 4), 1);
        assert_eq!(resolve_queue(Some(3), 7, 1), 0);
    }
}
