//! The `Env` trait: the filesystem surface every engine is written against.
//!
//! Modeled on LevelDB's `Env`, trimmed to what LSM/B-tree engines actually
//! need: append-only writable files (WAL, SSTs, manifests), positional
//! random-access reads (SST blocks, slab pages), sequential reads
//! (recovery), and a handful of namespace operations.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::fault::FaultEvent;
use crate::ioqueue::QueueId;
use crate::stats::IoStatsSnapshot;

/// Observer invoked by fault-injecting environments whenever a planned
/// fault fires (see [`crate::FaultyEnv`]). Called after the event is
/// recorded, outside any internal lock, on the faulting thread.
pub type FaultHook = Arc<dyn Fn(&FaultEvent) + Send + Sync>;

/// An append-only file handle (WAL segment, SST under construction, ...).
pub trait WritableFile: Send {
    /// Appends `data` to the end of the file (buffered; not yet durable).
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Pushes buffered data to the device without a durability barrier.
    fn flush(&mut self) -> io::Result<()>;

    /// Makes all appended data durable (fsync semantics).
    fn sync(&mut self) -> io::Result<()>;

    /// Current file length in bytes, including buffered data.
    fn len(&self) -> u64;

    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A positional, shareable read handle.
pub trait RandomAccessFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes at `offset`, or fails with
    /// `UnexpectedEof` if the file is shorter.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// File length in bytes.
    fn len(&self) -> u64;

    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A forward-only read handle used for recovery scans.
pub trait SequentialFile: Send {
    /// Reads up to `buf.len()` bytes, returning the number read (0 at EOF).
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
}

/// A read-write handle supporting in-place positional writes (KVell-style
/// slab slot updates). Writes past the end extend the file.
pub trait RandomRwFile: Send {
    /// Reads exactly `buf.len()` bytes at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes `data` at `offset`, extending the file if needed. The write
    /// is durable once the call returns (single-slot commit semantics).
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Current file length in bytes.
    fn len(&self) -> u64;

    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The filesystem abstraction.
///
/// Implementations must be safe to share across threads; all engines hold an
/// `Arc<dyn Env>`.
pub trait Env: Send + Sync {
    /// Creates (truncating) a writable file at `path`.
    fn new_writable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>>;

    /// Opens an existing writable file for append, creating it if absent.
    fn new_appendable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>>;

    /// Creates (truncating) a writable file whose IOs are pinned to device
    /// submission queue `queue` — the placement API. The pin outranks the
    /// calling thread's ambient queue for every operation on the returned
    /// handle. Environments without a device model ignore the hint; the
    /// default delegates to [`Env::new_writable`].
    fn new_writable_on(&self, path: &Path, queue: QueueId) -> io::Result<Box<dyn WritableFile>> {
        let _ = queue;
        self.new_writable(path)
    }

    /// Opens a file for append with its IOs pinned to submission queue
    /// `queue`; see [`Env::new_writable_on`].
    fn new_appendable_on(&self, path: &Path, queue: QueueId) -> io::Result<Box<dyn WritableFile>> {
        let _ = queue;
        self.new_appendable(path)
    }

    /// Opens `path` for positional reads.
    fn new_random_access(&self, path: &Path) -> io::Result<Box<dyn RandomAccessFile>>;

    /// Opens `path` for sequential reads.
    fn new_sequential(&self, path: &Path) -> io::Result<Box<dyn SequentialFile>>;

    /// Opens (creating if absent) `path` for in-place positional writes.
    fn new_random_rw(&self, path: &Path) -> io::Result<Box<dyn RandomRwFile>>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Lists the direct children of directory `path` (file names only).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Creates `path` and all missing parents as directories.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes directory `path` and everything under it.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Size of the file at `path` in bytes.
    fn file_size(&self, path: &Path) -> io::Result<u64>;

    /// Point-in-time IO statistics for this environment.
    fn io_stats(&self) -> IoStatsSnapshot;

    /// Registers an observer for injected-fault firings. The default is
    /// a no-op: only fault-injecting environments ([`crate::FaultyEnv`])
    /// produce events. Lets observability layers holding only an
    /// `Arc<dyn Env>` subscribe without downcasting.
    fn install_fault_hook(&self, _hook: FaultHook) {}

    /// Fraction of the device's aggregate service capacity used since
    /// creation, when this environment models a device
    /// ([`crate::SimEnv`]); `None` for unmodeled environments.
    fn device_utilization(&self) -> Option<f64> {
        None
    }

    /// Number of device submission queues this environment models. Unhinted
    /// IO from a thread with no ambient queue spreads across `0..queue_count`
    /// by file id; environments without a device model report 1.
    fn queue_count(&self) -> usize {
        1
    }
}

/// Reads the entire file at `path` into a `Vec<u8>`.
pub fn read_all(env: &dyn Env, path: &Path) -> io::Result<Vec<u8>> {
    let size = env.file_size(path)? as usize;
    let file = env.new_random_access(path)?;
    let mut buf = vec![0u8; size];
    if size > 0 {
        file.read_at(0, &mut buf)?;
    }
    Ok(buf)
}

/// Writes `data` as the full contents of `path` and syncs it.
pub fn write_all(env: &dyn Env, path: &Path, data: &[u8]) -> io::Result<()> {
    let mut f = env.new_writable(path)?;
    f.append(data)?;
    f.sync()?;
    Ok(())
}
