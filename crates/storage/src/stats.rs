//! IO accounting shared by every `Env` implementation.
//!
//! Engines tag their files with an [`IoClass`] (WAL, flush, compaction, ...)
//! by path convention or explicitly; the counters feed the paper's
//! IO-amplification and bandwidth-utilization figures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Classification of IO traffic, used to split the bandwidth timelines into
/// user/log vs. flush vs. compaction traffic (Figs 4, 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoClass {
    /// Write-ahead-log traffic.
    Wal,
    /// Memtable flush (minor compaction) traffic.
    Flush,
    /// Major compaction traffic.
    Compaction,
    /// Foreground reads (gets/scans).
    Read,
    /// Everything else (manifests, metadata).
    Misc,
}

impl IoClass {
    /// Infers the class of a file from its name, following the naming
    /// conventions used by the engines in this workspace (`*.log` WAL,
    /// `*.sst` table files, `MANIFEST*` metadata, `*.slab` KVell slabs).
    pub fn of_file_name(name: &str) -> IoClass {
        if name.ends_with(".log") || name.ends_with(".wal") {
            IoClass::Wal
        } else if name.ends_with(".sst") || name.ends_with(".pg") {
            // Writers distinguish flush from compaction via explicit hints;
            // by name alone SST traffic defaults to compaction.
            IoClass::Compaction
        } else {
            IoClass::Misc
        }
    }
}

/// Monotonic IO counters. All fields are cumulative since creation.
#[derive(Default)]
pub struct IoStats {
    pub bytes_written: AtomicU64,
    pub bytes_read: AtomicU64,
    pub write_ops: AtomicU64,
    pub read_ops: AtomicU64,
    pub syncs: AtomicU64,
    /// Nanoseconds the simulated device spent servicing requests.
    pub busy_ns: AtomicU64,
    /// Per-class write bytes.
    pub wal_bytes: AtomicU64,
    pub flush_bytes: AtomicU64,
    pub compaction_bytes: AtomicU64,
    pub misc_bytes: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a write of `bytes` attributed to `class`.
    pub fn record_write(&self, bytes: u64, class: IoClass) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        let ctr = match class {
            IoClass::Wal => &self.wal_bytes,
            IoClass::Flush => &self.flush_bytes,
            IoClass::Compaction => &self.compaction_bytes,
            IoClass::Read | IoClass::Misc => &self.misc_bytes,
        };
        ctr.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a read of `bytes`.
    pub fn record_read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a durability barrier.
    pub fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records device service time.
    pub fn record_busy(&self, dur: Duration) {
        self.busy_ns
            .fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            flush_bytes: self.flush_bytes.load(Ordering::Relaxed),
            compaction_bytes: self.compaction_bytes.load(Ordering::Relaxed),
            misc_bytes: self.misc_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub write_ops: u64,
    pub read_ops: u64,
    pub syncs: u64,
    pub busy_ns: u64,
    pub wal_bytes: u64,
    pub flush_bytes: u64,
    pub compaction_bytes: u64,
    pub misc_bytes: u64,
}

impl IoStatsSnapshot {
    /// Bytes written plus bytes read.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_written + self.bytes_read
    }

    /// Difference `self - earlier`, for windowed rates.
    pub fn delta(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            write_ops: self.write_ops - earlier.write_ops,
            read_ops: self.read_ops - earlier.read_ops,
            syncs: self.syncs - earlier.syncs,
            busy_ns: self.busy_ns - earlier.busy_ns,
            wal_bytes: self.wal_bytes - earlier.wal_bytes,
            flush_bytes: self.flush_bytes - earlier.flush_bytes,
            compaction_bytes: self.compaction_bytes - earlier.compaction_bytes,
            misc_bytes: self.misc_bytes - earlier.misc_bytes,
        }
    }

    /// IO (write) amplification relative to `user_bytes` of application data.
    pub fn write_amplification(&self, user_bytes: u64) -> f64 {
        if user_bytes == 0 {
            0.0
        } else {
            self.bytes_written as f64 / user_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_inference() {
        assert_eq!(IoClass::of_file_name("000012.log"), IoClass::Wal);
        assert_eq!(IoClass::of_file_name("000034.sst"), IoClass::Compaction);
        assert_eq!(IoClass::of_file_name("MANIFEST-000001"), IoClass::Misc);
        assert_eq!(IoClass::of_file_name("7.slab"), IoClass::Misc);
    }

    #[test]
    fn counters_accumulate_per_class() {
        let s = IoStats::new();
        s.record_write(100, IoClass::Wal);
        s.record_write(200, IoClass::Flush);
        s.record_write(300, IoClass::Compaction);
        s.record_read(50);
        s.record_sync();
        s.record_busy(Duration::from_micros(10));
        let snap = s.snapshot();
        assert_eq!(snap.bytes_written, 600);
        assert_eq!(snap.wal_bytes, 100);
        assert_eq!(snap.flush_bytes, 200);
        assert_eq!(snap.compaction_bytes, 300);
        assert_eq!(snap.bytes_read, 50);
        assert_eq!(snap.write_ops, 3);
        assert_eq!(snap.read_ops, 1);
        assert_eq!(snap.syncs, 1);
        assert_eq!(snap.busy_ns, 10_000);
        assert_eq!(snap.total_bytes(), 650);
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_write(100, IoClass::Wal);
        let a = s.snapshot();
        s.record_write(150, IoClass::Compaction);
        s.record_read(10);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.bytes_written, 150);
        assert_eq!(d.bytes_read, 10);
        assert_eq!(d.wal_bytes, 0);
        assert_eq!(d.compaction_bytes, 150);
    }

    #[test]
    fn write_amplification() {
        let mut snap = IoStatsSnapshot::default();
        snap.bytes_written = 500;
        assert_eq!(snap.write_amplification(100), 5.0);
        assert_eq!(snap.write_amplification(0), 0.0);
    }
}
