//! IO accounting shared by every `Env` implementation.
//!
//! Engines tag their files with an [`IoClass`] (WAL, flush, compaction, ...)
//! by path convention or explicitly; the counters feed the paper's
//! IO-amplification and bandwidth-utilization figures. Counters are kept
//! both device-wide and per submission queue ([`MAX_QUEUES`] slots), so the
//! multi-queue device model can report where traffic actually landed.
//!
//! # Snapshot coherence
//!
//! A recorded operation updates several counters (`bytes_written`, the
//! per-class counter, the per-queue counter, ...). A naive field-by-field
//! read can *tear* across those updates — e.g. observe the new
//! `bytes_written` but the old `compaction_bytes`, so the per-class split
//! no longer sums to the total. With concurrent compaction writers this
//! happened often enough to corrupt windowed deltas. [`IoStats::snapshot`]
//! therefore uses a multi-writer seqlock: every recorder brackets its
//! updates between `started`/`finished` generation bumps, and the reader
//! retries until it observes a window with no recorder active. Because a
//! saturated recorder can be mid-update almost permanently (on a one-CPU
//! host the preempted writer freezes inside the bracket), the reader also
//! *announces* itself: new recorders park at the bracket entrance while a
//! snapshot is in flight, so quiescence is reached by draining rather than
//! by luck. Both waits are bounded; a stalled party delays the other,
//! never wedges it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::ioqueue::{QueueId, MAX_QUEUES};

/// Classification of IO traffic, used to split the bandwidth timelines into
/// user/log vs. flush vs. compaction traffic (Figs 4, 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoClass {
    /// Write-ahead-log traffic.
    Wal,
    /// Memtable flush (minor compaction) traffic.
    Flush,
    /// Major compaction traffic.
    Compaction,
    /// Foreground reads (gets/scans).
    Read,
    /// Everything else (manifests, metadata).
    Misc,
}

impl IoClass {
    /// Infers the class of a file from its name, following the naming
    /// conventions used by the engines in this workspace (`*.log` WAL,
    /// `*.sst` table files, `MANIFEST*` metadata, `*.slab` KVell slabs).
    pub fn of_file_name(name: &str) -> IoClass {
        if name.ends_with(".log") || name.ends_with(".wal") {
            IoClass::Wal
        } else if name.ends_with(".sst") || name.ends_with(".pg") {
            // Writers distinguish flush from compaction via explicit hints;
            // by name alone SST traffic defaults to compaction.
            IoClass::Compaction
        } else {
            IoClass::Misc
        }
    }
}

/// Per-submission-queue counters.
#[derive(Default)]
struct QueueCounters {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    syncs: AtomicU64,
    busy_ns: AtomicU64,
}

/// How many times `snapshot` re-reads before settling for best-effort.
const SNAPSHOT_RETRIES: usize = 64;

/// Monotonic IO counters. All fields are cumulative since creation.
#[derive(Default)]
pub struct IoStats {
    pub bytes_written: AtomicU64,
    pub bytes_read: AtomicU64,
    pub write_ops: AtomicU64,
    pub read_ops: AtomicU64,
    pub syncs: AtomicU64,
    /// Nanoseconds the simulated device spent servicing requests.
    pub busy_ns: AtomicU64,
    /// Per-class write bytes.
    pub wal_bytes: AtomicU64,
    pub flush_bytes: AtomicU64,
    pub compaction_bytes: AtomicU64,
    pub misc_bytes: AtomicU64,
    /// Per-queue counters (slots past the device's queue count stay zero).
    queues: [QueueCounters; MAX_QUEUES],
    /// Seqlock generations: recorders bump `started` before touching any
    /// counter and `finished` after the last one.
    seq_started: AtomicU64,
    seq_finished: AtomicU64,
    /// Readers currently collecting a coherent snapshot. While nonzero,
    /// new recorders park before entering their critical section, so the
    /// counters drain to quiescence instead of the reader having to catch
    /// a saturated recorder between updates.
    snap_waiters: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of one multi-counter update.
    #[inline]
    fn begin_record(&self) {
        if self.snap_waiters.load(Ordering::Relaxed) > 0 {
            self.park_for_snapshot();
        }
        self.seq_started.fetch_add(1, Ordering::AcqRel);
    }

    /// Holds a new recorder at the door while a snapshot reader drains the
    /// in-flight updates. Without this gate a saturated recorder is almost
    /// always mid-update on a single-CPU host (its whole loop body sits
    /// inside the bracket), so the reader never observes quiescence no
    /// matter how often it retries. The wait is bounded: a reader that
    /// somehow stalls can delay a recorder, never wedge it.
    #[cold]
    fn park_for_snapshot(&self) {
        for _ in 0..200 {
            if self.snap_waiters.load(Ordering::Relaxed) == 0 {
                return;
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    /// Marks the end of one multi-counter update.
    #[inline]
    fn end_record(&self) {
        self.seq_finished.fetch_add(1, Ordering::AcqRel);
    }

    /// Records a write of `bytes` attributed to `class` (queue 0).
    pub fn record_write(&self, bytes: u64, class: IoClass) {
        self.record_write_on(bytes, class, 0);
    }

    /// Records a write of `bytes` attributed to `class` on `queue`.
    pub fn record_write_on(&self, bytes: u64, class: IoClass, queue: QueueId) {
        self.begin_record();
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        let ctr = match class {
            IoClass::Wal => &self.wal_bytes,
            IoClass::Flush => &self.flush_bytes,
            IoClass::Compaction => &self.compaction_bytes,
            IoClass::Read | IoClass::Misc => &self.misc_bytes,
        };
        ctr.fetch_add(bytes, Ordering::Relaxed);
        self.queues[queue % MAX_QUEUES]
            .bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
        self.end_record();
    }

    /// Records a read of `bytes` (queue 0).
    pub fn record_read(&self, bytes: u64) {
        self.record_read_on(bytes, 0);
    }

    /// Records a read of `bytes` on `queue`.
    pub fn record_read_on(&self, bytes: u64, queue: QueueId) {
        self.begin_record();
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.queues[queue % MAX_QUEUES]
            .bytes_read
            .fetch_add(bytes, Ordering::Relaxed);
        self.end_record();
    }

    /// Records a durability barrier (queue 0).
    pub fn record_sync(&self) {
        self.record_sync_on(0);
    }

    /// Records a durability barrier on `queue`.
    pub fn record_sync_on(&self, queue: QueueId) {
        self.begin_record();
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.queues[queue % MAX_QUEUES]
            .syncs
            .fetch_add(1, Ordering::Relaxed);
        self.end_record();
    }

    /// Records device service time (queue 0).
    pub fn record_busy(&self, dur: Duration) {
        self.record_busy_on(dur, 0);
    }

    /// Records device service time on `queue`.
    pub fn record_busy_on(&self, dur: Duration, queue: QueueId) {
        self.begin_record();
        let ns = dur.as_nanos() as u64;
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.queues[queue % MAX_QUEUES]
            .busy_ns
            .fetch_add(ns, Ordering::Relaxed);
        self.end_record();
    }

    /// Reads every counter without coherence guarantees.
    fn read_all(&self) -> IoStatsSnapshot {
        let mut queues = [QueueIoSnapshot::default(); MAX_QUEUES];
        for (slot, q) in queues.iter_mut().zip(self.queues.iter()) {
            *slot = QueueIoSnapshot {
                bytes_written: q.bytes_written.load(Ordering::Relaxed),
                bytes_read: q.bytes_read.load(Ordering::Relaxed),
                syncs: q.syncs.load(Ordering::Relaxed),
                busy_ns: q.busy_ns.load(Ordering::Relaxed),
            };
        }
        IoStatsSnapshot {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            flush_bytes: self.flush_bytes.load(Ordering::Relaxed),
            compaction_bytes: self.compaction_bytes.load(Ordering::Relaxed),
            misc_bytes: self.misc_bytes.load(Ordering::Relaxed),
            queues,
        }
    }

    /// Takes a coherent snapshot of all counters: the returned fields were
    /// all observed in a window with no recorder mid-update, so cross-field
    /// invariants (per-class bytes summing to `bytes_written`, per-queue
    /// sums matching totals) hold. Falls back to a best-effort read if
    /// recorders never go quiescent within the retry budget.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        // Announce the read: recorders that haven't entered their critical
        // section yet will park until we're done, so `started == finished`
        // is reached by draining rather than by luck.
        self.snap_waiters.fetch_add(1, Ordering::AcqRel);
        let snap = self.snapshot_inner();
        self.snap_waiters.fetch_sub(1, Ordering::AcqRel);
        snap
    }

    fn snapshot_inner(&self) -> IoStatsSnapshot {
        let mut last = None;
        for attempt in 0..SNAPSHOT_RETRIES {
            let finished = self.seq_finished.load(Ordering::Acquire);
            let started = self.seq_started.load(Ordering::Acquire);
            if finished != started {
                // A recorder is mid-update. On a loaded single-CPU machine
                // it may be *preempted* there, freezing this state for the
                // reader's whole timeslice — and `yield_now` is too weak to
                // force a reschedule. Spin briefly for the in-flight case,
                // then sleep so the preempted recorder can finish.
                if attempt < 4 {
                    std::hint::spin_loop();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
                continue;
            }
            let snap = self.read_all();
            std::sync::atomic::fence(Ordering::Acquire);
            if self.seq_started.load(Ordering::Relaxed) == started {
                return snap;
            }
            last = Some(snap);
        }
        last.unwrap_or_else(|| self.read_all())
    }
}

/// A point-in-time copy of one queue's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueIoSnapshot {
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub syncs: u64,
    pub busy_ns: u64,
}

impl QueueIoSnapshot {
    /// Difference `self - earlier`, for windowed rates.
    pub fn delta(&self, earlier: &QueueIoSnapshot) -> QueueIoSnapshot {
        QueueIoSnapshot {
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            syncs: self.syncs - earlier.syncs,
            busy_ns: self.busy_ns - earlier.busy_ns,
        }
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub write_ops: u64,
    pub read_ops: u64,
    pub syncs: u64,
    pub busy_ns: u64,
    pub wal_bytes: u64,
    pub flush_bytes: u64,
    pub compaction_bytes: u64,
    pub misc_bytes: u64,
    /// Per-queue counters; slots past the device's queue count are zero.
    pub queues: [QueueIoSnapshot; MAX_QUEUES],
}

impl IoStatsSnapshot {
    /// Bytes written plus bytes read.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_written + self.bytes_read
    }

    /// Difference `self - earlier`, for windowed rates.
    pub fn delta(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        let mut queues = [QueueIoSnapshot::default(); MAX_QUEUES];
        for (i, slot) in queues.iter_mut().enumerate() {
            *slot = self.queues[i].delta(&earlier.queues[i]);
        }
        IoStatsSnapshot {
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            write_ops: self.write_ops - earlier.write_ops,
            read_ops: self.read_ops - earlier.read_ops,
            syncs: self.syncs - earlier.syncs,
            busy_ns: self.busy_ns - earlier.busy_ns,
            wal_bytes: self.wal_bytes - earlier.wal_bytes,
            flush_bytes: self.flush_bytes - earlier.flush_bytes,
            compaction_bytes: self.compaction_bytes - earlier.compaction_bytes,
            misc_bytes: self.misc_bytes - earlier.misc_bytes,
            queues,
        }
    }

    /// IO (write) amplification relative to `user_bytes` of application data.
    pub fn write_amplification(&self, user_bytes: u64) -> f64 {
        if user_bytes == 0 {
            0.0
        } else {
            self.bytes_written as f64 / user_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn class_inference() {
        assert_eq!(IoClass::of_file_name("000012.log"), IoClass::Wal);
        assert_eq!(IoClass::of_file_name("000034.sst"), IoClass::Compaction);
        assert_eq!(IoClass::of_file_name("MANIFEST-000001"), IoClass::Misc);
        assert_eq!(IoClass::of_file_name("7.slab"), IoClass::Misc);
    }

    #[test]
    fn counters_accumulate_per_class() {
        let s = IoStats::new();
        s.record_write(100, IoClass::Wal);
        s.record_write(200, IoClass::Flush);
        s.record_write(300, IoClass::Compaction);
        s.record_read(50);
        s.record_sync();
        s.record_busy(Duration::from_micros(10));
        let snap = s.snapshot();
        assert_eq!(snap.bytes_written, 600);
        assert_eq!(snap.wal_bytes, 100);
        assert_eq!(snap.flush_bytes, 200);
        assert_eq!(snap.compaction_bytes, 300);
        assert_eq!(snap.bytes_read, 50);
        assert_eq!(snap.write_ops, 3);
        assert_eq!(snap.read_ops, 1);
        assert_eq!(snap.syncs, 1);
        assert_eq!(snap.busy_ns, 10_000);
        assert_eq!(snap.total_bytes(), 650);
    }

    #[test]
    fn counters_accumulate_per_queue() {
        let s = IoStats::new();
        s.record_write_on(100, IoClass::Wal, 0);
        s.record_write_on(200, IoClass::Compaction, 3);
        s.record_read_on(50, 3);
        s.record_sync_on(1);
        s.record_busy_on(Duration::from_micros(5), 3);
        let snap = s.snapshot();
        assert_eq!(snap.queues[0].bytes_written, 100);
        assert_eq!(snap.queues[3].bytes_written, 200);
        assert_eq!(snap.queues[3].bytes_read, 50);
        assert_eq!(snap.queues[1].syncs, 1);
        assert_eq!(snap.queues[3].busy_ns, 5_000);
        assert_eq!(snap.queues[2], QueueIoSnapshot::default());
        // Queue ids reduce modulo MAX_QUEUES instead of panicking.
        s.record_sync_on(MAX_QUEUES + 1);
        assert_eq!(s.snapshot().queues[1].syncs, 2);
        // Per-queue sums match the device-wide totals.
        let sum: u64 = snap.queues.iter().map(|q| q.bytes_written).sum();
        assert_eq!(sum, snap.bytes_written);
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_write(100, IoClass::Wal);
        let a = s.snapshot();
        s.record_write_on(150, IoClass::Compaction, 2);
        s.record_read(10);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.bytes_written, 150);
        assert_eq!(d.bytes_read, 10);
        assert_eq!(d.wal_bytes, 0);
        assert_eq!(d.compaction_bytes, 150);
        assert_eq!(d.queues[0].bytes_written, 0);
        assert_eq!(d.queues[2].bytes_written, 150);
    }

    /// Regression: with concurrent writers hammering multi-counter updates,
    /// every snapshot must still satisfy the cross-field invariants — the
    /// old field-by-field read tore between `bytes_written` and the
    /// per-class/per-queue counters.
    #[test]
    fn snapshot_is_coherent_under_concurrent_writers() {
        let s = Arc::new(IoStats::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..3usize)
            .map(|w| {
                let s = s.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let class = match i % 3 {
                            0 => IoClass::Wal,
                            1 => IoClass::Flush,
                            _ => IoClass::Compaction,
                        };
                        s.record_write_on(7, class, w % MAX_QUEUES);
                        s.record_read_on(3, w % MAX_QUEUES);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..2000 {
            let snap = s.snapshot();
            let class_sum =
                snap.wal_bytes + snap.flush_bytes + snap.compaction_bytes + snap.misc_bytes;
            assert_eq!(
                class_sum, snap.bytes_written,
                "per-class split tore from the total: {snap:?}"
            );
            let queue_w: u64 = snap.queues.iter().map(|q| q.bytes_written).sum();
            assert_eq!(queue_w, snap.bytes_written, "per-queue writes tore: {snap:?}");
            let queue_r: u64 = snap.queues.iter().map(|q| q.bytes_read).sum();
            assert_eq!(queue_r, snap.bytes_read, "per-queue reads tore: {snap:?}");
            // Every write is exactly 7 bytes; ops and bytes must agree.
            assert_eq!(snap.bytes_written, snap.write_ops * 7);
            assert_eq!(snap.bytes_read, snap.read_ops * 3);
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn write_amplification() {
        let mut snap = IoStatsSnapshot::default();
        snap.bytes_written = 500;
        assert_eq!(snap.write_amplification(100), 5.0);
        assert_eq!(snap.write_amplification(0), 0.0);
    }
}
