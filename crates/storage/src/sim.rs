//! Simulated-device environment: [`MemEnv`] plus a [`DeviceModel`].
//!
//! This is the environment the benchmark harness runs on. It owns the
//! device utilization bookkeeping used to report bandwidth-utilization
//! figures (Figs 4, 5b, 12c, 21a).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::device::{DeviceModel, DeviceProfile, QueueDepthSnapshot};
use crate::env::{Env, RandomAccessFile, SequentialFile, WritableFile};
use crate::ioqueue::QueueId;
use crate::mem::{MemEnv, MemFs};
use crate::stats::IoStatsSnapshot;

/// An in-memory filesystem whose IOs are timed by a device model.
pub struct SimEnv {
    inner: MemEnv,
    device: Arc<DeviceModel>,
    created: Instant,
}

impl SimEnv {
    /// Creates a simulated environment over `model`.
    pub fn new(model: DeviceModel) -> Self {
        let device = Arc::new(model);
        let fs = Arc::new(MemFs::new());
        SimEnv {
            inner: MemEnv::with_parts(fs, Some(device.clone())),
            device,
            created: Instant::now(),
        }
    }

    /// Shorthand for `SimEnv::new(DeviceModel::from_profile(profile))`.
    pub fn with_profile(profile: DeviceProfile) -> Self {
        Self::new(DeviceModel::from_profile(profile))
    }

    /// The device profile in use.
    pub fn profile(&self) -> &DeviceProfile {
        self.device.profile()
    }

    /// The underlying store (failure injection, footprint checks).
    pub fn fs(&self) -> &Arc<MemFs> {
        self.inner.fs()
    }

    /// The device model (queue snapshots, profile).
    pub fn device(&self) -> &Arc<DeviceModel> {
        &self.device
    }

    /// Fraction of the device's aggregate service capacity used since
    /// creation: `busy_time / (wall_time × aggregate_depth)`, in `[0, 1]`.
    pub fn device_utilization(&self) -> f64 {
        let snap = self.io_stats();
        let wall = self.created.elapsed().as_nanos() as f64;
        let depth = self.profile().aggregate_depth().min(64) as f64;
        if wall == 0.0 {
            0.0
        } else {
            (snap.busy_ns as f64 / (wall * depth)).min(1.0)
        }
    }

    /// Per-queue utilization since creation: each queue's busy time over
    /// `wall_time × queue_depth`, in `[0, 1]`. One entry per queue.
    pub fn queue_utilization(&self) -> Vec<f64> {
        let snap = self.io_stats();
        let wall = self.created.elapsed().as_nanos() as f64;
        let depth = self.profile().queue_depth.min(64).max(1) as f64;
        (0..self.device.queue_count())
            .map(|q| {
                if wall == 0.0 {
                    0.0
                } else {
                    (snap.queues[q].busy_ns as f64 / (wall * depth)).min(1.0)
                }
            })
            .collect()
    }

    /// In-flight/backlog accounting for one submission queue.
    pub fn queue_snapshot(&self, q: QueueId) -> QueueDepthSnapshot {
        self.device.queue_snapshot(q)
    }

    /// Fraction of the device's write bandwidth consumed over the window
    /// between two snapshots taken `wall_secs` apart.
    pub fn bandwidth_utilization(
        &self,
        delta: &IoStatsSnapshot,
        wall_secs: f64,
    ) -> f64 {
        if wall_secs <= 0.0 {
            return 0.0;
        }
        let p = self.profile();
        let write_frac = delta.bytes_written as f64 / (p.write_bw as f64 * wall_secs);
        let read_frac = delta.bytes_read as f64 / (p.read_bw as f64 * wall_secs);
        (write_frac + read_frac).min(1.0)
    }
}

impl Env for SimEnv {
    fn new_writable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>> {
        self.inner.new_writable(path)
    }

    fn new_appendable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>> {
        self.inner.new_appendable(path)
    }

    fn new_writable_on(&self, path: &Path, queue: QueueId) -> io::Result<Box<dyn WritableFile>> {
        self.inner.new_writable_on(path, queue)
    }

    fn new_appendable_on(&self, path: &Path, queue: QueueId) -> io::Result<Box<dyn WritableFile>> {
        self.inner.new_appendable_on(path, queue)
    }

    fn new_random_access(&self, path: &Path) -> io::Result<Box<dyn RandomAccessFile>> {
        self.inner.new_random_access(path)
    }

    fn new_sequential(&self, path: &Path) -> io::Result<Box<dyn SequentialFile>> {
        self.inner.new_sequential(path)
    }

    fn new_random_rw(&self, path: &Path) -> io::Result<Box<dyn crate::env::RandomRwFile>> {
        self.inner.new_random_rw(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(path)
    }

    fn file_size(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_size(path)
    }

    fn io_stats(&self) -> IoStatsSnapshot {
        self.inner.io_stats()
    }

    fn device_utilization(&self) -> Option<f64> {
        Some(SimEnv::device_utilization(self))
    }

    fn queue_count(&self) -> usize {
        self.device.queue_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::write_all;
    use std::time::Duration;

    #[test]
    fn sim_env_charges_time_for_synced_writes() {
        // HDD sync ≈ 4 ms; three synced writes must take ≥ 12 ms of model
        // busy time and comparable wall time.
        let env = SimEnv::with_profile(DeviceProfile::hdd());
        let start = Instant::now();
        for i in 0..3 {
            write_all(&env, Path::new(&format!("f{i}.log")), &[0u8; 128]).unwrap();
        }
        let stats = env.io_stats();
        assert!(stats.busy_ns >= 12_000_000, "busy {}ns", stats.busy_ns);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn instant_profile_is_fast() {
        let env = SimEnv::with_profile(DeviceProfile::instant());
        let start = Instant::now();
        for i in 0..200 {
            write_all(&env, Path::new(&format!("f{i}.log")), &[0u8; 64]).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn utilization_is_bounded() {
        let env = SimEnv::with_profile(DeviceProfile::nvme_optane());
        write_all(&env, Path::new("a.sst"), &[0u8; 1 << 20]).unwrap();
        let u = env.device_utilization();
        assert!((0.0..=1.0).contains(&u));
        let snap = env.io_stats();
        let bw = env.bandwidth_utilization(&snap, 1.0);
        assert!((0.0..=1.0).contains(&bw));
        assert!(bw > 0.0);
    }

    #[test]
    fn queue_placement_routes_traffic() {
        let env = SimEnv::with_profile(DeviceProfile::instant().with_queues(4));
        assert_eq!(Env::queue_count(&env), 4);

        // Explicit pin: all IO on this handle lands on queue 2.
        let mut w = env.new_writable_on(Path::new("pinned.sst"), 2).unwrap();
        w.append(&[0u8; 100]).unwrap();
        w.sync().unwrap();

        // Ambient thread queue: an un-pinned handle follows the pin set on
        // the calling thread.
        {
            let _g = crate::ioqueue::QueueScope::enter(1);
            let mut w = env.new_writable(Path::new("ambient.log")).unwrap();
            w.append(&[0u8; 40]).unwrap();
            w.sync().unwrap();
        }

        let snap = env.io_stats();
        assert_eq!(snap.queues[2].bytes_written, 100);
        assert_eq!(snap.queues[2].syncs, 1);
        assert_eq!(snap.queues[1].bytes_written, 40);
        assert_eq!(snap.queues[1].syncs, 1);
        // Device-side accounting saw the same placement.
        assert_eq!(env.queue_snapshot(2).submitted, 2); // write + sync
        assert_eq!(env.queue_snapshot(1).submitted, 2);
        assert_eq!(env.queue_utilization().len(), 4);
    }

    #[test]
    fn power_failure_applies_through_sim_env() {
        let env = SimEnv::with_profile(DeviceProfile::instant());
        let mut w = env.new_writable(Path::new("wal.log")).unwrap();
        w.append(b"synced").unwrap();
        w.sync().unwrap();
        w.append(b"lost").unwrap();
        env.fs().power_failure();
        assert_eq!(env.file_size(Path::new("wal.log")).unwrap(), 6);
    }
}
