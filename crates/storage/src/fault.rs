//! Deterministic fault injection over any [`Env`].
//!
//! [`FaultyEnv`] wraps an inner env (normally a [`MemEnv`]) and applies a
//! programmable [`FaultPlan`]:
//!
//! * fail the Nth append / sync / read with an injected IO error
//!   (one-shot: the op errors once, retries succeed),
//! * crash — power-failure truncation of the backing [`MemFs`] to
//!   last-synced lengths — when the Nth sync point is requested,
//!   optionally letting part of the crashing file's unsynced tail
//!   survive (a torn write inside the sync interval).
//!
//! Every sync request is globally numbered across all files (WAL, TXNLOG,
//! MANIFEST, SSTs, ...), so a harness can dry-run a workload, read
//! [`FaultyEnv::sync_points`], and then enumerate crashes at every — or a
//! strided sample of — sync points. Crashing *at* sync point N yields the
//! durable state between syncs N-1 and N, so the set of crash points
//! covers every distinct durable state the workload can leave behind.
//!
//! # Queue-targeted faults and concurrency
//!
//! Operations are *additionally* numbered per device submission queue
//! (the queue resolved exactly as the timing layer resolves it: explicit
//! file pin, then the thread's ambient queue, then queue 0). Plans can
//! target "the Nth sync **on queue q**" ([`FaultPlan::fail_sync_on_queue`],
//! [`FaultPlan::crash_at_queue_sync`]) or "the Nth append on queue q"
//! ([`FaultPlan::fail_append_on_queue`]).
//!
//! This is what keeps fault injection deterministic once compaction runs
//! multi-threaded: global *counts* remain exact under concurrency (every
//! op increments the counter exactly once, so dry-run totals are
//! scheduling-independent), but *which* op draws global number N depends
//! on thread interleaving. Per-queue numbering restores a deterministic
//! handle — each worker/subcompaction owns one queue, and the sequence of
//! ops on that queue is the deterministic program order of its owner.
//!
//! After a crash the env is frozen: every subsequent operation on any
//! handle fails with a "simulated power failure" error, which is how the
//! still-running upper layers (workers, background flush threads) observe
//! the outage. [`FaultyEnv::heal`] lifts the freeze for recovery.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::env::{Env, FaultHook, RandomAccessFile, RandomRwFile, SequentialFile, WritableFile};
use crate::ioqueue::{resolve_queue, QueueId, MAX_QUEUES};
use crate::mem::{MemEnv, MemFs};
use crate::stats::IoStatsSnapshot;

/// What to inject, expressed against global 1-based operation counters.
///
/// All triggers are one-shot: once fired they are cleared from the plan,
/// so a retry of the same operation succeeds (transient-error model). A
/// crash is not transient — it freezes the env until [`FaultyEnv::heal`].
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// Fail the Nth append (1-based, counted across all files).
    pub fail_append: Option<u64>,
    /// Fail the Nth sync request without crashing.
    pub fail_sync: Option<u64>,
    /// Fail the Nth read (counted across random-access, sequential and
    /// rw handles).
    pub fail_read: Option<u64>,
    /// Crash (power-failure truncate + freeze) when the Nth sync point is
    /// requested. The sync itself fails; nothing it would have made
    /// durable survives.
    pub crash_at_sync: Option<u64>,
    /// At the crash, let up to this many unsynced bytes of the file whose
    /// sync triggered it survive — a torn write within the sync interval.
    /// Shared by global and queue-targeted crashes.
    pub torn_tail: usize,
    /// Fail the Nth append *on queue q* (1-based per-queue counter).
    pub fail_append_on_queue: Option<(QueueId, u64)>,
    /// Fail the Nth sync *on queue q* without crashing.
    pub fail_sync_on_queue: Option<(QueueId, u64)>,
    /// Crash when the Nth sync *on queue q* is requested — the
    /// deterministic trigger for concurrent compaction threads, each of
    /// which owns one queue.
    pub crash_at_queue_sync: Option<(QueueId, u64)>,
}

/// A fault that actually fired (for harness assertions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Append number `n` on `path` failed.
    FailedAppend { n: u64, path: PathBuf },
    /// Sync number `n` on `path` failed (no crash).
    FailedSync { n: u64, path: PathBuf },
    /// Read number `n` on `path` failed.
    FailedRead { n: u64, path: PathBuf },
    /// The env crashed at sync point `n`, which targeted `path`;
    /// `torn` unsynced bytes of `path` survived.
    Crash { n: u64, path: PathBuf, torn: usize },
    /// Append number `n` *on queue `q`* failed.
    FailedQueueAppend { q: QueueId, n: u64, path: PathBuf },
    /// Sync number `n` *on queue `q`* failed (no crash).
    FailedQueueSync { q: QueueId, n: u64, path: PathBuf },
    /// The env crashed at sync number `n` on queue `q`.
    QueueCrash { q: QueueId, n: u64, path: PathBuf, torn: usize },
}

/// Shared mutable fault state. One per [`FaultyEnv`], shared with every
/// file handle the env ever produced.
struct FaultState {
    plan: Mutex<FaultPlan>,
    appends: AtomicU64,
    syncs: AtomicU64,
    reads: AtomicU64,
    /// Per-queue op numbering, alongside (not replacing) the globals.
    q_appends: [AtomicU64; MAX_QUEUES],
    q_syncs: [AtomicU64; MAX_QUEUES],
    crashed: AtomicBool,
    events: Mutex<Vec<FaultEvent>>,
    hook: Mutex<Option<FaultHook>>,
}

impl FaultState {
    fn new() -> FaultState {
        FaultState {
            plan: Mutex::new(FaultPlan::default()),
            appends: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            q_appends: std::array::from_fn(|_| AtomicU64::new(0)),
            q_syncs: std::array::from_fn(|_| AtomicU64::new(0)),
            crashed: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            hook: Mutex::new(None),
        }
    }

    /// Records a fired fault and notifies the observer. The hook runs
    /// with no internal lock held (it may re-enter the env, e.g. a
    /// flight recorder appending its own journal file), on the thread
    /// whose operation faulted.
    fn fire(&self, event: FaultEvent) {
        self.events.lock().push(event.clone());
        let hook = self.hook.lock().clone();
        if let Some(hook) = hook {
            hook(&event);
        }
    }

    fn crashed_err(&self) -> io::Error {
        io::Error::new(io::ErrorKind::Other, "simulated power failure: env is down")
    }

    fn injected_err(&self, what: &str, n: u64, path: &Path) -> io::Error {
        io::Error::new(
            io::ErrorKind::Other,
            format!("injected fault: {what} #{n} on {}", path.display()),
        )
    }

    fn check_live(&self) -> io::Result<()> {
        if self.crashed.load(Ordering::Acquire) {
            Err(self.crashed_err())
        } else {
            Ok(())
        }
    }

    fn on_append(&self, path: &Path, queue: QueueId) -> io::Result<()> {
        self.check_live()?;
        let n = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
        let qn = self.q_appends[queue % MAX_QUEUES].fetch_add(1, Ordering::Relaxed) + 1;
        let mut plan = self.plan.lock();
        if plan.fail_append == Some(n) {
            plan.fail_append = None;
            drop(plan);
            self.fire(FaultEvent::FailedAppend { n, path: path.to_path_buf() });
            return Err(self.injected_err("append", n, path));
        }
        if plan.fail_append_on_queue == Some((queue, qn)) {
            plan.fail_append_on_queue = None;
            drop(plan);
            self.fire(FaultEvent::FailedQueueAppend { q: queue, n: qn, path: path.to_path_buf() });
            return Err(self.injected_err("queue-append", qn, path));
        }
        Ok(())
    }

    fn on_read(&self, path: &Path) -> io::Result<()> {
        self.check_live()?;
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        let mut plan = self.plan.lock();
        if plan.fail_read == Some(n) {
            plan.fail_read = None;
            drop(plan);
            self.fire(FaultEvent::FailedRead { n, path: path.to_path_buf() });
            return Err(self.injected_err("read", n, path));
        }
        Ok(())
    }

    /// Numbers the sync request and decides its fate. Returns the action
    /// the caller must take; the crash truncation itself needs the fs, so
    /// it is done by the caller.
    fn on_sync(&self, path: &Path, fs: &MemFs, queue: QueueId) -> io::Result<()> {
        self.check_live()?;
        let n = self.syncs.fetch_add(1, Ordering::Relaxed) + 1;
        let qn = self.q_syncs[queue % MAX_QUEUES].fetch_add(1, Ordering::Relaxed) + 1;
        let mut plan = self.plan.lock();
        if plan.crash_at_sync == Some(n) {
            plan.crash_at_sync = None;
            let torn_budget = plan.torn_tail;
            drop(plan);
            // Freeze first so concurrent ops start failing immediately,
            // then tear + truncate to the durable image.
            self.crashed.store(true, Ordering::Release);
            let torn = if torn_budget > 0 { fs.tear(path, torn_budget) } else { 0 };
            fs.power_failure();
            self.fire(FaultEvent::Crash { n, path: path.to_path_buf(), torn });
            return Err(self.crashed_err());
        }
        if plan.crash_at_queue_sync == Some((queue, qn)) {
            plan.crash_at_queue_sync = None;
            let torn_budget = plan.torn_tail;
            drop(plan);
            self.crashed.store(true, Ordering::Release);
            let torn = if torn_budget > 0 { fs.tear(path, torn_budget) } else { 0 };
            fs.power_failure();
            self.fire(FaultEvent::QueueCrash { q: queue, n: qn, path: path.to_path_buf(), torn });
            return Err(self.crashed_err());
        }
        if plan.fail_sync == Some(n) {
            plan.fail_sync = None;
            drop(plan);
            self.fire(FaultEvent::FailedSync { n, path: path.to_path_buf() });
            return Err(self.injected_err("sync", n, path));
        }
        if plan.fail_sync_on_queue == Some((queue, qn)) {
            plan.fail_sync_on_queue = None;
            drop(plan);
            self.fire(FaultEvent::FailedQueueSync { q: queue, n: qn, path: path.to_path_buf() });
            return Err(self.injected_err("queue-sync", qn, path));
        }
        Ok(())
    }
}

/// An [`Env`] decorator injecting faults per a [`FaultPlan`].
pub struct FaultyEnv {
    inner: Arc<dyn Env>,
    fs: Arc<MemFs>,
    state: Arc<FaultState>,
}

impl FaultyEnv {
    /// Wraps an env whose files live in `fs`. The fs handle is what crash
    /// injection truncates; it must be the same store `inner` writes to.
    pub fn new(inner: Arc<dyn Env>, fs: Arc<MemFs>) -> FaultyEnv {
        FaultyEnv { inner, fs, state: Arc::new(FaultState::new()) }
    }

    /// A fresh in-memory env with fault injection and no device timing.
    pub fn over_mem() -> FaultyEnv {
        let fs = Arc::new(MemFs::new());
        let inner = Arc::new(MemEnv::with_parts(fs.clone(), None));
        FaultyEnv::new(inner, fs)
    }

    /// The backing store (for direct power_failure / footprint checks).
    pub fn fs(&self) -> &Arc<MemFs> {
        &self.fs
    }

    /// Replaces the fault plan. Counters keep running; plan indices are
    /// absolute (compared against the global counters, not deltas).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.state.plan.lock() = plan;
    }

    /// Total sync requests observed so far — the number of sync points a
    /// dry run of a workload exposes to crash enumeration.
    pub fn sync_points(&self) -> u64 {
        self.state.syncs.load(Ordering::Relaxed)
    }

    /// Sync requests observed on queue `q` so far — the per-queue crash
    /// enumeration space for [`FaultPlan::crash_at_queue_sync`].
    pub fn sync_points_on(&self, q: QueueId) -> u64 {
        self.state.q_syncs[q % MAX_QUEUES].load(Ordering::Relaxed)
    }

    /// Total appends observed so far.
    pub fn appends(&self) -> u64 {
        self.state.appends.load(Ordering::Relaxed)
    }

    /// Appends observed on queue `q` so far.
    pub fn appends_on(&self, q: QueueId) -> u64 {
        self.state.q_appends[q % MAX_QUEUES].load(Ordering::Relaxed)
    }

    /// Total reads observed so far.
    pub fn reads(&self) -> u64 {
        self.state.reads.load(Ordering::Relaxed)
    }

    /// Whether a planned crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::Acquire)
    }

    /// Every fault that fired so far, in order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.state.events.lock().clone()
    }

    /// Lifts a crash freeze and clears the plan, modeling the machine
    /// coming back up: recovery code can reopen and read what survived.
    /// Counters keep their values so sync-point numbering stays global
    /// across the workload *and* recovery (recovery's own syncs get
    /// fresh numbers).
    pub fn heal(&self) {
        *self.state.plan.lock() = FaultPlan::default();
        self.state.crashed.store(false, Ordering::Release);
    }
}

struct FaultyWritable {
    inner: Box<dyn WritableFile>,
    state: Arc<FaultState>,
    fs: Arc<MemFs>,
    path: PathBuf,
    /// Explicit placement pin this handle was opened with, if any.
    queue_pin: Option<QueueId>,
    /// Inner env's queue count, for per-op queue resolution.
    queues: usize,
}

impl FaultyWritable {
    /// The queue this op counts against: the same pin-then-ambient
    /// resolution the timing layer uses. Unhinted ambient-free IO counts
    /// on queue 0 (the fault layer cannot see device file ids, and a
    /// fixed fallback keeps numbering deterministic).
    fn queue(&self) -> QueueId {
        resolve_queue(self.queue_pin, 0, self.queues)
    }
}

impl WritableFile for FaultyWritable {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.state.on_append(&self.path, self.queue())?;
        self.inner.append(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.state.check_live()?;
        self.inner.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.state.on_sync(&self.path, &self.fs, self.queue())?;
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct FaultyRandomAccess {
    inner: Box<dyn RandomAccessFile>,
    state: Arc<FaultState>,
    path: PathBuf,
}

impl RandomAccessFile for FaultyRandomAccess {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.state.on_read(&self.path)?;
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct FaultySequential {
    inner: Box<dyn SequentialFile>,
    state: Arc<FaultState>,
    path: PathBuf,
}

impl SequentialFile for FaultySequential {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.state.on_read(&self.path)?;
        self.inner.read(buf)
    }
}

struct FaultyRandomRw {
    inner: Box<dyn RandomRwFile>,
    state: Arc<FaultState>,
    path: PathBuf,
    queues: usize,
}

impl RandomRwFile for FaultyRandomRw {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.state.on_read(&self.path)?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        // In-place slot writes are durable on return (slot-commit model),
        // so they count as appends for failure purposes.
        self.state
            .on_append(&self.path, resolve_queue(None, 0, self.queues))?;
        self.inner.write_at(offset, data)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Env for FaultyEnv {
    fn new_writable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>> {
        self.state.check_live()?;
        Ok(Box::new(FaultyWritable {
            inner: self.inner.new_writable(path)?,
            state: self.state.clone(),
            fs: self.fs.clone(),
            path: path.to_path_buf(),
            queue_pin: None,
            queues: self.inner.queue_count(),
        }))
    }

    fn new_appendable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>> {
        self.state.check_live()?;
        Ok(Box::new(FaultyWritable {
            inner: self.inner.new_appendable(path)?,
            state: self.state.clone(),
            fs: self.fs.clone(),
            path: path.to_path_buf(),
            queue_pin: None,
            queues: self.inner.queue_count(),
        }))
    }

    fn new_writable_on(&self, path: &Path, queue: QueueId) -> io::Result<Box<dyn WritableFile>> {
        self.state.check_live()?;
        Ok(Box::new(FaultyWritable {
            inner: self.inner.new_writable_on(path, queue)?,
            state: self.state.clone(),
            fs: self.fs.clone(),
            path: path.to_path_buf(),
            queue_pin: Some(queue),
            queues: self.inner.queue_count(),
        }))
    }

    fn new_appendable_on(&self, path: &Path, queue: QueueId) -> io::Result<Box<dyn WritableFile>> {
        self.state.check_live()?;
        Ok(Box::new(FaultyWritable {
            inner: self.inner.new_appendable_on(path, queue)?,
            state: self.state.clone(),
            fs: self.fs.clone(),
            path: path.to_path_buf(),
            queue_pin: Some(queue),
            queues: self.inner.queue_count(),
        }))
    }

    fn new_random_access(&self, path: &Path) -> io::Result<Box<dyn RandomAccessFile>> {
        self.state.check_live()?;
        Ok(Box::new(FaultyRandomAccess {
            inner: self.inner.new_random_access(path)?,
            state: self.state.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn new_sequential(&self, path: &Path) -> io::Result<Box<dyn SequentialFile>> {
        self.state.check_live()?;
        Ok(Box::new(FaultySequential {
            inner: self.inner.new_sequential(path)?,
            state: self.state.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn new_random_rw(&self, path: &Path) -> io::Result<Box<dyn RandomRwFile>> {
        self.state.check_live()?;
        Ok(Box::new(FaultyRandomRw {
            inner: self.inner.new_random_rw(path)?,
            state: self.state.clone(),
            path: path.to_path_buf(),
            queues: self.inner.queue_count(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        !self.state.crashed.load(Ordering::Acquire) && self.inner.exists(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.state.check_live()?;
        self.inner.list_dir(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.state.check_live()?;
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.state.check_live()?;
        self.inner.rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.state.check_live()?;
        self.inner.create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.state.check_live()?;
        self.inner.remove_dir_all(path)
    }

    fn file_size(&self, path: &Path) -> io::Result<u64> {
        self.state.check_live()?;
        self.inner.file_size(path)
    }

    fn io_stats(&self) -> IoStatsSnapshot {
        self.inner.io_stats()
    }

    fn install_fault_hook(&self, hook: FaultHook) {
        *self.state.hook.lock() = Some(hook);
    }

    fn queue_count(&self) -> usize {
        self.inner.queue_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{read_all, write_all};

    #[test]
    fn sync_points_are_numbered_globally_across_files() {
        let env = FaultyEnv::over_mem();
        let mut a = env.new_writable(Path::new("a")).unwrap();
        let mut b = env.new_writable(Path::new("b")).unwrap();
        a.append(b"1").unwrap();
        a.sync().unwrap();
        b.append(b"2").unwrap();
        b.sync().unwrap();
        a.sync().unwrap();
        assert_eq!(env.sync_points(), 3);
    }

    #[test]
    fn fail_sync_is_one_shot() {
        let env = FaultyEnv::over_mem();
        env.set_plan(FaultPlan { fail_sync: Some(2), ..Default::default() });
        let mut w = env.new_writable(Path::new("f")).unwrap();
        w.append(b"x").unwrap();
        w.sync().unwrap(); // #1
        w.append(b"y").unwrap();
        let err = w.sync().unwrap_err(); // #2 injected
        assert!(err.to_string().contains("injected fault: sync #2"), "{err}");
        w.sync().unwrap(); // #3: retry succeeds
        assert!(!env.crashed());
        assert_eq!(
            env.events(),
            vec![FaultEvent::FailedSync { n: 2, path: PathBuf::from("f") }]
        );
    }

    #[test]
    fn fail_append_and_read_fire_once() {
        let env = FaultyEnv::over_mem();
        env.set_plan(FaultPlan {
            fail_append: Some(2),
            fail_read: Some(1),
            ..Default::default()
        });
        let mut w = env.new_writable(Path::new("f")).unwrap();
        w.append(b"ok").unwrap();
        assert!(w.append(b"bad").is_err());
        w.append(b"ok2").unwrap();
        w.sync().unwrap();
        assert!(read_all(&env, Path::new("f")).is_err()); // read #1 injected
        assert_eq!(read_all(&env, Path::new("f")).unwrap(), b"okok2");
    }

    #[test]
    fn crash_at_sync_freezes_env_until_heal() {
        let env = FaultyEnv::over_mem();
        write_all(&env, Path::new("old"), b"durable").unwrap(); // sync #1
        env.set_plan(FaultPlan { crash_at_sync: Some(2), ..Default::default() });

        let mut w = env.new_writable(Path::new("new")).unwrap();
        w.append(b"never synced").unwrap();
        let err = w.sync().unwrap_err(); // sync #2 -> crash
        assert!(err.to_string().contains("simulated power failure"), "{err}");
        assert!(env.crashed());

        // Frozen: every op on any handle or the env fails.
        assert!(w.append(b"more").is_err());
        assert!(env.new_writable(Path::new("x")).is_err());
        assert!(env.list_dir(Path::new("")).is_err());
        assert!(!env.exists(Path::new("old")));

        env.heal();
        // The unsynced file is gone entirely; the synced one survives.
        assert!(!env.exists(Path::new("new")));
        assert_eq!(read_all(&env, Path::new("old")).unwrap(), b"durable");
        // Recovery syncs get fresh global numbers (numbering continues).
        write_all(&env, Path::new("post"), b"p").unwrap();
        assert_eq!(env.sync_points(), 3);
    }

    #[test]
    fn crash_with_torn_tail_keeps_partial_write() {
        let env = FaultyEnv::over_mem();
        let mut w = env.new_writable(Path::new("wal")).unwrap();
        w.append(b"head").unwrap();
        w.sync().unwrap(); // #1
        env.set_plan(FaultPlan {
            crash_at_sync: Some(2),
            torn_tail: 3,
            ..Default::default()
        });
        w.append(b"torn-write").unwrap();
        assert!(w.sync().is_err());
        env.heal();
        // 3 of the 10 unsynced bytes survived the crash.
        assert_eq!(read_all(&env, Path::new("wal")).unwrap(), b"headtor");
        match &env.events()[..] {
            [FaultEvent::Crash { n: 2, torn: 3, path }] => {
                assert_eq!(path, Path::new("wal"));
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn fault_hook_observes_firings_and_tolerates_reentry() {
        let env = FaultyEnv::over_mem();
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        {
            // The hook re-enters the env (like a flight recorder
            // appending its journal) — must not deadlock, and its
            // appends simply fail once the env is frozen.
            let seen = seen.clone();
            let hook_env: Arc<dyn Env> = Arc::new(FaultyEnv {
                inner: env.inner.clone(),
                fs: env.fs.clone(),
                state: env.state.clone(),
            });
            env.install_fault_hook(Arc::new(move |e| {
                let name = match e {
                    FaultEvent::FailedAppend { .. } => "append",
                    FaultEvent::FailedSync { .. } => "sync",
                    FaultEvent::FailedRead { .. } => "read",
                    FaultEvent::Crash { .. } => "crash",
                    FaultEvent::FailedQueueAppend { .. } => "q-append",
                    FaultEvent::FailedQueueSync { .. } => "q-sync",
                    FaultEvent::QueueCrash { .. } => "q-crash",
                };
                // Re-entry through the same env's counters.
                if let Ok(mut f) = hook_env.new_appendable(Path::new("hook.log")) {
                    let _ = f.append(name.as_bytes());
                }
                seen.lock().push(name.to_string());
            }));
        }
        env.set_plan(FaultPlan {
            fail_append: Some(1),
            crash_at_sync: Some(1),
            ..Default::default()
        });
        let mut w = env.new_writable(Path::new("f")).unwrap();
        assert!(w.append(b"x").is_err()); // append #1 injected
        w.append(b"x").unwrap();
        assert!(w.sync().is_err()); // sync #1 -> crash (env frozen)
        assert_eq!(seen.lock().clone(), vec!["append", "crash"]);
        assert_eq!(env.events().len(), 2, "hook saw exactly the recorded events");
    }

    /// A faulty env over a multi-queue simulated device, so queue
    /// resolution actually has queues to resolve to.
    fn over_queues(n: usize) -> FaultyEnv {
        let profile = crate::DeviceProfile::instant().with_queues(n);
        let device = Arc::new(crate::DeviceModel::from_profile(profile));
        let fs = Arc::new(MemFs::new());
        let inner = Arc::new(MemEnv::with_parts(fs.clone(), Some(device)));
        FaultyEnv::new(inner, fs)
    }

    #[test]
    fn queue_targeted_sync_fault_ignores_other_queues() {
        let env = over_queues(4);
        env.set_plan(FaultPlan {
            fail_sync_on_queue: Some((2, 2)),
            ..Default::default()
        });
        // Queue 1 traffic never trips a queue-2 trigger, no matter how
        // many syncs it issues.
        let mut other = env.new_writable_on(Path::new("other"), 1).unwrap();
        for _ in 0..5 {
            other.append(b"x").unwrap();
            other.sync().unwrap();
        }
        // Queue 2: first sync fine, second injected, third (retry) fine.
        let mut target = env.new_writable_on(Path::new("target"), 2).unwrap();
        target.append(b"a").unwrap();
        target.sync().unwrap();
        target.append(b"b").unwrap();
        let err = target.sync().unwrap_err();
        assert!(err.to_string().contains("queue-sync #2"), "{err}");
        target.sync().unwrap();
        assert_eq!(env.sync_points_on(1), 5);
        assert_eq!(env.sync_points_on(2), 3);
        assert_eq!(env.sync_points(), 8, "global numbering still counts every op");
        assert_eq!(
            env.events(),
            vec![FaultEvent::FailedQueueSync { q: 2, n: 2, path: PathBuf::from("target") }]
        );
    }

    #[test]
    fn queue_targeted_append_uses_ambient_queue() {
        let env = over_queues(4);
        env.set_plan(FaultPlan {
            fail_append_on_queue: Some((3, 2)),
            ..Default::default()
        });
        let _g = crate::ioqueue::QueueScope::enter(3);
        let mut w = env.new_writable(Path::new("f")).unwrap();
        w.append(b"1").unwrap();
        let err = w.append(b"2").unwrap_err();
        assert!(err.to_string().contains("queue-append #2"), "{err}");
        w.append(b"2-retry").unwrap();
        assert_eq!(env.appends_on(3), 3);
        assert_eq!(env.appends(), 3);
    }

    #[test]
    fn queue_crash_freezes_whole_env() {
        let env = over_queues(2);
        write_all(&env, Path::new("durable"), b"keep").unwrap();
        env.set_plan(FaultPlan {
            crash_at_queue_sync: Some((1, 1)),
            ..Default::default()
        });
        // Queue-0 traffic sails past the queue-1 trigger.
        write_all(&env, Path::new("also-durable"), b"keep").unwrap();
        let mut w = env.new_writable_on(Path::new("doomed"), 1).unwrap();
        w.append(b"never synced").unwrap();
        let err = w.sync().unwrap_err();
        assert!(err.to_string().contains("simulated power failure"), "{err}");
        assert!(env.crashed(), "a queue crash downs the whole device");
        env.heal();
        assert!(env.exists(Path::new("durable")));
        assert!(env.exists(Path::new("also-durable")));
        assert!(!env.exists(Path::new("doomed")));
        match &env.events()[..] {
            [FaultEvent::QueueCrash { q: 1, n: 1, path, torn: 0 }] => {
                assert_eq!(path, Path::new("doomed"));
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn per_queue_numbering_is_deterministic_under_concurrency() {
        // Two threads, each owning one queue via its ambient pin — the
        // global interleaving is nondeterministic, but each queue's count
        // reflects exactly its owner's program order.
        for _ in 0..3 {
            let env = Arc::new(over_queues(2));
            let hs: Vec<_> = (0..2usize)
                .map(|q| {
                    let env = env.clone();
                    std::thread::spawn(move || {
                        let _g = crate::ioqueue::QueueScope::enter(q);
                        let mut w = env
                            .new_writable(Path::new(&format!("t{q}")))
                            .unwrap();
                        for i in 0..(q + 1) * 3 {
                            w.append(&[i as u8]).unwrap();
                            w.sync().unwrap();
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(env.sync_points_on(0), 3);
            assert_eq!(env.sync_points_on(1), 6);
            assert_eq!(env.appends_on(0), 3);
            assert_eq!(env.appends_on(1), 6);
            // Global counts are exact (scheduling-independent totals).
            assert_eq!(env.sync_points(), 9);
            assert_eq!(env.appends(), 9);
        }
    }

    #[test]
    fn dry_run_then_crash_enumeration_is_reproducible() {
        // The pattern the crash matrix uses: dry-run to count sync
        // points, then re-run the same workload crashing at each point.
        let workload = |env: &FaultyEnv| -> Vec<io::Result<()>> {
            (0..4u8)
                .map(|i| write_all(env, Path::new(&format!("f{i}")), &[i]))
                .collect()
        };
        let dry = FaultyEnv::over_mem();
        let results = workload(&dry);
        assert!(results.iter().all(|r| r.is_ok()));
        let total = dry.sync_points();
        assert_eq!(total, 4);

        for point in 1..=total {
            let env = FaultyEnv::over_mem();
            env.set_plan(FaultPlan { crash_at_sync: Some(point), ..Default::default() });
            let results = workload(&env);
            assert!(env.crashed(), "crash point {point} must fire");
            let failed = results.iter().filter(|r| r.is_err()).count();
            assert!(failed >= 1);
            env.heal();
            // Exactly the writes whose sync preceded the crash survive.
            for i in 0..4u8 {
                let path = format!("f{i}");
                let should_survive = (i as u64) < point - 1;
                assert_eq!(
                    env.exists(Path::new(&path)),
                    should_survive,
                    "crash at {point}: file {path}"
                );
            }
        }
    }
}
