//! Real-filesystem `Env` implementation.
//!
//! Used when running the stack against an actual disk (the paper's
//! deployment mode). IO statistics are still collected so the harness can
//! report amplification on real hardware too.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::env::{Env, RandomAccessFile, SequentialFile, WritableFile};
use crate::stats::{IoClass, IoStats, IoStatsSnapshot};

/// `Env` backed by `std::fs`.
pub struct StdEnv {
    stats: Arc<IoStats>,
}

impl Default for StdEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl StdEnv {
    /// Creates a real-filesystem environment.
    pub fn new() -> Self {
        StdEnv {
            stats: Arc::new(IoStats::new()),
        }
    }
}

struct StdWritable {
    file: fs::File,
    len: u64,
    stats: Arc<IoStats>,
    class: IoClass,
}

impl WritableFile for StdWritable {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        self.stats.record_write(data.len() as u64, self.class);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        self.stats.record_sync();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct StdRandomAccess {
    file: fs::File,
    len: u64,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for StdRandomAccess {
    #[cfg(unix)]
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_at(&self, _offset: u64, _buf: &mut [u8]) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "positional reads unsupported on this platform",
        ))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct StdSequential {
    file: fs::File,
    stats: Arc<IoStats>,
}

impl SequentialFile for StdSequential {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.file.read(buf)?;
        if n > 0 {
            self.stats.record_read(n as u64);
        }
        Ok(n)
    }
}

struct StdRandomRw {
    file: fs::File,
    len: u64,
    stats: Arc<IoStats>,
}

impl crate::env::RandomRwFile for StdRandomRw {
    #[cfg(unix)]
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_at(&self, _offset: u64, _buf: &mut [u8]) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "unsupported"))
    }

    #[cfg(unix)]
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, offset)?;
        self.file.sync_data()?;
        self.len = self.len.max(offset + data.len() as u64);
        self.stats.record_write(data.len() as u64, IoClass::Misc);
        self.stats.record_sync();
        Ok(())
    }

    #[cfg(not(unix))]
    fn write_at(&mut self, _offset: u64, _data: &[u8]) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "unsupported"))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

fn class_of(path: &Path) -> IoClass {
    IoClass::of_file_name(
        &path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    )
}

impl Env for StdEnv {
    fn new_writable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdWritable {
            file,
            len: 0,
            stats: self.stats.clone(),
            class: class_of(path),
        }))
    }

    fn new_appendable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>> {
        let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(Box::new(StdWritable {
            file,
            len,
            stats: self.stats.clone(),
            class: class_of(path),
        }))
    }

    fn new_random_access(&self, path: &Path) -> io::Result<Box<dyn RandomAccessFile>> {
        let file = fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Box::new(StdRandomAccess {
            file,
            len,
            stats: self.stats.clone(),
        }))
    }

    fn new_sequential(&self, path: &Path) -> io::Result<Box<dyn SequentialFile>> {
        let file = fs::File::open(path)?;
        Ok(Box::new(StdSequential {
            file,
            stats: self.stats.clone(),
        }))
    }

    fn new_random_rw(&self, path: &Path) -> io::Result<Box<dyn crate::env::RandomRwFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Box::new(StdRandomRw {
            file,
            len,
            stats: self.stats.clone(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(path)? {
            out.push(PathBuf::from(entry?.file_name()));
        }
        out.sort();
        Ok(out)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn file_size(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn io_stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{read_all, write_all};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p2kvs-stdenv-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_on_real_fs() {
        let dir = tmpdir("roundtrip");
        let env = StdEnv::new();
        let path = dir.join("000001.log");
        write_all(&env, &path, b"persisted").unwrap();
        assert_eq!(read_all(&env, &path).unwrap(), b"persisted");
        assert_eq!(env.file_size(&path).unwrap(), 9);
        let listing = env.list_dir(&dir).unwrap();
        assert_eq!(listing, vec![PathBuf::from("000001.log")]);
        let stats = env.io_stats();
        assert!(stats.bytes_written >= 9);
        assert!(stats.wal_bytes >= 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appendable_and_rename() {
        let dir = tmpdir("append");
        let env = StdEnv::new();
        let a = dir.join("a.wal");
        let b = dir.join("b.wal");
        write_all(&env, &a, b"one").unwrap();
        let mut w = env.new_appendable(&a).unwrap();
        w.append(b"two").unwrap();
        w.sync().unwrap();
        drop(w);
        env.rename(&a, &b).unwrap();
        assert!(!env.exists(&a));
        assert_eq!(read_all(&env, &b).unwrap(), b"onetwo");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_read_on_real_fs() {
        let dir = tmpdir("seq");
        let env = StdEnv::new();
        let path = dir.join("s.bin");
        write_all(&env, &path, &[9u8; 100]).unwrap();
        let mut s = env.new_sequential(&path).unwrap();
        let mut buf = [0u8; 64];
        assert_eq!(s.read(&mut buf).unwrap(), 64);
        assert_eq!(s.read(&mut buf).unwrap(), 36);
        assert_eq!(s.read(&mut buf).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
