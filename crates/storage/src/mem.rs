//! In-memory filesystem with power-failure semantics.
//!
//! [`MemFs`] is the shared file store used by both [`MemEnv`] (no timing)
//! and [`crate::SimEnv`] (device timing). Its durability model mirrors a
//! POSIX page cache:
//!
//! * `append` makes data immediately visible to readers (page cache),
//! * `sync` marks the current length durable,
//! * [`MemFs::power_failure`] truncates every file back to its last synced
//!   length and *removes* files that were never synced at all — real
//!   filesystems do not guarantee that an unsynced creation survives a
//!   crash, not even as a zero-length entry. Renames carry the synced
//!   state with the file, so the write-tmp/sync/rename pattern survives.

use std::collections::HashMap;
use std::io;
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::device::DeviceModel;
use crate::env::{Env, RandomAccessFile, SequentialFile, WritableFile};
use crate::ioqueue::{resolve_queue, QueueId};
use crate::stats::{IoClass, IoStats, IoStatsSnapshot};

/// One in-memory file.
struct MemFile {
    /// Unique id used by the device model's seek tracking.
    id: u64,
    data: Vec<u8>,
    /// Bytes guaranteed durable across a power failure.
    synced: usize,
}

type FileRef = Arc<Mutex<MemFile>>;

/// The shared in-memory file store.
pub struct MemFs {
    files: RwLock<HashMap<PathBuf, FileRef>>,
    dirs: RwLock<std::collections::HashSet<PathBuf>>,
    next_id: AtomicU64,
    stats: Arc<IoStats>,
}

/// Normalizes a path without touching the real filesystem.
fn normalize(path: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in path.components() {
        match c {
            Component::CurDir => {}
            Component::ParentDir => {
                out.pop();
            }
            other => out.push(other),
        }
    }
    out
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", path.display()))
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemFs {
            files: RwLock::new(HashMap::new()),
            dirs: RwLock::new(std::collections::HashSet::new()),
            next_id: AtomicU64::new(1),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The store's IO counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Simulates a power failure: every file is truncated to its last
    /// synced length, and files never synced at all disappear entirely
    /// (their creation never reached the disk's metadata journal).
    pub fn power_failure(&self) {
        let mut files = self.files.write();
        files.retain(|_, file| {
            let mut f = file.lock();
            if f.synced == 0 {
                return false;
            }
            let synced = f.synced;
            f.data.truncate(synced);
            true
        });
    }

    /// Lets up to `extra` unsynced bytes of `path` survive the next
    /// [`MemFs::power_failure`], modeling a write torn mid-sync-interval:
    /// the drive persisted part of a write that was never acknowledged.
    /// Returns the number of bytes actually torn in.
    pub fn tear(&self, path: &Path, extra: usize) -> usize {
        match self.get(path) {
            Some(file) => {
                let mut f = file.lock();
                let torn = extra.min(f.data.len() - f.synced);
                f.synced += torn;
                torn
            }
            None => 0,
        }
    }

    /// Total bytes currently held across all files (for footprint checks).
    pub fn total_resident_bytes(&self) -> u64 {
        self.files
            .read()
            .values()
            .map(|f| f.lock().data.len() as u64)
            .sum()
    }

    fn get(&self, path: &Path) -> Option<FileRef> {
        self.files.read().get(&normalize(path)).cloned()
    }

    fn create(&self, path: &Path, truncate: bool) -> FileRef {
        let path = normalize(path);
        let mut files = self.files.write();
        if let Some(existing) = files.get(&path) {
            if truncate {
                let mut f = existing.lock();
                f.data.clear();
                f.synced = 0;
            }
            return existing.clone();
        }
        let file = Arc::new(Mutex::new(MemFile {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            data: Vec::new(),
            synced: 0,
        }));
        files.insert(path, file.clone());
        file
    }
}

/// Writable handle; optionally charges a device model.
struct MemWritable {
    file: FileRef,
    device: Option<Arc<DeviceModel>>,
    stats: Arc<IoStats>,
    class: IoClass,
    /// Device offset up to which bytes have been charged.
    charged: u64,
    writeback_threshold: usize,
    /// Explicit placement pin; outranks the ambient thread queue.
    queue_pin: Option<QueueId>,
    /// Device queue count, for per-op queue resolution.
    queues: usize,
}

impl MemWritable {
    /// Charges the device for bytes appended since the last charge.
    fn writeback(&mut self) {
        let (id, len) = {
            let f = self.file.lock();
            (f.id, f.data.len() as u64)
        };
        if len <= self.charged {
            return;
        }
        let bytes = len - self.charged;
        let q = resolve_queue(self.queue_pin, id, self.queues);
        self.stats.record_write_on(bytes, self.class, q);
        if let Some(dev) = &self.device {
            let busy = dev.write(id, self.charged, bytes, q);
            self.stats.record_busy_on(busy, q);
        }
        self.charged = len;
    }
}

impl WritableFile for MemWritable {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        {
            let mut f = self.file.lock();
            f.data.extend_from_slice(data);
        }
        let pending = {
            let f = self.file.lock();
            f.data.len() as u64 - self.charged
        };
        if pending as usize >= self.writeback_threshold {
            self.writeback();
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writeback();
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.writeback();
        let id = {
            let mut f = self.file.lock();
            let len = f.data.len();
            f.synced = len;
            f.id
        };
        let q = resolve_queue(self.queue_pin, id, self.queues);
        self.stats.record_sync_on(q);
        if let Some(dev) = &self.device {
            let busy = dev.sync(q);
            self.stats.record_busy_on(busy, q);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.file.lock().data.len() as u64
    }
}

/// Positional read handle.
struct MemRandomAccess {
    file: FileRef,
    device: Option<Arc<DeviceModel>>,
    stats: Arc<IoStats>,
    queues: usize,
}

impl RandomAccessFile for MemRandomAccess {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let id = {
            let f = self.file.lock();
            let start = offset as usize;
            let end = start + buf.len();
            if end > f.data.len() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("read [{start}, {end}) past EOF {}", f.data.len()),
                ));
            }
            buf.copy_from_slice(&f.data[start..end]);
            f.id
        };
        let q = resolve_queue(None, id, self.queues);
        self.stats.record_read_on(buf.len() as u64, q);
        if let Some(dev) = &self.device {
            let busy = dev.read(id, offset, buf.len() as u64, q);
            self.stats.record_busy_on(busy, q);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.file.lock().data.len() as u64
    }
}

/// Sequential read handle.
struct MemSequential {
    file: FileRef,
    device: Option<Arc<DeviceModel>>,
    stats: Arc<IoStats>,
    pos: u64,
    queues: usize,
}

impl SequentialFile for MemSequential {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let (id, n) = {
            let f = self.file.lock();
            let start = (self.pos as usize).min(f.data.len());
            let n = buf.len().min(f.data.len() - start);
            buf[..n].copy_from_slice(&f.data[start..start + n]);
            (f.id, n)
        };
        if n > 0 {
            let q = resolve_queue(None, id, self.queues);
            self.stats.record_read_on(n as u64, q);
            if let Some(dev) = &self.device {
                let busy = dev.read(id, self.pos, n as u64, q);
                self.stats.record_busy_on(busy, q);
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// Read-write handle with in-place positional writes.
struct MemRandomRw {
    file: FileRef,
    device: Option<Arc<DeviceModel>>,
    stats: Arc<IoStats>,
    queues: usize,
}

impl crate::env::RandomRwFile for MemRandomRw {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let id = {
            let f = self.file.lock();
            let start = offset as usize;
            let end = start + buf.len();
            if end > f.data.len() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("read [{start}, {end}) past EOF {}", f.data.len()),
                ));
            }
            buf.copy_from_slice(&f.data[start..end]);
            f.id
        };
        let q = resolve_queue(None, id, self.queues);
        self.stats.record_read_on(buf.len() as u64, q);
        if let Some(dev) = &self.device {
            let busy = dev.read(id, offset, buf.len() as u64, q);
            self.stats.record_busy_on(busy, q);
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let id = {
            let mut f = self.file.lock();
            let end = offset as usize + data.len();
            if end > f.data.len() {
                f.data.resize(end, 0);
            }
            f.data[offset as usize..end].copy_from_slice(data);
            // In-place writes are durable immediately (slot-commit model).
            let len = f.data.len();
            f.synced = f.synced.max(len.min(end));
            f.id
        };
        let q = resolve_queue(None, id, self.queues);
        self.stats.record_write_on(data.len() as u64, IoClass::Misc, q);
        if let Some(dev) = &self.device {
            let busy = dev.write(id, offset, data.len() as u64, q);
            self.stats.record_busy_on(busy, q);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.file.lock().data.len() as u64
    }
}

/// An `Env` over a [`MemFs`], optionally timing IOs on a device model.
pub struct MemEnv {
    fs: Arc<MemFs>,
    device: Option<Arc<DeviceModel>>,
}

impl Default for MemEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl MemEnv {
    /// An untimed in-memory env.
    pub fn new() -> Self {
        MemEnv {
            fs: Arc::new(MemFs::new()),
            device: None,
        }
    }

    /// An env over an existing store with an optional device model
    /// (used by [`crate::SimEnv`]).
    pub fn with_parts(fs: Arc<MemFs>, device: Option<Arc<DeviceModel>>) -> Self {
        MemEnv { fs, device }
    }

    /// The underlying store (failure injection, footprint checks).
    pub fn fs(&self) -> &Arc<MemFs> {
        &self.fs
    }

    fn writeback_threshold(&self) -> usize {
        self.device
            .as_ref()
            .map(|d| d.profile().writeback_threshold)
            .unwrap_or(64 * 1024)
    }

    fn queues(&self) -> usize {
        self.device.as_ref().map(|d| d.queue_count()).unwrap_or(1)
    }

    fn open_writable(
        &self,
        path: &Path,
        truncate: bool,
        queue_pin: Option<QueueId>,
    ) -> Box<dyn WritableFile> {
        let file = self.fs.create(path, truncate);
        let charged = if truncate { 0 } else { file.lock().data.len() as u64 };
        Box::new(MemWritable {
            file,
            device: self.device.clone(),
            stats: self.fs.stats.clone(),
            class: IoClass::of_file_name(
                &path.file_name().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default(),
            ),
            charged,
            writeback_threshold: self.writeback_threshold(),
            queue_pin,
            queues: self.queues(),
        })
    }
}

impl Env for MemEnv {
    fn new_writable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>> {
        Ok(self.open_writable(path, true, None))
    }

    fn new_appendable(&self, path: &Path) -> io::Result<Box<dyn WritableFile>> {
        Ok(self.open_writable(path, false, None))
    }

    fn new_writable_on(&self, path: &Path, queue: QueueId) -> io::Result<Box<dyn WritableFile>> {
        Ok(self.open_writable(path, true, Some(queue)))
    }

    fn new_appendable_on(&self, path: &Path, queue: QueueId) -> io::Result<Box<dyn WritableFile>> {
        Ok(self.open_writable(path, false, Some(queue)))
    }

    fn new_random_access(&self, path: &Path) -> io::Result<Box<dyn RandomAccessFile>> {
        let file = self.fs.get(path).ok_or_else(|| not_found(path))?;
        Ok(Box::new(MemRandomAccess {
            file,
            device: self.device.clone(),
            stats: self.fs.stats.clone(),
            queues: self.queues(),
        }))
    }

    fn new_sequential(&self, path: &Path) -> io::Result<Box<dyn SequentialFile>> {
        let file = self.fs.get(path).ok_or_else(|| not_found(path))?;
        Ok(Box::new(MemSequential {
            file,
            device: self.device.clone(),
            stats: self.fs.stats.clone(),
            pos: 0,
            queues: self.queues(),
        }))
    }

    fn new_random_rw(&self, path: &Path) -> io::Result<Box<dyn crate::env::RandomRwFile>> {
        let file = self.fs.create(path, false);
        Ok(Box::new(MemRandomRw {
            file,
            device: self.device.clone(),
            stats: self.fs.stats.clone(),
            queues: self.queues(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        let p = normalize(path);
        self.fs.files.read().contains_key(&p) || self.fs.dirs.read().contains(&p)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let dir = normalize(path);
        let mut out: Vec<PathBuf> = self
            .fs
            .files
            .read()
            .keys()
            .filter(|p| p.parent() == Some(dir.as_path()))
            .filter_map(|p| p.file_name().map(PathBuf::from))
            .collect();
        out.sort();
        Ok(out)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.fs
            .files
            .write()
            .remove(&normalize(path))
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.fs.files.write();
        let file = files.remove(&normalize(from)).ok_or_else(|| not_found(from))?;
        files.insert(normalize(to), file);
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut dirs = self.fs.dirs.write();
        let mut p = normalize(path);
        loop {
            dirs.insert(p.clone());
            match p.parent() {
                Some(parent) if parent != Path::new("") => p = parent.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        let prefix = normalize(path);
        self.fs.files.write().retain(|p, _| !p.starts_with(&prefix));
        self.fs.dirs.write().retain(|p| !p.starts_with(&prefix));
        Ok(())
    }

    fn file_size(&self, path: &Path) -> io::Result<u64> {
        let file = self.fs.get(path).ok_or_else(|| not_found(path))?;
        let len = file.lock().data.len() as u64;
        Ok(len)
    }

    fn io_stats(&self) -> IoStatsSnapshot {
        self.fs.stats.snapshot()
    }

    fn queue_count(&self) -> usize {
        self.queues()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{read_all, write_all};

    #[test]
    fn write_then_read_roundtrip() {
        let env = MemEnv::new();
        let path = Path::new("db/000001.log");
        write_all(&env, path, b"hello wal").unwrap();
        assert_eq!(read_all(&env, path).unwrap(), b"hello wal");
        assert_eq!(env.file_size(path).unwrap(), 9);
        assert!(env.exists(path));
    }

    #[test]
    fn append_is_visible_before_sync() {
        let env = MemEnv::new();
        let path = Path::new("f.log");
        let mut w = env.new_writable(path).unwrap();
        w.append(b"abc").unwrap();
        assert_eq!(read_all(&env, path).unwrap(), b"abc");
    }

    #[test]
    fn power_failure_drops_unsynced_data() {
        let env = MemEnv::new();
        let path = Path::new("f.log");
        let mut w = env.new_writable(path).unwrap();
        w.append(b"durable").unwrap();
        w.sync().unwrap();
        w.append(b"-volatile").unwrap();
        env.fs().power_failure();
        assert_eq!(read_all(&env, path).unwrap(), b"durable");
    }

    #[test]
    fn power_failure_removes_never_synced_files() {
        let env = MemEnv::new();
        let synced = Path::new("db/synced.log");
        let unsynced = Path::new("db/unsynced.log");
        let mut w = env.new_writable(synced).unwrap();
        w.append(b"keep").unwrap();
        w.sync().unwrap();
        let mut u = env.new_writable(unsynced).unwrap();
        u.append(b"lost").unwrap();
        env.fs().power_failure();
        assert!(env.exists(synced));
        assert!(
            !env.exists(unsynced),
            "a file never synced must not survive a crash, not even empty"
        );
    }

    #[test]
    fn power_failure_keeps_synced_file_renamed_into_place() {
        // The write-tmp/sync/rename pattern (CURRENT updates) must be
        // crash-safe: the synced state travels with the file across rename.
        let env = MemEnv::new();
        write_all(&env, Path::new("db/CURRENT.tmp"), b"MANIFEST-000002").unwrap();
        env.rename(Path::new("db/CURRENT.tmp"), Path::new("db/CURRENT")).unwrap();
        // And an unsynced file renamed into place must NOT survive.
        let mut w = env.new_writable(Path::new("db/next.tmp")).unwrap();
        w.append(b"half").unwrap();
        drop(w);
        env.rename(Path::new("db/next.tmp"), Path::new("db/next")).unwrap();
        env.fs().power_failure();
        assert_eq!(read_all(&env, Path::new("db/CURRENT")).unwrap(), b"MANIFEST-000002");
        assert!(!env.exists(Path::new("db/next")));
    }

    #[test]
    fn tear_lets_unsynced_prefix_survive() {
        let env = MemEnv::new();
        let path = Path::new("f.log");
        let mut w = env.new_writable(path).unwrap();
        w.append(b"durable").unwrap();
        w.sync().unwrap();
        w.append(b"-torn-rest").unwrap();
        assert_eq!(env.fs().tear(path, 5), 5);
        env.fs().power_failure();
        assert_eq!(read_all(&env, path).unwrap(), b"durable-torn");
        // Tearing past the unsynced length clamps.
        assert_eq!(env.fs().tear(Path::new("missing"), 3), 0);
    }

    #[test]
    fn appendable_preserves_existing_content() {
        let env = MemEnv::new();
        let path = Path::new("m/MANIFEST");
        write_all(&env, path, b"one").unwrap();
        let mut w = env.new_appendable(path).unwrap();
        w.append(b"two").unwrap();
        w.sync().unwrap();
        assert_eq!(read_all(&env, path).unwrap(), b"onetwo");
    }

    #[test]
    fn writable_truncates() {
        let env = MemEnv::new();
        let path = Path::new("f");
        write_all(&env, path, b"aaaa").unwrap();
        write_all(&env, path, b"b").unwrap();
        assert_eq!(read_all(&env, path).unwrap(), b"b");
    }

    #[test]
    fn read_past_eof_fails() {
        let env = MemEnv::new();
        let path = Path::new("f");
        write_all(&env, path, b"12345").unwrap();
        let r = env.new_random_access(path).unwrap();
        let mut buf = [0u8; 3];
        assert!(r.read_at(3, &mut buf).is_err());
        r.read_at(2, &mut buf).unwrap();
        assert_eq!(&buf, b"345");
    }

    #[test]
    fn sequential_reads_to_eof() {
        let env = MemEnv::new();
        let path = Path::new("f");
        write_all(&env, path, b"0123456789").unwrap();
        let mut s = env.new_sequential(path).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"0123");
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"89");
        assert_eq!(s.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn list_dir_and_remove() {
        let env = MemEnv::new();
        env.create_dir_all(Path::new("db")).unwrap();
        write_all(&env, Path::new("db/b.sst"), b"x").unwrap();
        write_all(&env, Path::new("db/a.log"), b"x").unwrap();
        write_all(&env, Path::new("other/c.log"), b"x").unwrap();
        let names = env.list_dir(Path::new("db")).unwrap();
        assert_eq!(names, vec![PathBuf::from("a.log"), PathBuf::from("b.sst")]);
        env.remove_file(Path::new("db/a.log")).unwrap();
        assert!(!env.exists(Path::new("db/a.log")));
        assert!(env.remove_file(Path::new("db/a.log")).is_err());
    }

    #[test]
    fn rename_replaces_target() {
        let env = MemEnv::new();
        write_all(&env, Path::new("tmp"), b"new").unwrap();
        write_all(&env, Path::new("cur"), b"old").unwrap();
        env.rename(Path::new("tmp"), Path::new("cur")).unwrap();
        assert_eq!(read_all(&env, Path::new("cur")).unwrap(), b"new");
        assert!(!env.exists(Path::new("tmp")));
        assert!(env.rename(Path::new("gone"), Path::new("x")).is_err());
    }

    #[test]
    fn remove_dir_all_removes_subtree() {
        let env = MemEnv::new();
        write_all(&env, Path::new("db/1/a"), b"x").unwrap();
        write_all(&env, Path::new("db/2/b"), b"x").unwrap();
        write_all(&env, Path::new("db2/c"), b"x").unwrap();
        env.remove_dir_all(Path::new("db")).unwrap();
        assert!(!env.exists(Path::new("db/1/a")));
        assert!(env.exists(Path::new("db2/c")));
    }

    #[test]
    fn stats_track_bytes() {
        let env = MemEnv::new();
        write_all(&env, Path::new("a.log"), &[7u8; 1000]).unwrap();
        let _ = read_all(&env, Path::new("a.log")).unwrap();
        let s = env.io_stats();
        assert_eq!(s.bytes_written, 1000);
        assert_eq!(s.wal_bytes, 1000);
        assert_eq!(s.bytes_read, 1000);
        assert_eq!(s.syncs, 1);
    }

    #[test]
    fn normalize_handles_dot_components() {
        let env = MemEnv::new();
        write_all(&env, Path::new("./db/../db/f"), b"x").unwrap();
        assert!(env.exists(Path::new("db/f")));
    }
}
