//! Simulated block-device timing model.
//!
//! The model is deliberately simple — the goal is to reproduce the *shape*
//! of the paper's device hierarchy, not cycle accuracy:
//!
//! * every IO pays a per-operation base latency (software + device command
//!   overhead),
//! * plus `bytes / bandwidth` transfer time,
//! * plus a seek penalty on HDDs whenever the access is not sequential with
//!   respect to the previous IO,
//! * while each **submission queue** services at most `queue_depth` IOs
//!   worth of work concurrently (internal parallelism: 1 for HDD, 2 for
//!   SATA, 8 for the Optane NVMe — split across `queues` queues),
//! * and `sync` pays an additional durability-barrier latency.
//!
//! # Multi-queue contention
//!
//! The device exposes `queues` independent submission queues, each with its
//! own virtual timeline. An IO contends only with IOs on *its* queue: a
//! compaction writing on queue 3 never delays a WAL append on queue 0, even
//! though both share the profile's aggregate service capacity
//! (`queues × queue_depth` ≈ `channels`). This is the mechanism p2KVS
//! exploits — placement decides contention, not a global device clock.
//! Single-queue profiles (the default for every stock constructor) collapse
//! to the old behavior exactly: one timeline, capacity = `channels`.
//!
//! # Waiting without spinning
//!
//! Service time is enforced with a **virtual device timeline** plus
//! **debt-batched sleeping**: each IO reserves capacity on its queue's
//! atomic "free at" clock, and the caller's wait is accumulated in a
//! thread-local debt that is slept off in OS-timer-sized chunks. This keeps
//! average throughput faithful to the model while (a) never busy-spinning —
//! essential on small CI machines where spinning starves every other
//! thread — and (b) letting concurrent waits from different threads overlap
//! in wall time.
//!
//! Profiles are calibrated to the paper's testbed (§5.1): HDD ≈ 0.2 GB/s
//! and ~8 ms seeks; SATA SSD ≈ 0.5 GB/s; Optane 905p ≈ 2.2 GB/s write /
//! 2.6 GB/s read with ~10 µs access latency.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::ioqueue::{QueueId, MAX_QUEUES};

/// Static description of a device's performance characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name used in benchmark output.
    pub name: &'static str,
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: u64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: u64,
    /// Per-IO base latency for reads.
    pub read_latency: Duration,
    /// Per-IO base latency for writes.
    pub write_latency: Duration,
    /// Additional latency of a durability barrier (fsync).
    pub sync_latency: Duration,
    /// Seek penalty charged on non-sequential access (0 for SSDs).
    pub seek_latency: Duration,
    /// Number of IOs the device services concurrently (aggregate internal
    /// parallelism, split across submission queues).
    pub channels: usize,
    /// Buffered bytes after which an appending file issues a writeback IO.
    pub writeback_threshold: usize,
    /// Number of independent submission queues (1..=[`MAX_QUEUES`]).
    pub queues: usize,
    /// IOs one queue services concurrently. Aggregate capacity is
    /// `queues × queue_depth`; stock profiles keep it equal to `channels`.
    pub queue_depth: usize,
}

impl DeviceProfile {
    /// 10 TB 7200 rpm SATA HDD (WDC WD100EFAX class).
    pub fn hdd() -> Self {
        DeviceProfile {
            name: "hdd",
            read_bw: 200 * 1024 * 1024,
            write_bw: 180 * 1024 * 1024,
            read_latency: Duration::from_micros(60),
            write_latency: Duration::from_micros(60),
            sync_latency: Duration::from_millis(4),
            seek_latency: Duration::from_millis(8),
            channels: 1,
            writeback_threshold: 512 * 1024,
            queues: 1,
            queue_depth: 1,
        }
    }

    /// SATA SSD (Samsung 860 PRO class).
    pub fn sata_ssd() -> Self {
        DeviceProfile {
            name: "sata-ssd",
            read_bw: 550 * 1024 * 1024,
            write_bw: 500 * 1024 * 1024,
            read_latency: Duration::from_micros(70),
            write_latency: Duration::from_micros(25),
            sync_latency: Duration::from_micros(400),
            seek_latency: Duration::ZERO,
            channels: 2,
            writeback_threshold: 256 * 1024,
            queues: 1,
            queue_depth: 2,
        }
    }

    /// NVMe Optane SSD (Intel Optane 905p class).
    pub fn nvme_optane() -> Self {
        DeviceProfile {
            name: "nvme-optane",
            read_bw: 2600 * 1024 * 1024,
            write_bw: 2200 * 1024 * 1024,
            read_latency: Duration::from_micros(8),
            write_latency: Duration::from_micros(6),
            sync_latency: Duration::from_micros(12),
            seek_latency: Duration::ZERO,
            channels: 8,
            writeback_threshold: 64 * 1024,
            queues: 1,
            queue_depth: 8,
        }
    }

    /// A zero-cost device for correctness tests.
    pub fn instant() -> Self {
        DeviceProfile {
            name: "instant",
            read_bw: u64::MAX,
            write_bw: u64::MAX,
            read_latency: Duration::ZERO,
            write_latency: Duration::ZERO,
            sync_latency: Duration::ZERO,
            seek_latency: Duration::ZERO,
            channels: usize::MAX,
            writeback_threshold: 64 * 1024,
            queues: 1,
            queue_depth: usize::MAX,
        }
    }

    /// Splits the profile's aggregate parallelism across `n` submission
    /// queues. Per-queue depth is `channels / n` (min 1), so total service
    /// capacity stays ≈ `channels` — the win from more queues is isolation
    /// (per-queue timelines), not free bandwidth.
    pub fn with_queues(mut self, n: usize) -> Self {
        let n = n.clamp(1, MAX_QUEUES);
        self.queues = n;
        self.queue_depth = if self.channels == usize::MAX {
            usize::MAX
        } else {
            (self.channels / n).max(1)
        };
        self
    }

    /// Aggregate service capacity: `queues × queue_depth` IOs at once.
    pub fn aggregate_depth(&self) -> usize {
        if self.queue_depth == usize::MAX {
            usize::MAX
        } else {
            self.queues.clamp(1, MAX_QUEUES) * self.queue_depth.max(1)
        }
    }

    /// Transfer time of `bytes` at `bw` bytes/second.
    fn transfer(bytes: u64, bw: u64) -> Duration {
        if bw == u64::MAX || bw == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / bw)
        }
    }
}

/// Identifies the position of the previous IO so HDD seeks can be modeled.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
struct HeadPos {
    file: u64,
    offset: u64,
}

thread_local! {
    /// Signed per-thread sleep debt in nanoseconds. Positive = owed wait;
    /// negative = credit from oversleeping (OS timers overshoot).
    static SLEEP_DEBT: Cell<i64> = const { Cell::new(0) };
}

/// Debt is slept off once it exceeds this (≈ 3–4 OS timer grains).
const DEBT_SLEEP_NS: i64 = 200_000;
/// Credit is capped so one long oversleep cannot hide a burst of IO.
const DEBT_CREDIT_CAP_NS: i64 = -2_000_000;

/// Per-queue timing state: an independent virtual timeline plus in-flight
/// accounting for introspection.
struct QueueState {
    /// Virtual "queue free at" clock, ns since the model's epoch.
    free_at: AtomicU64,
    /// Total IOs ever submitted to this queue.
    submitted: AtomicU64,
    /// Total service time charged on this queue, ns (unscaled model time).
    busy_ns: AtomicU64,
}

impl QueueState {
    fn new() -> Self {
        QueueState {
            free_at: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }
}

/// A point-in-time view of one submission queue, for metrics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueDepthSnapshot {
    /// Total IOs ever submitted to the queue.
    pub submitted: u64,
    /// Total model service time charged on the queue, nanoseconds.
    pub busy_ns: u64,
    /// Virtual backlog: how long a new IO submitted now would wait before
    /// the queue starts servicing it, nanoseconds. 0 when idle.
    pub backlog_ns: u64,
}

/// The runtime timing engine for one simulated device.
pub struct DeviceModel {
    profile: DeviceProfile,
    scale: f64,
    /// One independent timeline per submission queue.
    queues: Vec<QueueState>,
    epoch: Instant,
    head: Mutex<HeadPos>,
}

impl DeviceModel {
    /// Builds a model from a profile. The `P2KVS_SIM_TIME_SCALE` environment
    /// variable (a float, default 1.0) scales every charged latency, letting
    /// the benchmark harness trade fidelity for wall-clock time.
    pub fn from_profile(profile: DeviceProfile) -> Self {
        let scale = std::env::var("P2KVS_SIM_TIME_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0)
            .clamp(0.0, 100.0);
        let n = profile.queues.clamp(1, MAX_QUEUES);
        DeviceModel {
            profile,
            scale,
            queues: (0..n).map(|_| QueueState::new()).collect(),
            epoch: Instant::now(),
            head: Mutex::new(HeadPos::default()),
        }
    }

    /// The profile this model was built from.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Number of submission queues this device models.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// In-flight/backlog accounting for queue `q` (clamped into range).
    pub fn queue_snapshot(&self, q: QueueId) -> QueueDepthSnapshot {
        let qs = &self.queues[q % self.queues.len()];
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        QueueDepthSnapshot {
            submitted: qs.submitted.load(Ordering::Relaxed),
            busy_ns: qs.busy_ns.load(Ordering::Relaxed),
            backlog_ns: qs.free_at.load(Ordering::Relaxed).saturating_sub(now_ns),
        }
    }

    fn scaled(&self, d: Duration) -> Duration {
        if self.scale == 1.0 {
            d
        } else {
            d.mul_f64(self.scale)
        }
    }

    /// Reserves `service` worth of work on queue `queue` and charges the
    /// caller the resulting wait. Contention is per-queue: only IOs on the
    /// same queue push this one's start time out. Returns the model service
    /// time (for busy accounting).
    fn occupy(&self, queue: QueueId, service: Duration) -> Duration {
        let qs = &self.queues[queue % self.queues.len()];
        qs.submitted.fetch_add(1, Ordering::Relaxed);
        let svc = self.scaled(service);
        if svc.is_zero() {
            return service;
        }
        qs.busy_ns
            .fetch_add(service.as_nanos() as u64, Ordering::Relaxed);
        // Capacity consumed on this queue's timeline: the queue works on up
        // to `queue_depth` IOs at once.
        let depth = self.profile.queue_depth.min(64).max(1) as u32;
        let occupancy_ns = (svc.as_nanos() as u64 / u64::from(depth)).max(1);
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        // start = max(now, free_at); free_at' = start + occupancy.
        let mut start;
        let mut cur = qs.free_at.load(Ordering::Relaxed);
        loop {
            start = cur.max(now_ns);
            match qs.free_at.compare_exchange_weak(
                cur,
                start + occupancy_ns,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        // The IO completes at start + svc; the caller owes the difference.
        let completes = start + svc.as_nanos() as u64;
        let wait_ns = completes.saturating_sub(now_ns) as i64;
        Self::charge_wait(wait_ns);
        service
    }

    /// Adds `wait_ns` to the caller's sleep debt, sleeping it off in
    /// OS-timer-sized chunks with oversleep compensation.
    fn charge_wait(wait_ns: i64) {
        SLEEP_DEBT.with(|debt| {
            let mut d = debt.get() + wait_ns;
            if d >= DEBT_SLEEP_NS {
                let t0 = Instant::now();
                std::thread::sleep(Duration::from_nanos(d as u64));
                d -= t0.elapsed().as_nanos() as i64;
                if d < DEBT_CREDIT_CAP_NS {
                    d = DEBT_CREDIT_CAP_NS;
                }
            }
            debt.set(d);
        });
    }

    /// Test hook: the calling thread's current sleep debt in nanoseconds.
    pub fn thread_debt_ns() -> i64 {
        SLEEP_DEBT.with(|d| d.get())
    }

    /// Seek penalty for accessing (`file`, `offset`), updating the head to
    /// the end of the access. The head is physical and device-global — a
    /// seeking device (HDD) has one arm no matter how many queues feed it.
    fn seek_cost(&self, file: u64, offset: u64, len: u64) -> Duration {
        if self.profile.seek_latency.is_zero() {
            return Duration::ZERO;
        }
        let mut head = self.head.lock();
        let sequential = head.file == file && head.offset == offset;
        *head = HeadPos {
            file,
            offset: offset + len,
        };
        if sequential {
            Duration::ZERO
        } else {
            self.profile.seek_latency
        }
    }

    /// Charges a write of `bytes` at (`file`, `offset`) on `queue`; returns
    /// model time.
    pub fn write(&self, file: u64, offset: u64, bytes: u64, queue: QueueId) -> Duration {
        let svc = self.profile.write_latency
            + DeviceProfile::transfer(bytes, self.profile.write_bw)
            + self.seek_cost(file, offset, bytes);
        self.occupy(queue, svc)
    }

    /// Charges a read of `bytes` at (`file`, `offset`) on `queue`; returns
    /// model time.
    pub fn read(&self, file: u64, offset: u64, bytes: u64, queue: QueueId) -> Duration {
        let svc = self.profile.read_latency
            + DeviceProfile::transfer(bytes, self.profile.read_bw)
            + self.seek_cost(file, offset, bytes);
        self.occupy(queue, svc)
    }

    /// Charges a durability barrier on `queue`; returns model time.
    pub fn sync(&self, queue: QueueId) -> Duration {
        self.occupy(queue, self.profile.sync_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_scale(profile: DeviceProfile) -> DeviceModel {
        let mut m = DeviceModel::from_profile(profile);
        m.scale = 1.0;
        m
    }

    /// Runs `f` on a fresh thread so per-thread debt starts at zero and is
    /// fully settled (slept) before measuring.
    fn on_fresh_thread<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
        std::thread::spawn(move || {
            let out = f();
            // Settle remaining debt so wall-time assertions see it.
            DeviceModel::charge_wait(DEBT_SLEEP_NS);
            out
        })
        .join()
        .unwrap()
    }

    #[test]
    fn transfer_time_math() {
        let d = DeviceProfile::transfer(1024 * 1024, 1024 * 1024 * 1024);
        // 1 MiB over 1 GiB/s ≈ 1 ms.
        assert!(d >= Duration::from_micros(900) && d <= Duration::from_micros(1100));
        assert_eq!(DeviceProfile::transfer(123, u64::MAX), Duration::ZERO);
    }

    #[test]
    fn instant_device_is_free() {
        let m = no_scale(DeviceProfile::instant());
        let start = Instant::now();
        for i in 0..10_000 {
            m.write(1, i * 100, 100, 0);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn hdd_charges_seeks_on_random_access() {
        let (seq, rnd) = on_fresh_thread(|| {
            let m = no_scale(DeviceProfile::hdd());
            let t0 = Instant::now();
            for i in 0..4 {
                m.write(7, i * 128, 128, 0);
            }
            DeviceModel::charge_wait(DEBT_SLEEP_NS); // settle
            let seq = t0.elapsed();
            let t0 = Instant::now();
            for i in 0..4u64 {
                m.write(i % 2, i * 99_991, 128, 0);
            }
            DeviceModel::charge_wait(DEBT_SLEEP_NS);
            (seq, t0.elapsed())
        });
        assert!(rnd > seq, "random {rnd:?} should exceed sequential {seq:?}");
        assert!(rnd >= Duration::from_millis(25), "4 seeks ≈ 32ms, got {rnd:?}");
    }

    #[test]
    fn nvme_small_reads_are_cheap() {
        let wall = on_fresh_thread(|| {
            let m = no_scale(DeviceProfile::nvme_optane());
            let t0 = Instant::now();
            for i in 0..100u64 {
                m.read(3, i * 4096, 4096, 0);
            }
            DeviceModel::charge_wait(DEBT_SLEEP_NS);
            t0.elapsed()
        });
        // 100 × ~9.5µs of device time, debt-batched: ~1ms total.
        assert!(wall >= Duration::from_micros(600), "{wall:?}");
        assert!(wall < Duration::from_millis(50), "{wall:?}");
    }

    #[test]
    fn single_channel_serializes_concurrent_ios() {
        // One channel: 8 concurrent 5ms IOs take ≈ 40ms wall time.
        let mut profile = DeviceProfile::hdd();
        profile.write_latency = Duration::from_millis(5);
        profile.write_bw = u64::MAX;
        profile.seek_latency = Duration::ZERO;
        let m = std::sync::Arc::new(no_scale(profile));
        let start = Instant::now();
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let m = m.clone();
                std::thread::spawn(move || {
                    m.write(i, 0, 64, 0);
                    DeviceModel::charge_wait(DEBT_SLEEP_NS);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(35), "{:?}", start.elapsed());
    }

    #[test]
    fn multiple_channels_overlap() {
        let mut profile = DeviceProfile::nvme_optane();
        profile.write_latency = Duration::from_millis(5);
        profile.write_bw = u64::MAX;
        let m = std::sync::Arc::new(no_scale(profile));
        let start = Instant::now();
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let m = m.clone();
                std::thread::spawn(move || {
                    m.write(i, 0, 64, 0);
                    DeviceModel::charge_wait(DEBT_SLEEP_NS);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // 8 IOs over 8 channels ≈ 5–10 ms, far less than serialized 40 ms.
        assert!(start.elapsed() < Duration::from_millis(30), "{:?}", start.elapsed());
    }

    #[test]
    fn queues_have_independent_timelines() {
        // Depth-1 queues: 4 IOs of 5ms each on ONE queue serialize (≈20ms);
        // the same 4 IOs spread across 4 queues overlap (≈5ms). Aggregate
        // capacity is identical — isolation is what changes.
        let mut profile = DeviceProfile::nvme_optane();
        profile.write_latency = Duration::from_millis(5);
        profile.write_bw = u64::MAX;
        profile.channels = 4;
        let run = |spread: bool| {
            let m = std::sync::Arc::new(no_scale(profile.with_queues(4)));
            assert_eq!(m.queue_count(), 4);
            assert_eq!(m.profile().queue_depth, 1);
            let start = Instant::now();
            let hs: Vec<_> = (0..4usize)
                .map(|i| {
                    let m = m.clone();
                    std::thread::spawn(move || {
                        m.write(i as u64, 0, 64, if spread { i } else { 0 });
                        DeviceModel::charge_wait(DEBT_SLEEP_NS);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            start.elapsed()
        };
        let same_queue = run(false);
        let spread = run(true);
        assert!(same_queue >= Duration::from_millis(15), "{same_queue:?}");
        assert!(spread < Duration::from_millis(15), "{spread:?}");
    }

    #[test]
    fn queue_accounting_tracks_submissions_and_backlog() {
        let mut profile = DeviceProfile::sata_ssd();
        profile.write_latency = Duration::from_millis(2);
        profile.write_bw = u64::MAX;
        let m = no_scale(profile.with_queues(2));
        m.write(1, 0, 64, 0);
        m.write(1, 64, 64, 0);
        m.write(2, 0, 64, 1);
        let q0 = m.queue_snapshot(0);
        let q1 = m.queue_snapshot(1);
        assert_eq!(q0.submitted, 2);
        assert_eq!(q1.submitted, 1);
        assert!(q0.busy_ns >= 4_000_000, "{q0:?}");
        assert!(q1.busy_ns >= 2_000_000, "{q1:?}");
        // The issuing thread sleeps off each IO's wait before returning,
        // so its own backlog is already drained; it can never exceed the
        // service time charged on the queue.
        assert!(q0.backlog_ns <= q0.busy_ns, "{q0:?}");
        // Settle the debt this thread accumulated.
        DeviceModel::charge_wait(DEBT_SLEEP_NS);
    }

    #[test]
    fn with_queues_preserves_aggregate_capacity() {
        let p = DeviceProfile::nvme_optane().with_queues(4);
        assert_eq!(p.queues, 4);
        assert_eq!(p.queue_depth, 2);
        assert_eq!(p.aggregate_depth(), 8);
        // Clamped to MAX_QUEUES, never zero depth.
        let p = DeviceProfile::hdd().with_queues(99);
        assert_eq!(p.queues, MAX_QUEUES);
        assert_eq!(p.queue_depth, 1);
        let p = DeviceProfile::instant().with_queues(4);
        assert_eq!(p.queue_depth, usize::MAX);
        assert_eq!(p.aggregate_depth(), usize::MAX);
    }

    #[test]
    fn bandwidth_caps_throughput() {
        // 100 MiB at 1 GiB/s aggregate must take ≥ ~90ms of wall time.
        let wall = on_fresh_thread(|| {
            let mut profile = DeviceProfile::nvme_optane();
            profile.write_bw = 1024 * 1024 * 1024;
            profile.write_latency = Duration::ZERO;
            profile.channels = 1;
            profile.queue_depth = 1;
            let m = no_scale(profile);
            let t0 = Instant::now();
            for i in 0..100u64 {
                m.write(1, i << 20, 1 << 20, 0);
            }
            DeviceModel::charge_wait(DEBT_SLEEP_NS);
            t0.elapsed()
        });
        assert!(wall >= Duration::from_millis(85), "{wall:?}");
    }

    #[test]
    fn debt_is_compensated_not_accumulated() {
        // Many small charges must not each pay the OS timer floor.
        let wall = on_fresh_thread(|| {
            let mut profile = DeviceProfile::nvme_optane();
            profile.write_latency = Duration::from_micros(5);
            profile.write_bw = u64::MAX;
            profile.channels = 1;
            profile.queue_depth = 1;
            let m = no_scale(profile);
            let t0 = Instant::now();
            for i in 0..1000u64 {
                m.write(1, i * 64, 64, 0);
            }
            DeviceModel::charge_wait(DEBT_SLEEP_NS);
            t0.elapsed()
        });
        // Model time = 5ms; naive per-IO sleeping would cost ≥ 60ms.
        assert!(wall >= Duration::from_millis(4), "{wall:?}");
        assert!(wall < Duration::from_millis(40), "{wall:?}");
    }
}
