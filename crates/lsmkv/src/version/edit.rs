//! Version edits: the manifest's record type.
//!
//! A [`VersionEdit`] describes one atomic change to the LSM shape: files
//! added/removed per level plus updates to the WAL number, file-number
//! counter and last sequence. Edits are appended to the `MANIFEST` using
//! the WAL record format; recovery replays them in order.

use std::sync::Arc;

use p2kvs_util::coding::{
    get_length_prefixed, get_varint32, get_varint64, put_length_prefixed, put_varint32,
    put_varint64,
};

use crate::error::{Error, Result};

/// Metadata of one on-disk table file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMetaData {
    /// File number (names the `.sst` file).
    pub number: u64,
    /// File size in bytes.
    pub size: u64,
    /// Smallest internal key in the file.
    pub smallest: Vec<u8>,
    /// Largest internal key in the file.
    pub largest: Vec<u8>,
    /// Entry count (informational).
    pub entries: u64,
}

/// A delta applied to a [`super::Version`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VersionEdit {
    /// New WAL number: logs older than this are no longer needed.
    pub log_number: Option<u64>,
    /// High-water mark for file numbers.
    pub next_file_number: Option<u64>,
    /// Last sequence number persisted to tables.
    pub last_sequence: Option<u64>,
    /// Files added: `(level, meta)`.
    pub added: Vec<(usize, FileMetaData)>,
    /// Files removed: `(level, file_number)`.
    pub deleted: Vec<(usize, u64)>,
}

// Field tags.
const TAG_LOG_NUMBER: u32 = 1;
const TAG_NEXT_FILE: u32 = 2;
const TAG_LAST_SEQ: u32 = 3;
const TAG_ADDED: u32 = 4;
const TAG_DELETED: u32 = 5;

impl VersionEdit {
    /// Serializes the edit.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(v) = self.log_number {
            put_varint32(&mut out, TAG_LOG_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint32(&mut out, TAG_NEXT_FILE);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint32(&mut out, TAG_LAST_SEQ);
            put_varint64(&mut out, v);
        }
        for (level, f) in &self.added {
            put_varint32(&mut out, TAG_ADDED);
            put_varint32(&mut out, *level as u32);
            put_varint64(&mut out, f.number);
            put_varint64(&mut out, f.size);
            put_varint64(&mut out, f.entries);
            put_length_prefixed(&mut out, &f.smallest);
            put_length_prefixed(&mut out, &f.largest);
        }
        for (level, num) in &self.deleted {
            put_varint32(&mut out, TAG_DELETED);
            put_varint32(&mut out, *level as u32);
            put_varint64(&mut out, *num);
        }
        out
    }

    /// Parses an edit.
    pub fn decode(mut src: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        fn take_varint64(src: &mut &[u8]) -> Result<u64> {
            let (v, n) =
                get_varint64(src).ok_or_else(|| Error::corruption("truncated edit varint"))?;
            *src = &src[n..];
            Ok(v)
        }
        fn take_varint32(src: &mut &[u8]) -> Result<u32> {
            let (v, n) =
                get_varint32(src).ok_or_else(|| Error::corruption("truncated edit varint"))?;
            *src = &src[n..];
            Ok(v)
        }
        fn take_bytes(src: &mut &[u8]) -> Result<Vec<u8>> {
            let (b, n) =
                get_length_prefixed(src).ok_or_else(|| Error::corruption("truncated edit bytes"))?;
            let out = b.to_vec();
            *src = &src[n..];
            Ok(out)
        }
        while !src.is_empty() {
            let tag = take_varint32(&mut src)?;
            match tag {
                TAG_LOG_NUMBER => edit.log_number = Some(take_varint64(&mut src)?),
                TAG_NEXT_FILE => edit.next_file_number = Some(take_varint64(&mut src)?),
                TAG_LAST_SEQ => edit.last_sequence = Some(take_varint64(&mut src)?),
                TAG_ADDED => {
                    let level = take_varint32(&mut src)? as usize;
                    let number = take_varint64(&mut src)?;
                    let size = take_varint64(&mut src)?;
                    let entries = take_varint64(&mut src)?;
                    let smallest = take_bytes(&mut src)?;
                    let largest = take_bytes(&mut src)?;
                    edit.added.push((
                        level,
                        FileMetaData {
                            number,
                            size,
                            smallest,
                            largest,
                            entries,
                        },
                    ));
                }
                TAG_DELETED => {
                    let level = take_varint32(&mut src)? as usize;
                    let num = take_varint64(&mut src)?;
                    edit.deleted.push((level, num));
                }
                other => return Err(Error::corruption(format!("unknown edit tag {other}"))),
            }
        }
        Ok(edit)
    }
}

/// Shared file metadata handle.
pub type FileRef = Arc<FileMetaData>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file(n: u64) -> FileMetaData {
        FileMetaData {
            number: n,
            size: 1000 + n,
            smallest: format!("a{n}").into_bytes(),
            largest: format!("z{n}").into_bytes(),
            entries: 10 * n,
        }
    }

    #[test]
    fn empty_edit_roundtrip() {
        let e = VersionEdit::default();
        assert_eq!(VersionEdit::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn full_edit_roundtrip() {
        let mut e = VersionEdit::default();
        e.log_number = Some(12);
        e.next_file_number = Some(99);
        e.last_sequence = Some(123_456_789);
        e.added.push((0, sample_file(7)));
        e.added.push((3, sample_file(8)));
        e.deleted.push((1, 4));
        e.deleted.push((2, 5));
        assert_eq!(VersionEdit::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn truncated_edit_fails() {
        let mut e = VersionEdit::default();
        e.added.push((0, sample_file(7)));
        let enc = e.encode();
        assert!(VersionEdit::decode(&enc[..enc.len() - 3]).is_err());
    }

    #[test]
    fn unknown_tag_fails() {
        assert!(VersionEdit::decode(&[0x63]).is_err());
    }
}
