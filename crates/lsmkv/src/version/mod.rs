//! Versions: the immutable view of the LSM shape, and the version set that
//! evolves it through manifest-logged edits.
//!
//! * [`Version`] — per-level file lists. L0 (and every level under the
//!   fragmented policy) may contain overlapping files and is searched
//!   newest-file-first; deeper leveled levels are disjoint and binary
//!   searched.
//! * [`VersionSet`] — owns the current version, the `MANIFEST` log, the
//!   file-number allocator and compaction picking.

pub mod edit;
pub mod table_cache;

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use p2kvs_storage::EnvRef;

use crate::error::{Error, Result};
use crate::iterator::InternalIterator;
use crate::options::{CompactionStyle, Options};
use crate::sst::TableIterator;
use crate::types::{
    file_path, internal_cmp, seq_and_type, user_key, FileKind, SequenceNumber, ValueType,
    CURRENT_FILE,
};
use crate::wal::{LogReader, LogWriter};
use edit::{FileMetaData, FileRef, VersionEdit};
use table_cache::TableCache;

/// Outcome of a point lookup below the memtables.
#[derive(Debug, PartialEq, Eq)]
pub enum GetOutcome {
    /// Live value.
    Found(Vec<u8>),
    /// Tombstone visible at the snapshot.
    Deleted,
    /// No visible entry.
    NotFound,
}

/// An immutable snapshot of the file layout.
pub struct Version {
    /// Files per level. Ordering invariants:
    /// * L0 — descending file number (newest first).
    /// * Leveled L1+ — ascending smallest key, ranges disjoint.
    /// * Fragmented L1+ — descending file number (overlap allowed).
    pub levels: Vec<Vec<FileRef>>,
    style: CompactionStyle,
}

impl Version {
    /// An empty version with `n` levels.
    pub fn empty(n: usize, style: CompactionStyle) -> Version {
        Version {
            levels: vec![Vec::new(); n],
            style,
        }
    }

    /// Whether a level may contain overlapping files.
    pub fn level_overlaps(&self, level: usize) -> bool {
        level == 0 || self.style == CompactionStyle::Fragmented
    }

    /// Total bytes in `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.size).sum()
    }

    /// Number of files across all levels.
    pub fn num_files(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// File numbers referenced by this version.
    pub fn live_files(&self) -> HashSet<u64> {
        self.levels
            .iter()
            .flatten()
            .map(|f| f.number)
            .collect()
    }

    /// Whether `file`'s key range covers `ukey`.
    fn file_covers(file: &FileMetaData, ukey: &[u8]) -> bool {
        user_key(&file.smallest) <= ukey && ukey <= user_key(&file.largest)
    }

    /// Files of `level` whose user-key range intersects `[begin, end]`
    /// (`None` = unbounded), in the level's search order.
    pub fn overlapping(
        &self,
        level: usize,
        begin: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Vec<FileRef> {
        self.levels[level]
            .iter()
            .filter(|f| {
                let after = begin
                    .map(|b| user_key(&f.largest) < b)
                    .unwrap_or(false);
                let before = end.map(|e| user_key(&f.smallest) > e).unwrap_or(false);
                !after && !before
            })
            .cloned()
            .collect()
    }

    /// The candidate files for a point lookup of `ukey` in `level`, in the
    /// order they must be searched.
    fn candidates(&self, level: usize, ukey: &[u8]) -> Vec<FileRef> {
        if self.level_overlaps(level) {
            // Newest first (invariant: sorted by number descending).
            self.levels[level]
                .iter()
                .filter(|f| Self::file_covers(f, ukey))
                .cloned()
                .collect()
        } else {
            // Binary search the disjoint level.
            let files = &self.levels[level];
            let idx = files.partition_point(|f| user_key(&f.largest) < ukey);
            match files.get(idx) {
                Some(f) if Self::file_covers(f, ukey) => vec![f.clone()],
                _ => Vec::new(),
            }
        }
    }

    /// Looks up `ukey` as of `snapshot` through all levels.
    pub fn get(
        &self,
        ukey: &[u8],
        snapshot: SequenceNumber,
        cache: &TableCache,
        skip_block_cache: bool,
        stats: Option<&crate::stats::DbStats>,
    ) -> Result<GetOutcome> {
        let lookup = crate::types::make_internal_key(ukey, snapshot, ValueType::Value);
        for level in 0..self.levels.len() {
            for file in self.candidates(level, ukey) {
                let reader = cache.get(file.number, file.size)?;
                if !reader.may_contain(ukey) {
                    if let Some(s) = stats {
                        crate::stats::DbStats::bump(&s.bloom_skips, 1);
                    }
                    continue;
                }
                if let Some((ikey, value)) = reader.get(&lookup, skip_block_cache)? {
                    if user_key(&ikey) == ukey {
                        return Ok(match seq_and_type(&ikey).1 {
                            ValueType::Value => GetOutcome::Found(value),
                            ValueType::Deletion => GetOutcome::Deleted,
                        });
                    }
                }
            }
        }
        Ok(GetOutcome::NotFound)
    }

    /// Builds the internal iterators covering all levels.
    pub fn iterators(&self, cache: &Arc<TableCache>) -> Result<Vec<Box<dyn InternalIterator>>> {
        let mut out: Vec<Box<dyn InternalIterator>> = Vec::new();
        for level in 0..self.levels.len() {
            if self.level_overlaps(level) {
                for f in &self.levels[level] {
                    let reader = cache.get(f.number, f.size)?;
                    out.push(Box::new(reader.iter()));
                }
            } else if !self.levels[level].is_empty() {
                out.push(Box::new(LevelFileIterator::new(
                    self.levels[level].clone(),
                    cache.clone(),
                )));
            }
        }
        Ok(out)
    }

    fn sort_level(files: &mut Vec<FileRef>, level: usize, style: CompactionStyle) {
        if level == 0 || style == CompactionStyle::Fragmented {
            files.sort_by(|a, b| b.number.cmp(&a.number));
        } else {
            files.sort_by(|a, b| internal_cmp(&a.smallest, &b.smallest));
        }
    }

    /// Applies `edit`, producing the successor version.
    pub fn apply(&self, edit: &VersionEdit) -> Version {
        let mut levels = self.levels.clone();
        for (level, num) in &edit.deleted {
            levels[*level].retain(|f| f.number != *num);
        }
        for (level, meta) in &edit.added {
            levels[*level].push(Arc::new(meta.clone()));
        }
        for (level, files) in levels.iter_mut().enumerate() {
            Self::sort_level(files, level, self.style);
        }
        Version {
            levels,
            style: self.style,
        }
    }
}

/// Concatenating iterator over a disjoint (leveled) level.
pub struct LevelFileIterator {
    files: Vec<FileRef>,
    cache: Arc<TableCache>,
    index: usize,
    current: Option<TableIterator>,
    /// First table-open error; reported through `status` so a failed open
    /// is not mistaken for the end of the level.
    error: Option<Error>,
}

impl LevelFileIterator {
    /// Creates an iterator over `files` (sorted by smallest key).
    pub fn new(files: Vec<FileRef>, cache: Arc<TableCache>) -> LevelFileIterator {
        LevelFileIterator {
            files,
            cache,
            index: 0,
            current: None,
            error: None,
        }
    }

    fn open(&mut self, index: usize) -> bool {
        self.index = index;
        self.current = None;
        let Some(f) = self.files.get(index) else {
            return false;
        };
        match self.cache.get(f.number, f.size) {
            Ok(reader) => {
                self.current = Some(reader.iter());
                true
            }
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                false
            }
        }
    }

    fn skip_exhausted(&mut self) {
        while self
            .current
            .as_ref()
            .map(|it| !it.valid())
            .unwrap_or(false)
        {
            // A table iterator that died with a read error must not be
            // skipped over as if its file had simply ended.
            if let Some(it) = &self.current {
                if let Err(e) = it.status() {
                    if self.error.is_none() {
                        self.error = Some(e);
                    }
                    self.current = None;
                    return;
                }
            }
            let next = self.index + 1;
            if next >= self.files.len() {
                self.current = None;
                return;
            }
            if self.open(next) {
                if let Some(it) = &mut self.current {
                    it.seek_to_first();
                }
            }
        }
    }
}

impl InternalIterator for LevelFileIterator {
    fn valid(&self) -> bool {
        self.current.as_ref().map(|it| it.valid()).unwrap_or(false)
    }

    fn status(&self) -> Result<()> {
        if let Some(e) = &self.error {
            return Err(e.clone_shallow());
        }
        match &self.current {
            Some(it) => it.status(),
            None => Ok(()),
        }
    }

    fn seek_to_first(&mut self) {
        self.error = None;
        if self.open(0) {
            if let Some(it) = &mut self.current {
                it.seek_to_first();
            }
            self.skip_exhausted();
        }
    }

    fn seek(&mut self, target: &[u8]) {
        self.error = None;
        // Binary search for the first file whose largest key >= target.
        let idx = self
            .files
            .partition_point(|f| internal_cmp(&f.largest, target) == std::cmp::Ordering::Less);
        if idx >= self.files.len() {
            self.current = None;
            return;
        }
        if self.open(idx) {
            if let Some(it) = &mut self.current {
                it.seek(target);
            }
            self.skip_exhausted();
        }
    }

    fn next(&mut self) {
        self.current
            .as_mut()
            .expect("next() on invalid level iterator")
            .next();
        self.skip_exhausted();
    }

    fn key(&self) -> &[u8] {
        self.current.as_ref().expect("invalid").key()
    }

    fn value(&self) -> &[u8] {
        self.current.as_ref().expect("invalid").value()
    }
}

/// A compaction picked by the version set.
pub struct CompactionTask {
    /// Source level.
    pub level: usize,
    /// Destination level.
    pub output_level: usize,
    /// Files from `level`.
    pub inputs: Vec<FileRef>,
    /// Overlapping files already in `output_level` (leveled only).
    pub next_inputs: Vec<FileRef>,
}

impl CompactionTask {
    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs
            .iter()
            .chain(self.next_inputs.iter())
            .map(|f| f.size)
            .sum()
    }
}

/// Owns the current [`Version`] and the manifest.
pub struct VersionSet {
    env: EnvRef,
    dir: PathBuf,
    opts: Options,
    current: Arc<Version>,
    manifest: Option<LogWriter>,
    /// Set after a manifest append/sync error. The failed record may or
    /// may not be fully framed on disk, so retrying a later edit could
    /// replay the "failed" one too (e.g. re-adding a flushed file).
    /// Fail-stop is the only safe answer until the DB reopens and
    /// rewrites a fresh manifest.
    manifest_poisoned: bool,
    /// Number of the manifest file currently in use.
    pub manifest_number: u64,
    /// File-number allocator (shared with the DB for WAL numbers).
    pub next_file: Arc<AtomicU64>,
    /// Last sequence number recovered from the manifest.
    pub last_sequence: AtomicU64,
    /// WALs numbered below this are obsolete.
    pub log_number: u64,
    /// Round-robin compaction cursor per level (largest key compacted).
    compact_pointer: Vec<Vec<u8>>,
    /// Weak handles to every version ever installed; readers holding an
    /// `Arc<Version>` keep their files protected from GC (LevelDB's
    /// version refcounting).
    alive: Mutex<Vec<std::sync::Weak<Version>>>,
}

impl VersionSet {
    /// Creates or recovers the version set for `dir`.
    pub fn open(env: EnvRef, dir: &Path, opts: &Options) -> Result<VersionSet> {
        let current_path = dir.join(CURRENT_FILE);
        if env.exists(&current_path) {
            Self::recover(env, dir, opts)
        } else if opts.create_if_missing {
            Self::create(env, dir, opts)
        } else {
            Err(Error::InvalidState(format!(
                "database missing at {}",
                dir.display()
            )))
        }
    }

    fn create(env: EnvRef, dir: &Path, opts: &Options) -> Result<VersionSet> {
        env.create_dir_all(dir)?;
        let manifest_num = 1u64;
        let mut set = VersionSet {
            env: env.clone(),
            dir: dir.to_path_buf(),
            opts: opts.clone(),
            current: Arc::new(Version::empty(opts.num_levels, opts.compaction_style)),
            manifest: None,
            manifest_poisoned: false,
            manifest_number: 0,
            next_file: Arc::new(AtomicU64::new(2)),
            last_sequence: AtomicU64::new(0),
            log_number: 0,
            compact_pointer: vec![Vec::new(); opts.num_levels],
            alive: Mutex::new(Vec::new()),
        };
        set.register_current();
        set.roll_manifest(manifest_num)?;
        Ok(set)
    }

    fn recover(env: EnvRef, dir: &Path, opts: &Options) -> Result<VersionSet> {
        let current = p2kvs_storage::env::read_all(&*env, &dir.join(CURRENT_FILE))?;
        let manifest_name = String::from_utf8(current)
            .map_err(|_| Error::corruption("CURRENT is not utf-8"))?;
        let manifest_name = manifest_name.trim_end();
        let manifest_path = dir.join(manifest_name);
        let mut reader = LogReader::new(env.new_sequential(&manifest_path)?);
        let mut version = Version::empty(opts.num_levels, opts.compaction_style);
        let mut next_file = 2u64;
        let mut last_seq = 0u64;
        let mut log_number = 0u64;
        let mut record = Vec::new();
        while reader.read_record(&mut record)? {
            let edit = VersionEdit::decode(&record)?;
            if let Some(v) = edit.next_file_number {
                next_file = next_file.max(v);
            }
            if let Some(v) = edit.last_sequence {
                last_seq = last_seq.max(v);
            }
            if let Some(v) = edit.log_number {
                log_number = log_number.max(v);
            }
            for (_, f) in &edit.added {
                next_file = next_file.max(f.number + 1);
            }
            version = version.apply(&edit);
        }
        let manifest_num = crate::types::parse_file_name(manifest_name)
            .map(|(n, _)| n)
            .unwrap_or(1);
        let mut set = VersionSet {
            env: env.clone(),
            dir: dir.to_path_buf(),
            opts: opts.clone(),
            current: Arc::new(version),
            manifest: None,
            manifest_poisoned: false,
            manifest_number: 0,
            next_file: Arc::new(AtomicU64::new(next_file.max(manifest_num + 1))),
            last_sequence: AtomicU64::new(last_seq),
            log_number,
            compact_pointer: vec![Vec::new(); opts.num_levels],
            alive: Mutex::new(Vec::new()),
        };
        set.register_current();
        // Start a fresh manifest summarizing the recovered state so old
        // manifests never grow unboundedly.
        let new_manifest = set.allocate_file_number();
        set.roll_manifest(new_manifest)?;
        Ok(set)
    }

    /// Writes a fresh manifest containing a full snapshot of the current
    /// version, then points CURRENT at it.
    fn roll_manifest(&mut self, number: u64) -> Result<()> {
        let path = file_path(&self.dir, number, FileKind::Manifest);
        let mut writer = LogWriter::new(self.env.new_writable(&path)?);
        let mut snapshot = VersionEdit {
            log_number: Some(self.log_number),
            next_file_number: Some(self.next_file.load(Ordering::Relaxed)),
            last_sequence: Some(self.last_sequence.load(Ordering::Relaxed)),
            ..VersionEdit::default()
        };
        for (level, files) in self.current.levels.iter().enumerate() {
            for f in files {
                snapshot.added.push((level, (**f).clone()));
            }
        }
        writer.add_record(&snapshot.encode())?;
        writer.sync()?;
        // Point CURRENT at the new manifest atomically (write temp, rename).
        let tmp = self.dir.join("CURRENT.tmp");
        let name = format!("MANIFEST-{number:06}\n");
        p2kvs_storage::env::write_all(&*self.env, &tmp, name.as_bytes())?;
        self.env.rename(&tmp, &self.dir.join(CURRENT_FILE))?;
        self.manifest = Some(writer);
        self.manifest_number = number;
        Ok(())
    }

    /// The current version.
    pub fn current(&self) -> Arc<Version> {
        self.current.clone()
    }

    /// Allocates a fresh file number.
    pub fn allocate_file_number(&self) -> u64 {
        self.next_file.fetch_add(1, Ordering::Relaxed)
    }

    /// A handle to the file-number allocator usable without holding the
    /// database state lock (background jobs allocate output files with it).
    pub fn file_counter(&self) -> Arc<AtomicU64> {
        self.next_file.clone()
    }

    /// Logs `edit` to the manifest and installs the resulting version.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<()> {
        if self.manifest_poisoned {
            return Err(Error::InvalidState(
                "manifest poisoned by an earlier IO error; reopen the DB".to_string(),
            ));
        }
        edit.next_file_number = Some(self.next_file.load(Ordering::Relaxed));
        if edit.last_sequence.is_none() {
            edit.last_sequence = Some(self.last_sequence.load(Ordering::Relaxed));
        }
        if let Some(log) = edit.log_number {
            self.log_number = self.log_number.max(log);
        }
        let writer = self
            .manifest
            .as_mut()
            .expect("manifest writer always present after open");
        if let Err(e) = writer.add_record(&edit.encode()).and_then(|()| writer.sync()) {
            self.manifest_poisoned = true;
            return Err(e);
        }
        self.current = Arc::new(self.current.apply(&edit));
        self.register_current();
        Ok(())
    }

    /// Records the current version in the alive registry, pruning dead
    /// entries.
    fn register_current(&mut self) {
        let mut alive = self.alive.lock();
        alive.retain(|w| w.strong_count() > 0);
        alive.push(Arc::downgrade(&self.current));
    }

    /// File numbers referenced by *any* version still reachable — the
    /// current one or one pinned by an in-flight reader or iterator. Only
    /// files outside this set may be deleted.
    pub fn live_files_any(&self) -> HashSet<u64> {
        let mut out = self.current.live_files();
        let mut alive = self.alive.lock();
        alive.retain(|w| w.strong_count() > 0);
        for w in alive.iter() {
            if let Some(v) = w.upgrade() {
                out.extend(v.live_files());
            }
        }
        out
    }

    /// Updates the round-robin cursor after compacting up to `largest`.
    pub fn set_compact_pointer(&mut self, level: usize, largest: Vec<u8>) {
        self.compact_pointer[level] = largest;
    }

    /// Compaction score of each level; `>= 1.0` means compaction needed.
    pub fn compaction_scores(&self) -> Vec<f64> {
        let v = &self.current;
        let mut scores = vec![0.0; v.levels.len()];
        match self.opts.compaction_style {
            CompactionStyle::Leveled => {
                scores[0] = v.levels[0].len() as f64 / self.opts.l0_compaction_trigger as f64;
                for level in 1..v.levels.len() - 1 {
                    scores[level] =
                        v.level_bytes(level) as f64 / self.opts.level_target(level) as f64;
                }
            }
            CompactionStyle::Fragmented => {
                // PebblesDB-style: a level compacts only when it holds too
                // many overlapping fragments; size alone never triggers a
                // rewrite (that is where the write-amplification win
                // comes from).
                for level in 0..v.levels.len() - 1 {
                    let trigger = if level == 0 {
                        self.opts.l0_compaction_trigger
                    } else {
                        self.opts.fragment_merge_threshold
                    };
                    scores[level] = v.levels[level].len() as f64 / trigger as f64;
                }
            }
        }
        scores
    }

    /// Picks the most urgent compaction, if any.
    pub fn pick_compaction(&self) -> Option<CompactionTask> {
        self.pick_compaction_excluding(&[])
    }

    /// Picks the most urgent compaction whose source *and* output levels
    /// are both free in `busy` (indices past `busy.len()` count as free).
    /// L0→L1 takes absolute priority whenever it is eligible: L0 backlog
    /// is what stalls writers, so it must never queue behind deeper-level
    /// score maximization. Used by the multi-threaded scheduler to run
    /// compactions at disjoint level pairs concurrently.
    pub fn pick_compaction_excluding(&self, busy: &[bool]) -> Option<CompactionTask> {
        let scores = self.compaction_scores();
        let n_levels = self.current.levels.len();
        let free = |level: usize| {
            let out = (level + 1).min(n_levels - 1);
            !busy.get(level).copied().unwrap_or(false)
                && !busy.get(out).copied().unwrap_or(false)
        };
        let level = if scores[0] >= 1.0 && free(0) {
            0
        } else {
            scores
                .iter()
                .copied()
                .enumerate()
                .filter(|&(l, s)| s >= 1.0 && free(l))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?
                .0
        };
        let v = &self.current;
        let output_level = (level + 1).min(v.levels.len() - 1);
        match self.opts.compaction_style {
            CompactionStyle::Fragmented => {
                // Merge the *oldest* fragments of the level and append the
                // result to the next level without touching it (no
                // read-modify-write of the target: PebblesDB's
                // write-amplification win). Taking the oldest files keeps
                // the per-level invariant "higher file number = newer
                // data": the output's (new, high) number is correct in the
                // target level because it carries data newer than anything
                // already there, and the fragments left behind are newer
                // than the ones merged away.
                let files = &v.levels[level];
                let take = files.len().min(2 * self.opts.fragment_merge_threshold);
                let inputs: Vec<FileRef> = files.iter().rev().take(take).cloned().collect();
                Some(CompactionTask {
                    level,
                    output_level,
                    inputs,
                    next_inputs: Vec::new(),
                })
            }
            CompactionStyle::Leveled => {
                let inputs: Vec<FileRef> = if level == 0 {
                    v.levels[0].clone()
                } else {
                    // Round-robin: first file past the compaction cursor.
                    let files = &v.levels[level];
                    let start = files
                        .iter()
                        .position(|f| {
                            self.compact_pointer[level].is_empty()
                                || internal_cmp(&f.largest, &self.compact_pointer[level])
                                    == std::cmp::Ordering::Greater
                        })
                        .unwrap_or(0);
                    vec![files[start].clone()]
                };
                if inputs.is_empty() {
                    return None;
                }
                let smallest = inputs
                    .iter()
                    .map(|f| user_key(&f.smallest).to_vec())
                    .min()
                    .expect("nonempty inputs");
                let largest = inputs
                    .iter()
                    .map(|f| user_key(&f.largest).to_vec())
                    .max()
                    .expect("nonempty inputs");
                let next_inputs = v.overlapping(output_level, Some(&smallest), Some(&largest));
                Some(CompactionTask {
                    level,
                    output_level,
                    inputs,
                    next_inputs,
                })
            }
        }
    }

    /// Options the set was opened with.
    pub fn options(&self) -> &Options {
        &self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::make_internal_key;

    fn meta(num: u64, small: &str, large: &str) -> FileMetaData {
        FileMetaData {
            number: num,
            size: 1 << 20,
            smallest: make_internal_key(small.as_bytes(), 1, ValueType::Value),
            largest: make_internal_key(large.as_bytes(), 1, ValueType::Value),
            entries: 10,
        }
    }

    #[test]
    fn apply_add_delete_sorts_levels() {
        let v = Version::empty(7, CompactionStyle::Leveled);
        let mut e = VersionEdit::default();
        e.added.push((0, meta(3, "a", "m")));
        e.added.push((0, meta(5, "b", "z")));
        e.added.push((1, meta(9, "n", "p")));
        e.added.push((1, meta(8, "a", "c")));
        let v2 = v.apply(&e);
        // L0 newest first.
        assert_eq!(v2.levels[0][0].number, 5);
        assert_eq!(v2.levels[0][1].number, 3);
        // L1 by smallest key.
        assert_eq!(v2.levels[1][0].number, 8);
        assert_eq!(v2.levels[1][1].number, 9);
        let mut e2 = VersionEdit::default();
        e2.deleted.push((0, 3));
        let v3 = v2.apply(&e2);
        assert_eq!(v3.levels[0].len(), 1);
        assert_eq!(v3.num_files(), 3);
        assert!(v3.live_files().contains(&9));
        assert!(!v3.live_files().contains(&3));
    }

    #[test]
    fn overlapping_filters_by_range() {
        let v = Version::empty(7, CompactionStyle::Leveled);
        let mut e = VersionEdit::default();
        e.added.push((1, meta(1, "a", "c")));
        e.added.push((1, meta(2, "d", "f")));
        e.added.push((1, meta(3, "g", "i")));
        let v = v.apply(&e);
        let hit = v.overlapping(1, Some(b"e"), Some(b"h"));
        assert_eq!(hit.len(), 2);
        assert_eq!(hit[0].number, 2);
        assert_eq!(hit[1].number, 3);
        assert_eq!(v.overlapping(1, None, None).len(), 3);
        assert_eq!(v.overlapping(1, Some(b"x"), None).len(), 0);
        assert_eq!(v.overlapping(1, None, Some(b"a")).len(), 1);
    }

    #[test]
    fn candidates_l0_newest_first_l1_binary_search() {
        let v = Version::empty(7, CompactionStyle::Leveled);
        let mut e = VersionEdit::default();
        e.added.push((0, meta(1, "a", "z")));
        e.added.push((0, meta(4, "a", "z")));
        e.added.push((1, meta(2, "a", "c")));
        e.added.push((1, meta(3, "d", "f")));
        let v = v.apply(&e);
        let c0 = v.candidates(0, b"m");
        assert_eq!(c0.iter().map(|f| f.number).collect::<Vec<_>>(), vec![4, 1]);
        let c1 = v.candidates(1, b"e");
        assert_eq!(c1.len(), 1);
        assert_eq!(c1[0].number, 3);
        assert!(v.candidates(1, b"x").is_empty());
        // Key between files (gap).
        assert!(v.candidates(1, b"cc").is_empty());
    }

    #[test]
    fn fragmented_levels_search_all_overlaps() {
        let v = Version::empty(7, CompactionStyle::Fragmented);
        let mut e = VersionEdit::default();
        e.added.push((2, meta(10, "a", "m")));
        e.added.push((2, meta(12, "c", "z")));
        let v = v.apply(&e);
        let c = v.candidates(2, b"d");
        assert_eq!(c.iter().map(|f| f.number).collect::<Vec<_>>(), vec![12, 10]);
    }

    fn test_opts() -> Options {
        Options::for_test()
    }

    #[test]
    fn version_set_create_and_reopen() {
        let opts = test_opts();
        let env = opts.env.clone();
        let dir = Path::new("vsdb");
        {
            let mut set = VersionSet::open(env.clone(), dir, &opts).unwrap();
            let mut edit = VersionEdit::default();
            edit.added.push((0, meta(11, "a", "b")));
            edit.log_number = Some(3);
            set.last_sequence.store(42, Ordering::Relaxed);
            set.log_and_apply(edit).unwrap();
        }
        let set = VersionSet::open(env, dir, &opts).unwrap();
        assert_eq!(set.current().levels[0].len(), 1);
        assert_eq!(set.last_sequence.load(Ordering::Relaxed), 42);
        assert_eq!(set.log_number, 3);
        assert!(set.next_file.load(Ordering::Relaxed) > 11);
    }

    #[test]
    fn missing_db_without_create_fails() {
        let mut opts = test_opts();
        opts.create_if_missing = false;
        let env = opts.env.clone();
        assert!(VersionSet::open(env, Path::new("nope"), &opts).is_err());
    }

    #[test]
    fn compaction_scores_trigger_on_l0_count() {
        let opts = test_opts();
        let env = opts.env.clone();
        let mut set = VersionSet::open(env, Path::new("sc"), &opts).unwrap();
        assert!(set.pick_compaction().is_none());
        let mut edit = VersionEdit::default();
        for i in 0..opts.l0_compaction_trigger as u64 {
            edit.added.push((0, meta(20 + i, "a", "z")));
        }
        set.log_and_apply(edit).unwrap();
        let task = set.pick_compaction().expect("L0 full, must compact");
        assert_eq!(task.level, 0);
        assert_eq!(task.output_level, 1);
        assert_eq!(task.inputs.len(), opts.l0_compaction_trigger);
        assert!(task.input_bytes() > 0);
    }

    #[test]
    fn leveled_compaction_includes_next_level_overlap() {
        let opts = test_opts();
        let env = opts.env.clone();
        let mut set = VersionSet::open(env, Path::new("ovl"), &opts).unwrap();
        let mut edit = VersionEdit::default();
        // Oversize L1 (target is base_level_size = 128 KiB in tests; each
        // meta() is 1 MiB).
        edit.added.push((1, meta(30, "a", "m")));
        edit.added.push((2, meta(31, "k", "q")));
        edit.added.push((2, meta(32, "r", "t")));
        set.log_and_apply(edit).unwrap();
        let task = set.pick_compaction().expect("L1 oversize");
        assert_eq!(task.level, 1);
        assert_eq!(task.inputs.len(), 1);
        assert_eq!(task.next_inputs.len(), 1);
        assert_eq!(task.next_inputs[0].number, 31);
    }

    #[test]
    fn excluding_picker_prioritizes_l0_and_skips_busy_levels() {
        let opts = test_opts();
        let env = opts.env.clone();
        let mut set = VersionSet::open(env, Path::new("excl"), &opts).unwrap();
        let mut edit = VersionEdit::default();
        // Full L0 *and* a massively oversize L2 (higher score than L0).
        for i in 0..opts.l0_compaction_trigger as u64 {
            edit.added.push((0, meta(20 + i, "a", "m")));
        }
        for i in 0..8u64 {
            edit.added.push((2, meta(40 + i, "n", "z")));
        }
        set.log_and_apply(edit).unwrap();

        // L0 wins despite the bigger L2 score: L0 backlog stalls writers.
        let task = set.pick_compaction_excluding(&[]).expect("work available");
        assert_eq!(task.level, 0);

        // With L0→L1 claimed, the picker hands out the L2→L3 job — the two
        // can run concurrently on disjoint level pairs.
        let mut busy = vec![false; opts.num_levels];
        busy[0] = true;
        busy[1] = true;
        let task = set.pick_compaction_excluding(&busy).expect("deeper work available");
        assert_eq!(task.level, 2);
        assert_eq!(task.output_level, 3);

        // Claiming L2/L3 too leaves nothing runnable.
        busy[2] = true;
        busy[3] = true;
        assert!(set.pick_compaction_excluding(&busy).is_none());

        // A busy *output* level blocks its source level: L1 busy alone
        // blocks L0→L1 but not L2→L3.
        let mut busy = vec![false; opts.num_levels];
        busy[1] = true;
        let task = set.pick_compaction_excluding(&busy).expect("L2 still free");
        assert_eq!(task.level, 2);
    }

    #[test]
    fn manifest_io_error_poisons_version_set() {
        // After a failed manifest append/sync the record may or may not be
        // framed on disk; retrying later edits could duplicate the failed
        // one. The set must fail-stop instead of appending more.
        let faulty = Arc::new(p2kvs_storage::FaultyEnv::over_mem());
        let mut opts = Options::for_test();
        opts.env = faulty.clone();
        let mut set = VersionSet::open(faulty.clone(), Path::new("poison"), &opts).unwrap();
        let mut edit = VersionEdit::default();
        edit.added.push((1, meta(10, "a", "m")));
        set.log_and_apply(edit).unwrap();

        faulty.set_plan(p2kvs_storage::FaultPlan {
            fail_sync: Some(faulty.sync_points() + 1),
            ..Default::default()
        });
        let mut edit = VersionEdit::default();
        edit.added.push((1, meta(11, "n", "z")));
        let err = set.log_and_apply(edit).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // The in-memory version must not have applied the failed edit.
        assert!(!set.current().live_files().contains(&11));

        // Fault is one-shot, but the set stays poisoned anyway.
        let mut edit = VersionEdit::default();
        edit.added.push((1, meta(12, "n", "z")));
        let err = set.log_and_apply(edit).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");

        // Fail-stop ends with a restart: after power failure the unsynced
        // manifest tail (the failed record) is gone and recovery sees the
        // pre-error state cleanly.
        faulty.fs().power_failure();
        let set2 = VersionSet::open(faulty.clone(), Path::new("poison"), &opts).unwrap();
        assert!(set2.current().live_files().contains(&10));
        assert!(!set2.current().live_files().contains(&11));
    }

    #[test]
    fn fragmented_compaction_takes_whole_level_and_no_target_files() {
        let mut opts = test_opts();
        opts.compaction_style = CompactionStyle::Fragmented;
        let env = opts.env.clone();
        let mut set = VersionSet::open(env, Path::new("frag"), &opts).unwrap();
        let mut edit = VersionEdit::default();
        for i in 0..opts.fragment_merge_threshold as u64 {
            edit.added.push((1, meta(40 + i, "a", "z")));
        }
        edit.added.push((2, meta(60, "a", "z")));
        set.log_and_apply(edit).unwrap();
        let task = set.pick_compaction().expect("fragments over threshold");
        assert_eq!(task.level, 1);
        assert_eq!(task.inputs.len(), opts.fragment_merge_threshold);
        assert!(task.next_inputs.is_empty(), "fragmented never rewrites the target level");
    }
}
