//! Cache of open [`TableReader`]s keyed by file number.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use p2kvs_storage::EnvRef;

use crate::error::Result;
use crate::sst::{BlockCache, TableReader};
use crate::types::{file_path, FileKind};

/// Opens table files on demand and keeps the readers alive.
pub struct TableCache {
    env: EnvRef,
    dir: PathBuf,
    block_cache: Option<Arc<BlockCache>>,
    readers: Mutex<HashMap<u64, Arc<TableReader>>>,
}

impl TableCache {
    /// Creates a cache for tables inside `dir`.
    pub fn new(env: EnvRef, dir: PathBuf, block_cache: Option<Arc<BlockCache>>) -> TableCache {
        TableCache {
            env,
            dir,
            block_cache,
            readers: Mutex::new(HashMap::new()),
        }
    }

    /// Returns (opening if necessary) the reader for file `number`.
    pub fn get(&self, number: u64, size: u64) -> Result<Arc<TableReader>> {
        if let Some(r) = self.readers.lock().get(&number) {
            return Ok(r.clone());
        }
        let path = file_path(&self.dir, number, FileKind::Table);
        let file = self.env.new_random_access(&path)?;
        let reader = Arc::new(TableReader::open(
            file,
            size,
            number,
            self.block_cache.clone(),
        )?);
        self.readers.lock().insert(number, reader.clone());
        Ok(reader)
    }

    /// Drops the cached reader for a deleted file.
    pub fn evict(&self, number: u64) {
        self.readers.lock().remove(&number);
    }

    /// Number of cached readers (tests / memory accounting).
    pub fn len(&self) -> usize {
        self.readers.lock().len()
    }

    /// Whether no readers are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::{TableBuilder, TableConfig};
    use crate::types::{make_internal_key, ValueType};
    use p2kvs_storage::{Env, MemEnv};

    #[test]
    fn opens_once_and_caches() {
        let env: EnvRef = Arc::new(MemEnv::new());
        let dir = PathBuf::from("db");
        env.create_dir_all(&dir).unwrap();
        let path = file_path(&dir, 5, FileKind::Table);
        let mut b = TableBuilder::new(
            env.new_writable(&path).unwrap(),
            TableConfig {
                block_size: 512,
                restart_interval: 4,
                bloom_bits_per_key: 10,
            },
        );
        b.add(&make_internal_key(b"k", 1, ValueType::Value), b"v").unwrap();
        let summary = b.finish().unwrap();

        let cache = TableCache::new(env.clone(), dir, None);
        let r1 = cache.get(5, summary.file_size).unwrap();
        let r2 = cache.get(5, summary.file_size).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(cache.len(), 1);
        cache.evict(5);
        assert!(cache.is_empty());
        // Missing files error.
        assert!(cache.get(999, 100).is_err());
    }
}
