//! `lsmkv`: a from-scratch LSM-tree key-value engine.
//!
//! This crate is the workspace's stand-in for the production engines the
//! p2KVS paper layers its framework on. It implements the full LSM stack —
//! write-ahead log with RocksDB-style group commit, a concurrent skiplist
//! MemTable, SSTables with bloom filters and a block cache, a versioned
//! manifest, and background leveled (or PebblesDB-style fragmented)
//! compaction — behind a small public API:
//!
//! ```
//! use lsmkv::{Db, Options, WriteOptions};
//!
//! let opts = Options::for_test();
//! let db = Db::open(opts, "example-db").unwrap();
//! db.put(&WriteOptions::default(), b"key", b"value").unwrap();
//! assert_eq!(db.get(b"key").unwrap().unwrap(), b"value");
//! ```
//!
//! Engine *modes* reproduce the paper's baselines:
//! [`Options::rocksdb_like`] (all concurrency optimizations),
//! [`Options::leveldb_like`] (no concurrent MemTable / pipelining /
//! multiget) and [`Options::pebblesdb_like`] (fragmented compaction).

pub mod batch;
pub mod compaction;
pub mod db;
pub mod error;
pub mod iterator;
pub mod memtable;
pub mod options;
pub mod sst;
pub mod stats;
pub mod types;
pub mod version;
pub mod wal;

pub use batch::{BatchOp, WriteBatch};
pub use db::{Db, DbEvent, DbEventHook, DbIterator, Snapshot};
pub use error::{Error, Result};
pub use options::{CompactionStyle, Options, ReadOptions, SyncPolicy, WriteOptions};
pub use stats::{DbStats, WriteBreakdown};
