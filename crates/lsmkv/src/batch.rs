//! `WriteBatch`: the unit of atomic writes and of OBM request batching.
//!
//! Wire format (also the WAL payload):
//!
//! ```text
//! sequence: fixed64 | count: fixed32 | gsn: fixed64 | records...
//! record   := kTypeValue    varstring varstring
//!           | kTypeDeletion varstring
//! ```
//!
//! The `gsn` field is this reproduction's nonintrusive hook for the p2KVS
//! transaction layer (§4.5): WriteBatches split from one cross-instance
//! transaction carry the same Global Sequence Number, and recovery can skip
//! batches whose GSN exceeds the last committed one. Non-transactional
//! writes carry GSN 0 and are never rolled back.

use p2kvs_util::coding::{get_fixed32, get_fixed64, get_length_prefixed, put_length_prefixed};

use crate::error::{Error, Result};
use crate::types::{SequenceNumber, ValueType};

/// Byte offset layout of the header.
pub const BATCH_HEADER: usize = 8 + 4 + 8;

/// An ordered set of updates applied atomically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WriteBatch {
    rep: Vec<u8>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> WriteBatch {
        let mut rep = Vec::with_capacity(BATCH_HEADER + 64);
        rep.resize(BATCH_HEADER, 0);
        WriteBatch { rep }
    }

    /// Adds a key/value insertion.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.set_count(self.count() + 1);
        self.rep.push(ValueType::Value as u8);
        put_length_prefixed(&mut self.rep, key);
        put_length_prefixed(&mut self.rep, value);
    }

    /// Adds a deletion.
    pub fn delete(&mut self, key: &[u8]) {
        self.set_count(self.count() + 1);
        self.rep.push(ValueType::Deletion as u8);
        put_length_prefixed(&mut self.rep, key);
    }

    /// Removes all updates.
    pub fn clear(&mut self) {
        self.rep.truncate(0);
        self.rep.resize(BATCH_HEADER, 0);
    }

    /// Number of updates in the batch.
    pub fn count(&self) -> u32 {
        get_fixed32(&self.rep[8..12])
    }

    fn set_count(&mut self, n: u32) {
        self.rep[8..12].copy_from_slice(&n.to_le_bytes());
    }

    /// The sequence number assigned to the first update.
    pub fn sequence(&self) -> SequenceNumber {
        get_fixed64(&self.rep[..8])
    }

    /// Assigns the starting sequence number (done by the write path).
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.rep[..8].copy_from_slice(&seq.to_le_bytes());
    }

    /// The Global Sequence Number tag (0 = non-transactional).
    pub fn gsn(&self) -> u64 {
        get_fixed64(&self.rep[12..20])
    }

    /// Tags the batch with a Global Sequence Number.
    pub fn set_gsn(&mut self, gsn: u64) {
        self.rep[12..20].copy_from_slice(&gsn.to_le_bytes());
    }

    /// Total encoded size in bytes.
    pub fn size(&self) -> usize {
        self.rep.len()
    }

    /// Whether the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The full encoded representation (the WAL payload).
    pub fn data(&self) -> &[u8] {
        &self.rep
    }

    /// Rebuilds a batch from its encoded representation.
    pub fn from_data(data: &[u8]) -> Result<WriteBatch> {
        if data.len() < BATCH_HEADER {
            return Err(Error::corruption("write batch header truncated"));
        }
        let wb = WriteBatch { rep: data.to_vec() };
        // Validate the record stream eagerly so later iteration can't fail.
        let mut n = 0;
        for item in wb.iter() {
            item?;
            n += 1;
        }
        if n != wb.count() {
            return Err(Error::corruption(format!(
                "write batch count {} != records {}",
                wb.count(),
                n
            )));
        }
        Ok(wb)
    }

    /// Appends all updates of `other` to `self` (used by group commit and
    /// OBM merging). Sequence/GSN of `self` are preserved.
    pub fn append(&mut self, other: &WriteBatch) {
        self.set_count(self.count() + other.count());
        self.rep.extend_from_slice(&other.rep[BATCH_HEADER..]);
    }

    /// Iterates over the updates.
    pub fn iter(&self) -> BatchIter<'_> {
        BatchIter {
            rest: &self.rep[BATCH_HEADER..],
        }
    }
}

/// One decoded update.
#[derive(Debug, PartialEq, Eq)]
pub enum BatchOp<'a> {
    /// Insert `key -> value`.
    Put { key: &'a [u8], value: &'a [u8] },
    /// Delete `key`.
    Delete { key: &'a [u8] },
}

/// Iterator over a batch's updates.
pub struct BatchIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = Result<BatchOp<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        let tag = self.rest[0];
        self.rest = &self.rest[1..];
        let Some((key, used)) = get_length_prefixed(self.rest) else {
            self.rest = &[];
            return Some(Err(Error::corruption("truncated batch key")));
        };
        self.rest = &self.rest[used..];
        match ValueType::from_u8(tag) {
            Some(ValueType::Value) => {
                let Some((value, used)) = get_length_prefixed(self.rest) else {
                    self.rest = &[];
                    return Some(Err(Error::corruption("truncated batch value")));
                };
                self.rest = &self.rest[used..];
                Some(Ok(BatchOp::Put { key, value }))
            }
            Some(ValueType::Deletion) => Some(Ok(BatchOp::Delete { key })),
            None => {
                self.rest = &[];
                Some(Err(Error::corruption(format!("bad batch tag {tag}"))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_iterate() {
        let mut b = WriteBatch::new();
        b.put(b"k1", b"v1");
        b.delete(b"k2");
        b.put(b"k3", b"");
        assert_eq!(b.count(), 3);
        let ops: Vec<_> = b.iter().map(|r| r.unwrap()).collect();
        assert_eq!(
            ops,
            vec![
                BatchOp::Put { key: b"k1", value: b"v1" },
                BatchOp::Delete { key: b"k2" },
                BatchOp::Put { key: b"k3", value: b"" },
            ]
        );
    }

    #[test]
    fn sequence_and_gsn_fields() {
        let mut b = WriteBatch::new();
        assert_eq!(b.sequence(), 0);
        assert_eq!(b.gsn(), 0);
        b.set_sequence(12345);
        b.set_gsn(777);
        b.put(b"a", b"b");
        assert_eq!(b.sequence(), 12345);
        assert_eq!(b.gsn(), 777);
    }

    #[test]
    fn roundtrip_through_data() {
        let mut b = WriteBatch::new();
        b.set_sequence(9);
        b.put(b"alpha", b"beta");
        b.delete(b"gamma");
        let decoded = WriteBatch::from_data(b.data()).unwrap();
        assert_eq!(decoded, b);
        assert_eq!(decoded.count(), 2);
    }

    #[test]
    fn append_merges_counts() {
        let mut a = WriteBatch::new();
        a.put(b"1", b"x");
        let mut b = WriteBatch::new();
        b.put(b"2", b"y");
        b.delete(b"3");
        a.append(&b);
        assert_eq!(a.count(), 3);
        let keys: Vec<Vec<u8>> = a
            .iter()
            .map(|r| match r.unwrap() {
                BatchOp::Put { key, .. } | BatchOp::Delete { key } => key.to_vec(),
            })
            .collect();
        assert_eq!(keys, vec![b"1".to_vec(), b"2".to_vec(), b"3".to_vec()]);
    }

    #[test]
    fn clear_resets() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"b");
        b.set_gsn(4);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.gsn(), 0);
        assert_eq!(b.size(), BATCH_HEADER);
    }

    #[test]
    fn corrupt_data_is_rejected() {
        assert!(WriteBatch::from_data(&[0u8; 5]).is_err());
        let mut b = WriteBatch::new();
        b.put(b"key", b"value");
        let mut data = b.data().to_vec();
        data.truncate(data.len() - 2);
        assert!(WriteBatch::from_data(&data).is_err());
        // Wrong count.
        let mut data = b.data().to_vec();
        data[8] = 5;
        assert!(WriteBatch::from_data(&data).is_err());
        // Bad tag.
        let mut data = b.data().to_vec();
        data[BATCH_HEADER] = 9;
        assert!(WriteBatch::from_data(&data).is_err());
    }
}
