//! Flush (minor compaction) and major compaction jobs.
//!
//! These are pure jobs: given inputs and a version for overlap checks they
//! produce new table files and return the metadata, leaving manifest
//! logging and state swapping to the caller (the DB's background thread).
//! Keeping them pure makes the GC rules independently testable.
//!
//! # Subcompactions
//!
//! With `Options::subcompactions > 1` a major compaction partitions its
//! merged key range at user-key boundaries (drawn from the input files'
//! smallest keys) and writes the partitions on parallel threads, each with
//! its own merging iterator over the same inputs. Boundaries sit *between*
//! user keys, so a key's whole version chain stays inside one partition
//! and the first-occurrence GC rules apply unchanged — the concatenated
//! entry stream is identical to the single-threaded result, only the file
//! split points move. Each subcompaction pins its outputs to a distinct
//! device submission queue (starting after `Options::io_queue`), spreading
//! compaction writes away from the owning shard's WAL queue.

use std::path::Path;
use std::sync::Arc;

use p2kvs_storage::{EnvRef, QueueId};

use crate::error::{Error, Result};
use crate::iterator::{InternalIterator, MergingIterator};
use crate::memtable::MemTable;
use crate::options::{CompactionStyle, Options};
use crate::sst::{TableBuilder, TableConfig};
use crate::stats::DbStats;
use crate::types::{
    file_path, make_internal_key, seq_and_type, user_key, FileKind, SequenceNumber, ValueType,
    MAX_SEQUENCE, VALUE_TYPE_FOR_SEEK,
};
use crate::version::edit::FileMetaData;
use crate::version::table_cache::TableCache;
use crate::version::{CompactionTask, Version};

/// Everything a compaction job needs from the engine.
pub struct JobContext<'a> {
    pub env: &'a EnvRef,
    pub dir: &'a Path,
    pub opts: &'a Options,
    pub table_cache: &'a Arc<TableCache>,
    pub stats: &'a DbStats,
}

/// Result of a major compaction.
#[derive(Debug)]
pub struct CompactionOutput {
    /// New files to install at the output level.
    pub files: Vec<FileMetaData>,
    /// Bytes read from input tables.
    pub bytes_read: u64,
    /// Bytes written to output tables.
    pub bytes_written: u64,
}

/// Writes the contents of `mem` as one or more L0 tables.
///
/// Every entry (all sequence numbers, tombstones included) is preserved —
/// visibility decisions belong to reads and major compactions.
pub fn flush_memtable(
    ctx: &JobContext<'_>,
    mem: &Arc<MemTable>,
    alloc_number: &(dyn Fn() -> u64 + Sync),
) -> Result<Vec<FileMetaData>> {
    let mut iter = mem.iter();
    iter.seek_to_first();
    // Flush output rides the owning shard's queue, like its WAL.
    let files = write_sorted_stream(
        ctx,
        &mut iter,
        alloc_number,
        None,
        ctx.opts.target_file_size as u64,
        None,
        ctx.opts.io_queue,
    )?;
    let written: u64 = files.iter().map(|f| f.size).sum();
    DbStats::bump(&ctx.stats.flushes, 1);
    DbStats::bump(&ctx.stats.compaction_bytes_written, written);
    Ok(files)
}

/// Runs a major compaction task.
///
/// `version` is the version the task was picked from (used for
/// tombstone-drop overlap checks); `smallest_snapshot` is the lowest
/// sequence any live snapshot (or the current read head) can observe.
pub fn run_compaction(
    ctx: &JobContext<'_>,
    task: &CompactionTask,
    version: &Version,
    smallest_snapshot: SequenceNumber,
    alloc_number: &(dyn Fn() -> u64 + Sync),
) -> Result<CompactionOutput> {
    let gc = GcPolicy {
        version,
        style: ctx.opts.compaction_style,
        output_level: task.output_level,
        smallest_snapshot,
    };
    // Fragmented outputs are kept large (PebblesDB guards do not split
    // aggressively); small fragments would re-trigger the count-based
    // merge threshold immediately and cascade data down the tree.
    let split = match ctx.opts.compaction_style {
        CompactionStyle::Leveled => ctx.opts.target_file_size as u64,
        CompactionStyle::Fragmented => 8 * ctx.opts.target_file_size as u64,
    };

    // One merged pass over the task's inputs, bounded to `[lo, hi)` user
    // keys, writing outputs pinned to `queue`.
    let run_range = |lo: Option<&[u8]>,
                     hi: Option<&[u8]>,
                     queue: Option<QueueId>|
     -> Result<Vec<FileMetaData>> {
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        for f in task.inputs.iter().chain(task.next_inputs.iter()) {
            let reader = ctx.table_cache.get(f.number, f.size)?;
            children.push(Box::new(reader.iter()));
        }
        let mut merged = MergingIterator::new(children);
        match lo {
            // Seeks before every real entry of the boundary user key, so
            // a chain is never entered mid-way.
            Some(lo) => merged.seek(&make_internal_key(lo, MAX_SEQUENCE, VALUE_TYPE_FOR_SEEK)),
            None => merged.seek_to_first(),
        }
        write_sorted_stream(ctx, &mut merged, alloc_number, Some(&gc), split, hi, queue)
    };

    // Compaction outputs spread across submission queues, starting one
    // past the shard's home queue so compaction traffic does not pile
    // onto the WAL/flush queue (subcompaction k takes the k-th queue
    // after home).
    let nq = ctx.env.queue_count();
    let out_queue = |k: usize| {
        (nq > 1)
            .then(|| (ctx.opts.io_queue.unwrap_or(0) + 1 + k) % nq)
            .or(ctx.opts.io_queue)
    };
    let bounds = partition_bounds(task, ctx.opts.subcompactions);
    let files = if bounds.is_empty() {
        run_range(None, None, out_queue(0))?
    } else {
        let results: Vec<Result<Vec<FileMetaData>>> = std::thread::scope(|s| {
            let run_range = &run_range;
            let handles: Vec<_> = (0..=bounds.len())
                .map(|k| {
                    let lo = k.checked_sub(1).map(|i| bounds[i].as_slice());
                    let hi = bounds.get(k).map(|b| b.as_slice());
                    let q = out_queue(k);
                    s.spawn(move || run_range(lo, hi, q))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(Error::InvalidState("subcompaction panicked".into()))
                    })
                })
                .collect()
        });
        // Partitions are disjoint and ordered, so concatenating their
        // outputs in partition order yields the level's sorted run. A
        // failed partition fails the whole job (fail-stop; orphaned
        // outputs of the others are garbage-collected).
        let mut files = Vec::new();
        for r in results {
            files.extend(r?);
        }
        files
    };

    let bytes_read = task.input_bytes();
    let bytes_written: u64 = files.iter().map(|f| f.size).sum();
    DbStats::bump(&ctx.stats.compactions, 1);
    DbStats::bump(&ctx.stats.compaction_bytes_read, bytes_read);
    DbStats::bump(&ctx.stats.compaction_bytes_written, bytes_written);
    Ok(CompactionOutput {
        files,
        bytes_read,
        bytes_written,
    })
}

/// Picks up to `subcompactions - 1` user-key boundaries partitioning the
/// task's merged range into contiguous, disjoint subranges. Boundaries are
/// drawn from the input files' smallest user keys — cheap, already sorted
/// within each level, and guaranteed to fall between the data of adjacent
/// files, so each partition receives a comparable share of the input.
/// Returns an empty vector when partitioning is off or pointless.
fn partition_bounds(task: &CompactionTask, subcompactions: usize) -> Vec<Vec<u8>> {
    let want = subcompactions.max(1) - 1;
    if want == 0 {
        return Vec::new();
    }
    let mut keys: Vec<Vec<u8>> = task
        .inputs
        .iter()
        .chain(task.next_inputs.iter())
        .map(|f| user_key(&f.smallest).to_vec())
        .collect();
    keys.sort();
    keys.dedup();
    // The global smallest key is not a boundary: everything below the
    // first boundary belongs to partition 0.
    if keys.len() <= 1 {
        return Vec::new();
    }
    keys.remove(0);
    if keys.len() > want {
        // Thin to `want` evenly spaced boundaries.
        let n = keys.len();
        let mut picked: Vec<Vec<u8>> = (1..=want)
            .map(|k| keys[k * n / (want + 1)].clone())
            .collect();
        picked.dedup();
        keys = picked;
    }
    keys
}

/// Garbage-collection rules applied while rewriting entries.
struct GcPolicy<'a> {
    version: &'a Version,
    style: CompactionStyle,
    output_level: usize,
    smallest_snapshot: SequenceNumber,
}

impl GcPolicy<'_> {
    /// Whether `ukey` could exist in any file the compaction does not
    /// rewrite and that a read would consult *after* the output level.
    fn key_survives_elsewhere(&self, ukey: &[u8]) -> bool {
        // Deeper levels always shadow-check.
        for level in self.output_level + 1..self.version.levels.len() {
            if !self.version.overlapping(level, Some(ukey), Some(ukey)).is_empty() {
                return true;
            }
        }
        // Fragmented compactions leave the target level's existing
        // fragments untouched; they may still hold older versions.
        if self.style == CompactionStyle::Fragmented
            && !self
                .version
                .overlapping(self.output_level, Some(ukey), Some(ukey))
                .is_empty()
        {
            return true;
        }
        false
    }
}

/// Consumes a sorted internal-entry stream into size-capped tables,
/// applying GC rules when `gc` is provided. Entries with user key `>= end`
/// are left unconsumed (subcompaction partition boundary); `out_queue`
/// pins the output files to one device submission queue.
fn write_sorted_stream(
    ctx: &JobContext<'_>,
    iter: &mut dyn InternalIterator,
    alloc_number: &(dyn Fn() -> u64 + Sync),
    gc: Option<&GcPolicy<'_>>,
    split_size: u64,
    end: Option<&[u8]>,
    out_queue: Option<QueueId>,
) -> Result<Vec<FileMetaData>> {
    let mut outputs: Vec<FileMetaData> = Vec::new();
    let mut builder: Option<(u64, TableBuilder)> = None;
    let mut current_ukey: Option<Vec<u8>> = None;
    // Sequence of the most recent (newest) retained entry for the current
    // user key; MAX means "none seen yet".
    let mut last_seq_for_key = u64::MAX;
    let in_range = |it: &dyn InternalIterator| {
        it.valid() && end.map_or(true, |e| user_key(it.key()) < e)
    };

    while in_range(iter) {
        let ikey = iter.key();
        let (seq, kind) = seq_and_type(ikey);
        let ukey = user_key(ikey);
        let first_occurrence = current_ukey.as_deref() != Some(ukey);
        if first_occurrence {
            current_ukey = Some(ukey.to_vec());
            last_seq_for_key = u64::MAX;
        }

        let drop = if let Some(gc) = gc {
            if last_seq_for_key <= gc.smallest_snapshot {
                // A newer entry for this key is visible to every snapshot:
                // this one can never be read again.
                true
            } else {
                kind == ValueType::Deletion
                    && seq <= gc.smallest_snapshot
                    && !gc.key_survives_elsewhere(ukey)
            }
        } else {
            false
        };
        last_seq_for_key = seq;

        if !drop {
            if builder.is_none() {
                let number = alloc_number();
                let path = file_path(ctx.dir, number, FileKind::Table);
                let file = match out_queue {
                    Some(q) => ctx.env.new_writable_on(&path, q)?,
                    None => ctx.env.new_writable(&path)?,
                };
                builder = Some((number, TableBuilder::new(file, TableConfig::from(ctx.opts))));
            }
            let (_, b) = builder.as_mut().expect("builder just ensured");
            b.add(ikey, iter.value())?;
            // Split outputs at the target size, but never inside one user
            // key's version chain (keeps first-occurrence GC sound when the
            // outputs are later compacted again).
            let full = b.estimated_size() >= split_size;
            if full {
                // Peek whether the next entry starts a new user key.
                iter.next();
                let new_key = !iter.valid() || user_key(iter.key()) != current_ukey.as_deref().unwrap_or(b"");
                if new_key {
                    let (number, b) = builder.take().expect("builder present");
                    outputs.push(finish_builder(number, b)?);
                }
                continue;
            }
        }
        iter.next();
    }
    // An input iterator that died with a read error is indistinguishable
    // from a clean end of stream above; installing a truncated output and
    // deleting the inputs would silently lose every remaining entry, so
    // the job must fail instead (the caller fail-stops via bg_error and
    // the orphaned outputs are garbage-collected).
    iter.status()?;
    if let Some((number, b)) = builder.take() {
        if b.entries() > 0 {
            outputs.push(finish_builder(number, b)?);
        } else {
            // Remove the empty placeholder file.
            let _ = ctx.env.remove_file(&file_path(ctx.dir, number, FileKind::Table));
        }
    }
    Ok(outputs)
}

fn finish_builder(number: u64, builder: TableBuilder) -> Result<FileMetaData> {
    let summary = builder.finish()?;
    Ok(FileMetaData {
        number,
        size: summary.file_size,
        smallest: summary.smallest,
        largest: summary.largest,
        entries: summary.entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::make_internal_key;
    use crate::version::edit::VersionEdit;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Fixture {
        opts: Options,
        dir: std::path::PathBuf,
        cache: Arc<TableCache>,
        stats: DbStats,
        next: AtomicU64,
    }

    impl Fixture {
        fn new() -> Fixture {
            Self::new_styled(CompactionStyle::Leveled)
        }

        fn new_styled(style: CompactionStyle) -> Fixture {
            let mut opts = Options::for_test();
            opts.compaction_style = style;
            let dir = std::path::PathBuf::from("cdb");
            opts.env.create_dir_all(&dir).unwrap();
            let cache = Arc::new(TableCache::new(opts.env.clone(), dir.clone(), None));
            Fixture {
                dir,
                cache,
                stats: DbStats::new(),
                next: AtomicU64::new(10),
                opts,
            }
        }

        fn ctx(&self) -> JobContext<'_> {
            JobContext {
                env: &self.opts.env,
                dir: &self.dir,
                opts: &self.opts,
                table_cache: &self.cache,
                stats: &self.stats,
            }
        }

        fn alloc(&self) -> u64 {
            self.next.fetch_add(1, Ordering::Relaxed)
        }
    }

    fn read_table_keys(fx: &Fixture, meta: &FileMetaData) -> Vec<(Vec<u8>, u64, ValueType)> {
        let reader = fx.cache.get(meta.number, meta.size).unwrap();
        let mut it = reader.iter();
        it.seek_to_first();
        let mut out = Vec::new();
        while it.valid() {
            let (seq, kind) = seq_and_type(it.key());
            out.push((user_key(it.key()).to_vec(), seq, kind));
            it.next();
        }
        out
    }

    #[test]
    fn flush_preserves_everything() {
        let fx = Fixture::new();
        let mem = Arc::new(MemTable::new());
        mem.add(1, ValueType::Value, b"a", b"v1");
        mem.add(2, ValueType::Value, b"a", b"v2");
        mem.add(3, ValueType::Deletion, b"b", b"");
        let files = flush_memtable(&fx.ctx(), &mem, &|| fx.alloc()).unwrap();
        assert_eq!(files.len(), 1);
        let keys = read_table_keys(&fx, &files[0]);
        assert_eq!(
            keys,
            vec![
                (b"a".to_vec(), 2, ValueType::Value),
                (b"a".to_vec(), 1, ValueType::Value),
                (b"b".to_vec(), 3, ValueType::Deletion),
            ]
        );
        assert_eq!(fx.stats.flushes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn flush_empty_memtable_produces_nothing() {
        let fx = Fixture::new();
        let mem = Arc::new(MemTable::new());
        let files = flush_memtable(&fx.ctx(), &mem, &|| fx.alloc()).unwrap();
        assert!(files.is_empty());
    }

    /// Builds an L0 file from explicit entries via a memtable flush.
    fn build_l0(fx: &Fixture, entries: &[(&str, u64, ValueType, &str)]) -> FileMetaData {
        let mem = Arc::new(MemTable::new());
        for (k, seq, kind, v) in entries {
            mem.add(*seq, *kind, k.as_bytes(), v.as_bytes());
        }
        flush_memtable(&fx.ctx(), &mem, &|| fx.alloc())
            .unwrap()
            .remove(0)
    }

    #[test]
    fn compaction_drops_shadowed_versions() {
        let fx = Fixture::new();
        let f1 = build_l0(&fx, &[("k", 5, ValueType::Value, "new")]);
        let f2 = build_l0(&fx, &[("k", 3, ValueType::Value, "old")]);
        let version = Version::empty(7, CompactionStyle::Leveled).apply(&{
            let mut e = VersionEdit::default();
            e.added.push((0, f1.clone()));
            e.added.push((0, f2.clone()));
            e
        });
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1), Arc::new(f2)],
            next_inputs: vec![],
        };
        // Everyone can see seq 5: the old version is dead.
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        assert_eq!(out.files.len(), 1);
        let keys = read_table_keys(&fx, &out.files[0]);
        assert_eq!(keys, vec![(b"k".to_vec(), 5, ValueType::Value)]);
        assert!(out.bytes_read > 0 && out.bytes_written > 0);
    }

    #[test]
    fn snapshot_preserves_old_versions() {
        let fx = Fixture::new();
        let f1 = build_l0(&fx, &[("k", 5, ValueType::Value, "new")]);
        let f2 = build_l0(&fx, &[("k", 3, ValueType::Value, "old")]);
        let version = Version::empty(7, CompactionStyle::Leveled);
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1), Arc::new(f2)],
            next_inputs: vec![],
        };
        // A snapshot at seq 3 still needs the old version.
        let out = run_compaction(&fx.ctx(), &task, &version, 3, &|| fx.alloc()).unwrap();
        let keys = read_table_keys(&fx, &out.files[0]);
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn tombstone_dropped_at_base_level() {
        let fx = Fixture::new();
        let f1 = build_l0(&fx, &[("dead", 7, ValueType::Deletion, "")]);
        let version = Version::empty(7, CompactionStyle::Leveled);
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1)],
            next_inputs: vec![],
        };
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        assert!(out.files.is_empty(), "lone tombstone must vanish");
    }

    #[test]
    fn tombstone_kept_when_deeper_level_overlaps() {
        let fx = Fixture::new();
        let f1 = build_l0(&fx, &[("dead", 7, ValueType::Deletion, "")]);
        let deep = build_l0(&fx, &[("dead", 1, ValueType::Value, "zombie")]);
        let version = Version::empty(7, CompactionStyle::Leveled).apply(&{
            let mut e = VersionEdit::default();
            e.added.push((3, deep));
            e
        });
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1)],
            next_inputs: vec![],
        };
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        let keys = read_table_keys(&fx, &out.files[0]);
        assert_eq!(keys, vec![(b"dead".to_vec(), 7, ValueType::Deletion)]);
    }

    #[test]
    fn fragmented_keeps_tombstone_when_target_level_overlaps() {
        let fx = Fixture::new_styled(CompactionStyle::Fragmented);
        let f1 = build_l0(&fx, &[("dead", 7, ValueType::Deletion, "")]);
        let frag = build_l0(&fx, &[("dead", 1, ValueType::Value, "zombie")]);
        let mut version = Version::empty(7, CompactionStyle::Fragmented);
        version = version.apply(&{
            let mut e = VersionEdit::default();
            e.added.push((1, frag));
            e
        });
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1)],
            next_inputs: vec![],
        };
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        let keys = read_table_keys(&fx, &out.files[0]);
        assert_eq!(keys.len(), 1, "tombstone must survive fragmented append");
    }

    #[test]
    fn compaction_fails_on_read_error_instead_of_truncating() {
        // Regression: a transient read error on an input table used to end
        // the merged stream early, so the compaction installed a truncated
        // output and the manifest edit deleted the inputs — durable loss
        // of acked keys. The job must fail instead.
        use p2kvs_storage::{FaultPlan, FaultyEnv};
        let faulty = Arc::new(FaultyEnv::over_mem());
        let mut opts = Options::for_test();
        opts.env = faulty.clone();
        let dir = std::path::PathBuf::from("cdb");
        opts.env.create_dir_all(&dir).unwrap();
        let cache = Arc::new(TableCache::new(opts.env.clone(), dir.clone(), None));
        let stats = DbStats::new();
        let next = AtomicU64::new(10);
        let ctx = JobContext {
            env: &opts.env,
            dir: &dir,
            opts: &opts,
            table_cache: &cache,
            stats: &stats,
        };
        let alloc = || next.fetch_add(1, Ordering::Relaxed);

        let build = |tag: u8| {
            let mem = Arc::new(MemTable::new());
            for i in 0..400u64 {
                mem.add(
                    i + 1,
                    ValueType::Value,
                    format!("{tag:02x}-key{i:06}").as_bytes(),
                    &[tag; 64],
                );
            }
            flush_memtable(&ctx, &mem, &alloc).unwrap().remove(0)
        };
        let f1 = build(1);
        let f2 = build(2);
        let input_entries = f1.entries + f2.entries;
        let version = Version::empty(7, CompactionStyle::Leveled);
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1), Arc::new(f2)],
            next_inputs: vec![],
        };
        // Fail a read somewhere in the middle of the merge.
        faulty.set_plan(FaultPlan {
            fail_read: Some(faulty.reads() + 8),
            ..FaultPlan::default()
        });
        let err = run_compaction(&ctx, &task, &version, 100, &alloc)
            .expect_err("truncated merge must not pass as success");
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Retrying after the transient error succeeds and keeps every entry.
        let out = run_compaction(&ctx, &task, &version, 100, &alloc).unwrap();
        let total: u64 = out.files.iter().map(|f| f.entries).sum();
        assert_eq!(total, input_entries);
    }

    /// Builds a compaction fixture with overlapping inputs across two
    /// levels: version chains spanning files, tombstones, and enough
    /// distinct file ranges that `partition_bounds` finds real boundaries.
    fn build_differential_inputs(fx: &Fixture) -> (CompactionTask, Version) {
        let mut l0 = Vec::new();
        for f in 0..4u64 {
            let mem = Arc::new(MemTable::new());
            for i in 0..120u64 {
                let key = format!("key{:05}", i * 4 + f);
                let seq = 1000 + f * 1000 + i;
                if i % 17 == 0 {
                    mem.add(seq, ValueType::Deletion, key.as_bytes(), b"");
                } else {
                    mem.add(seq, ValueType::Value, key.as_bytes(), format!("v{f}-{i}").as_bytes());
                }
                // Older shadowed version of the same key in the same file.
                if i % 5 == 0 {
                    mem.add(seq - 900, ValueType::Value, key.as_bytes(), b"old");
                }
            }
            l0.push(flush_memtable(&fx.ctx(), &mem, &|| fx.alloc()).unwrap().remove(0));
        }
        // An L1 run the task also rewrites (next_inputs).
        let mem = Arc::new(MemTable::new());
        for i in 0..200u64 {
            mem.add(
                50 + i,
                ValueType::Value,
                format!("key{:05}", i * 2).as_bytes(),
                b"l1-old",
            );
        }
        let next = flush_memtable(&fx.ctx(), &mem, &|| fx.alloc()).unwrap();
        let version = Version::empty(7, CompactionStyle::Leveled).apply(&{
            let mut e = VersionEdit::default();
            for f in &l0 {
                e.added.push((0, f.clone()));
            }
            for f in &next {
                e.added.push((1, f.clone()));
            }
            e
        });
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: l0.into_iter().map(Arc::new).collect(),
            next_inputs: next.into_iter().map(Arc::new).collect(),
        };
        (task, version)
    }

    /// Concatenated (user_key, seq, kind, value) stream of output files.
    fn entry_stream(fx: &Fixture, files: &[FileMetaData]) -> Vec<(Vec<u8>, u64, ValueType, Vec<u8>)> {
        let mut out = Vec::new();
        for meta in files {
            let reader = fx.cache.get(meta.number, meta.size).unwrap();
            let mut it = reader.iter();
            it.seek_to_first();
            while it.valid() {
                let (seq, kind) = seq_and_type(it.key());
                out.push((user_key(it.key()).to_vec(), seq, kind, it.value().to_vec()));
                it.next();
            }
        }
        out
    }

    /// The tentpole's correctness gate: partitioned parallel compaction
    /// must emit an entry stream identical to the single-threaded
    /// compactor — same keys, sequences, tombstone drops, value bytes —
    /// for any subcompaction count.
    #[test]
    fn parallel_compaction_matches_single_threaded() {
        let base = Fixture::new();
        let (task, version) = build_differential_inputs(&base);
        let serial = run_compaction(&base.ctx(), &task, &version, 1500, &|| base.alloc()).unwrap();
        let expect = entry_stream(&base, &serial.files);
        assert!(!expect.is_empty());
        for subs in [2usize, 3, 4, 8] {
            let mut fx = Fixture::new();
            fx.opts.subcompactions = subs;
            // Rebuild identical inputs in the fresh env.
            let (task, version) = build_differential_inputs(&fx);
            let out = run_compaction(&fx.ctx(), &task, &version, 1500, &|| fx.alloc()).unwrap();
            let got = entry_stream(&fx, &out.files);
            assert_eq!(got, expect, "subcompactions={subs} diverged");
            // File sizes differ slightly (partition seams move the split
            // points, changing per-file index overhead) but the payload
            // the level carries is identical — checked entry-by-entry
            // above.
            assert!(out.bytes_written > 0);
            // Outputs stay disjoint and ordered across partition seams.
            for pair in out.files.windows(2) {
                assert!(
                    crate::types::internal_cmp(&pair[0].largest, &pair[1].smallest)
                        == std::cmp::Ordering::Less
                );
            }
        }
    }

    /// GC decisions (snapshot keeps, tombstone drops at the base level)
    /// must be partition-independent too: run the snapshot-sensitive cases
    /// through the parallel path.
    #[test]
    fn parallel_compaction_respects_snapshots_and_tombstones() {
        let mut fx = Fixture::new();
        fx.opts.subcompactions = 4;
        let f1 = build_l0(&fx, &[("a", 5, ValueType::Value, "new"), ("m", 7, ValueType::Deletion, "")]);
        let f2 = build_l0(&fx, &[("a", 3, ValueType::Value, "old"), ("z", 4, ValueType::Value, "zz")]);
        // Third file starting at "z" gives the partitioner a boundary right
        // on a user key whose version chain spans two files: the chain must
        // land whole in the second partition.
        let f3 = build_l0(&fx, &[("z", 2, ValueType::Value, "zold")]);
        let version = Version::empty(7, CompactionStyle::Leveled);
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1), Arc::new(f2), Arc::new(f3)],
            next_inputs: vec![],
        };
        assert!(!partition_bounds(&task, fx.opts.subcompactions).is_empty());
        // Snapshot at 3: both versions of "a" and "z" survive; the
        // tombstone at seq 7 > 3 is kept.
        let out = run_compaction(&fx.ctx(), &task, &version, 3, &|| fx.alloc()).unwrap();
        let entries: Vec<_> = entry_stream(&fx, &out.files)
            .into_iter()
            .map(|(k, s, t, _)| (k, s, t))
            .collect();
        assert_eq!(
            entries,
            vec![
                (b"a".to_vec(), 5, ValueType::Value),
                (b"a".to_vec(), 3, ValueType::Value),
                (b"m".to_vec(), 7, ValueType::Deletion),
                (b"z".to_vec(), 4, ValueType::Value),
                (b"z".to_vec(), 2, ValueType::Value),
            ]
        );
        // Everyone at 100: shadowed versions and the lone tombstone drop.
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        let entries: Vec<_> = entry_stream(&fx, &out.files)
            .into_iter()
            .map(|(k, s, t, _)| (k, s, t))
            .collect();
        assert_eq!(
            entries,
            vec![
                (b"a".to_vec(), 5, ValueType::Value),
                (b"z".to_vec(), 4, ValueType::Value),
            ]
        );
    }

    #[test]
    fn partition_bounds_are_ordered_and_bounded() {
        let fx = Fixture::new();
        let (task, _) = build_differential_inputs(&fx);
        assert!(partition_bounds(&task, 1).is_empty());
        for subs in [2usize, 3, 4, 16] {
            let bounds = partition_bounds(&task, subs);
            assert!(bounds.len() <= subs - 1, "subs={subs} got {}", bounds.len());
            for pair in bounds.windows(2) {
                assert!(pair[0] < pair[1], "bounds must be strictly increasing");
            }
        }
        // A single-file task has no interior boundaries to offer.
        let lone = CompactionTask {
            level: 1,
            output_level: 2,
            inputs: vec![task.inputs[0].clone()],
            next_inputs: vec![],
        };
        assert!(partition_bounds(&lone, 8).is_empty());
    }

    /// Subcompaction outputs spread across device submission queues,
    /// starting one past the instance's home queue.
    #[test]
    fn subcompaction_outputs_spread_across_queues() {
        use p2kvs_storage::{DeviceProfile, Env as _, SimEnv};
        let env = Arc::new(SimEnv::with_profile(DeviceProfile::instant().with_queues(4)));
        let mut opts = Options::for_test();
        opts.env = env.clone();
        opts.subcompactions = 3;
        opts.io_queue = Some(1);
        let dir = std::path::PathBuf::from("cdb");
        opts.env.create_dir_all(&dir).unwrap();
        let cache = Arc::new(TableCache::new(opts.env.clone(), dir.clone(), None));
        let fx = Fixture {
            dir,
            cache,
            stats: DbStats::new(),
            next: AtomicU64::new(10),
            opts,
        };
        let (task, version) = build_differential_inputs(&fx);
        let before = env.io_stats();
        run_compaction(&fx.ctx(), &task, &version, 1500, &|| fx.alloc()).unwrap();
        let delta = env.io_stats().delta(&before);
        // Home queue 1 receives no subcompaction output; queues 2, 3, 0
        // (= 1+1, 1+2, 1+3 mod 4) each take one partition's writes.
        let spread: Vec<u64> = (0..4).map(|q| delta.queues[q].bytes_written).collect();
        assert!(
            spread[2] > 0 && spread[3] > 0 && spread[0] > 0,
            "outputs not spread: {spread:?}"
        );
        assert_eq!(spread[1], 0, "home queue must not take subcompaction writes: {spread:?}");
    }

    #[test]
    fn outputs_split_at_target_size() {
        let fx = Fixture::new();
        // ~32 KiB target file size in test options; write ~200 KiB.
        let mem = Arc::new(MemTable::new());
        for i in 0..2000u64 {
            mem.add(i + 1, ValueType::Value, format!("key{i:08}").as_bytes(), &[7u8; 90]);
        }
        let files = flush_memtable(&fx.ctx(), &mem, &|| fx.alloc()).unwrap();
        assert!(files.len() > 2, "expected several outputs, got {}", files.len());
        // Ranges must be disjoint and ordered.
        for pair in files.windows(2) {
            assert!(
                crate::types::internal_cmp(&pair[0].largest, &pair[1].smallest)
                    == std::cmp::Ordering::Less
            );
        }
        let total: u64 = files.iter().map(|f| f.entries).sum();
        assert_eq!(total, 2000);
    }
}
