//! Flush (minor compaction) and major compaction jobs.
//!
//! These are pure jobs: given inputs and a version for overlap checks they
//! produce new table files and return the metadata, leaving manifest
//! logging and state swapping to the caller (the DB's background thread).
//! Keeping them pure makes the GC rules independently testable.

use std::path::Path;
use std::sync::Arc;

use p2kvs_storage::EnvRef;

use crate::error::Result;
use crate::iterator::{InternalIterator, MergingIterator};
use crate::memtable::MemTable;
use crate::options::{CompactionStyle, Options};
use crate::sst::{TableBuilder, TableConfig};
use crate::stats::DbStats;
use crate::types::{file_path, seq_and_type, user_key, FileKind, SequenceNumber, ValueType};
use crate::version::edit::FileMetaData;
use crate::version::table_cache::TableCache;
use crate::version::{CompactionTask, Version};

/// Everything a compaction job needs from the engine.
pub struct JobContext<'a> {
    pub env: &'a EnvRef,
    pub dir: &'a Path,
    pub opts: &'a Options,
    pub table_cache: &'a Arc<TableCache>,
    pub stats: &'a DbStats,
}

/// Result of a major compaction.
#[derive(Debug)]
pub struct CompactionOutput {
    /// New files to install at the output level.
    pub files: Vec<FileMetaData>,
    /// Bytes read from input tables.
    pub bytes_read: u64,
    /// Bytes written to output tables.
    pub bytes_written: u64,
}

/// Writes the contents of `mem` as one or more L0 tables.
///
/// Every entry (all sequence numbers, tombstones included) is preserved —
/// visibility decisions belong to reads and major compactions.
pub fn flush_memtable(
    ctx: &JobContext<'_>,
    mem: &Arc<MemTable>,
    alloc_number: &dyn Fn() -> u64,
) -> Result<Vec<FileMetaData>> {
    let mut iter = mem.iter();
    iter.seek_to_first();
    let files = write_sorted_stream(
        ctx,
        &mut iter,
        alloc_number,
        None,
        ctx.opts.target_file_size as u64,
    )?;
    let written: u64 = files.iter().map(|f| f.size).sum();
    DbStats::bump(&ctx.stats.flushes, 1);
    DbStats::bump(&ctx.stats.compaction_bytes_written, written);
    Ok(files)
}

/// Runs a major compaction task.
///
/// `version` is the version the task was picked from (used for
/// tombstone-drop overlap checks); `smallest_snapshot` is the lowest
/// sequence any live snapshot (or the current read head) can observe.
pub fn run_compaction(
    ctx: &JobContext<'_>,
    task: &CompactionTask,
    version: &Version,
    smallest_snapshot: SequenceNumber,
    alloc_number: &dyn Fn() -> u64,
) -> Result<CompactionOutput> {
    // Build the merged input stream.
    let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
    for f in task.inputs.iter().chain(task.next_inputs.iter()) {
        let reader = ctx.table_cache.get(f.number, f.size)?;
        children.push(Box::new(reader.iter()));
    }
    let mut merged = MergingIterator::new(children);
    merged.seek_to_first();

    let gc = GcPolicy {
        version,
        style: ctx.opts.compaction_style,
        output_level: task.output_level,
        smallest_snapshot,
    };
    // Fragmented outputs are kept large (PebblesDB guards do not split
    // aggressively); small fragments would re-trigger the count-based
    // merge threshold immediately and cascade data down the tree.
    let split = match ctx.opts.compaction_style {
        CompactionStyle::Leveled => ctx.opts.target_file_size as u64,
        CompactionStyle::Fragmented => 8 * ctx.opts.target_file_size as u64,
    };
    let files = write_sorted_stream(ctx, &mut merged, alloc_number, Some(&gc), split)?;

    let bytes_read = task.input_bytes();
    let bytes_written: u64 = files.iter().map(|f| f.size).sum();
    DbStats::bump(&ctx.stats.compactions, 1);
    DbStats::bump(&ctx.stats.compaction_bytes_read, bytes_read);
    DbStats::bump(&ctx.stats.compaction_bytes_written, bytes_written);
    Ok(CompactionOutput {
        files,
        bytes_read,
        bytes_written,
    })
}

/// Garbage-collection rules applied while rewriting entries.
struct GcPolicy<'a> {
    version: &'a Version,
    style: CompactionStyle,
    output_level: usize,
    smallest_snapshot: SequenceNumber,
}

impl GcPolicy<'_> {
    /// Whether `ukey` could exist in any file the compaction does not
    /// rewrite and that a read would consult *after* the output level.
    fn key_survives_elsewhere(&self, ukey: &[u8]) -> bool {
        // Deeper levels always shadow-check.
        for level in self.output_level + 1..self.version.levels.len() {
            if !self.version.overlapping(level, Some(ukey), Some(ukey)).is_empty() {
                return true;
            }
        }
        // Fragmented compactions leave the target level's existing
        // fragments untouched; they may still hold older versions.
        if self.style == CompactionStyle::Fragmented
            && !self
                .version
                .overlapping(self.output_level, Some(ukey), Some(ukey))
                .is_empty()
        {
            return true;
        }
        false
    }
}

/// Consumes a sorted internal-entry stream into size-capped tables,
/// applying GC rules when `gc` is provided.
fn write_sorted_stream(
    ctx: &JobContext<'_>,
    iter: &mut dyn InternalIterator,
    alloc_number: &dyn Fn() -> u64,
    gc: Option<&GcPolicy<'_>>,
    split_size: u64,
) -> Result<Vec<FileMetaData>> {
    let mut outputs: Vec<FileMetaData> = Vec::new();
    let mut builder: Option<(u64, TableBuilder)> = None;
    let mut current_ukey: Option<Vec<u8>> = None;
    // Sequence of the most recent (newest) retained entry for the current
    // user key; MAX means "none seen yet".
    let mut last_seq_for_key = u64::MAX;

    while iter.valid() {
        let ikey = iter.key();
        let (seq, kind) = seq_and_type(ikey);
        let ukey = user_key(ikey);
        let first_occurrence = current_ukey.as_deref() != Some(ukey);
        if first_occurrence {
            current_ukey = Some(ukey.to_vec());
            last_seq_for_key = u64::MAX;
        }

        let drop = if let Some(gc) = gc {
            if last_seq_for_key <= gc.smallest_snapshot {
                // A newer entry for this key is visible to every snapshot:
                // this one can never be read again.
                true
            } else {
                kind == ValueType::Deletion
                    && seq <= gc.smallest_snapshot
                    && !gc.key_survives_elsewhere(ukey)
            }
        } else {
            false
        };
        last_seq_for_key = seq;

        if !drop {
            if builder.is_none() {
                let number = alloc_number();
                let path = file_path(ctx.dir, number, FileKind::Table);
                let file = ctx.env.new_writable(&path)?;
                builder = Some((number, TableBuilder::new(file, TableConfig::from(ctx.opts))));
            }
            let (_, b) = builder.as_mut().expect("builder just ensured");
            b.add(ikey, iter.value())?;
            // Split outputs at the target size, but never inside one user
            // key's version chain (keeps first-occurrence GC sound when the
            // outputs are later compacted again).
            let full = b.estimated_size() >= split_size;
            if full {
                // Peek whether the next entry starts a new user key.
                iter.next();
                let new_key = !iter.valid() || user_key(iter.key()) != current_ukey.as_deref().unwrap_or(b"");
                if new_key {
                    let (number, b) = builder.take().expect("builder present");
                    outputs.push(finish_builder(number, b)?);
                }
                continue;
            }
        }
        iter.next();
    }
    // An input iterator that died with a read error is indistinguishable
    // from a clean end of stream above; installing a truncated output and
    // deleting the inputs would silently lose every remaining entry, so
    // the job must fail instead (the caller fail-stops via bg_error and
    // the orphaned outputs are garbage-collected).
    iter.status()?;
    if let Some((number, b)) = builder.take() {
        if b.entries() > 0 {
            outputs.push(finish_builder(number, b)?);
        } else {
            // Remove the empty placeholder file.
            let _ = ctx.env.remove_file(&file_path(ctx.dir, number, FileKind::Table));
        }
    }
    Ok(outputs)
}

fn finish_builder(number: u64, builder: TableBuilder) -> Result<FileMetaData> {
    let summary = builder.finish()?;
    Ok(FileMetaData {
        number,
        size: summary.file_size,
        smallest: summary.smallest,
        largest: summary.largest,
        entries: summary.entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::make_internal_key;
    use crate::version::edit::VersionEdit;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Fixture {
        opts: Options,
        dir: std::path::PathBuf,
        cache: Arc<TableCache>,
        stats: DbStats,
        next: AtomicU64,
    }

    impl Fixture {
        fn new() -> Fixture {
            Self::new_styled(CompactionStyle::Leveled)
        }

        fn new_styled(style: CompactionStyle) -> Fixture {
            let mut opts = Options::for_test();
            opts.compaction_style = style;
            let dir = std::path::PathBuf::from("cdb");
            opts.env.create_dir_all(&dir).unwrap();
            let cache = Arc::new(TableCache::new(opts.env.clone(), dir.clone(), None));
            Fixture {
                dir,
                cache,
                stats: DbStats::new(),
                next: AtomicU64::new(10),
                opts,
            }
        }

        fn ctx(&self) -> JobContext<'_> {
            JobContext {
                env: &self.opts.env,
                dir: &self.dir,
                opts: &self.opts,
                table_cache: &self.cache,
                stats: &self.stats,
            }
        }

        fn alloc(&self) -> u64 {
            self.next.fetch_add(1, Ordering::Relaxed)
        }
    }

    fn read_table_keys(fx: &Fixture, meta: &FileMetaData) -> Vec<(Vec<u8>, u64, ValueType)> {
        let reader = fx.cache.get(meta.number, meta.size).unwrap();
        let mut it = reader.iter();
        it.seek_to_first();
        let mut out = Vec::new();
        while it.valid() {
            let (seq, kind) = seq_and_type(it.key());
            out.push((user_key(it.key()).to_vec(), seq, kind));
            it.next();
        }
        out
    }

    #[test]
    fn flush_preserves_everything() {
        let fx = Fixture::new();
        let mem = Arc::new(MemTable::new());
        mem.add(1, ValueType::Value, b"a", b"v1");
        mem.add(2, ValueType::Value, b"a", b"v2");
        mem.add(3, ValueType::Deletion, b"b", b"");
        let files = flush_memtable(&fx.ctx(), &mem, &|| fx.alloc()).unwrap();
        assert_eq!(files.len(), 1);
        let keys = read_table_keys(&fx, &files[0]);
        assert_eq!(
            keys,
            vec![
                (b"a".to_vec(), 2, ValueType::Value),
                (b"a".to_vec(), 1, ValueType::Value),
                (b"b".to_vec(), 3, ValueType::Deletion),
            ]
        );
        assert_eq!(fx.stats.flushes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn flush_empty_memtable_produces_nothing() {
        let fx = Fixture::new();
        let mem = Arc::new(MemTable::new());
        let files = flush_memtable(&fx.ctx(), &mem, &|| fx.alloc()).unwrap();
        assert!(files.is_empty());
    }

    /// Builds an L0 file from explicit entries via a memtable flush.
    fn build_l0(fx: &Fixture, entries: &[(&str, u64, ValueType, &str)]) -> FileMetaData {
        let mem = Arc::new(MemTable::new());
        for (k, seq, kind, v) in entries {
            mem.add(*seq, *kind, k.as_bytes(), v.as_bytes());
        }
        flush_memtable(&fx.ctx(), &mem, &|| fx.alloc())
            .unwrap()
            .remove(0)
    }

    #[test]
    fn compaction_drops_shadowed_versions() {
        let fx = Fixture::new();
        let f1 = build_l0(&fx, &[("k", 5, ValueType::Value, "new")]);
        let f2 = build_l0(&fx, &[("k", 3, ValueType::Value, "old")]);
        let version = Version::empty(7, CompactionStyle::Leveled).apply(&{
            let mut e = VersionEdit::default();
            e.added.push((0, f1.clone()));
            e.added.push((0, f2.clone()));
            e
        });
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1), Arc::new(f2)],
            next_inputs: vec![],
        };
        // Everyone can see seq 5: the old version is dead.
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        assert_eq!(out.files.len(), 1);
        let keys = read_table_keys(&fx, &out.files[0]);
        assert_eq!(keys, vec![(b"k".to_vec(), 5, ValueType::Value)]);
        assert!(out.bytes_read > 0 && out.bytes_written > 0);
    }

    #[test]
    fn snapshot_preserves_old_versions() {
        let fx = Fixture::new();
        let f1 = build_l0(&fx, &[("k", 5, ValueType::Value, "new")]);
        let f2 = build_l0(&fx, &[("k", 3, ValueType::Value, "old")]);
        let version = Version::empty(7, CompactionStyle::Leveled);
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1), Arc::new(f2)],
            next_inputs: vec![],
        };
        // A snapshot at seq 3 still needs the old version.
        let out = run_compaction(&fx.ctx(), &task, &version, 3, &|| fx.alloc()).unwrap();
        let keys = read_table_keys(&fx, &out.files[0]);
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn tombstone_dropped_at_base_level() {
        let fx = Fixture::new();
        let f1 = build_l0(&fx, &[("dead", 7, ValueType::Deletion, "")]);
        let version = Version::empty(7, CompactionStyle::Leveled);
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1)],
            next_inputs: vec![],
        };
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        assert!(out.files.is_empty(), "lone tombstone must vanish");
    }

    #[test]
    fn tombstone_kept_when_deeper_level_overlaps() {
        let fx = Fixture::new();
        let f1 = build_l0(&fx, &[("dead", 7, ValueType::Deletion, "")]);
        let deep = build_l0(&fx, &[("dead", 1, ValueType::Value, "zombie")]);
        let version = Version::empty(7, CompactionStyle::Leveled).apply(&{
            let mut e = VersionEdit::default();
            e.added.push((3, deep));
            e
        });
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1)],
            next_inputs: vec![],
        };
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        let keys = read_table_keys(&fx, &out.files[0]);
        assert_eq!(keys, vec![(b"dead".to_vec(), 7, ValueType::Deletion)]);
    }

    #[test]
    fn fragmented_keeps_tombstone_when_target_level_overlaps() {
        let fx = Fixture::new_styled(CompactionStyle::Fragmented);
        let f1 = build_l0(&fx, &[("dead", 7, ValueType::Deletion, "")]);
        let frag = build_l0(&fx, &[("dead", 1, ValueType::Value, "zombie")]);
        let mut version = Version::empty(7, CompactionStyle::Fragmented);
        version = version.apply(&{
            let mut e = VersionEdit::default();
            e.added.push((1, frag));
            e
        });
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1)],
            next_inputs: vec![],
        };
        let out = run_compaction(&fx.ctx(), &task, &version, 100, &|| fx.alloc()).unwrap();
        let keys = read_table_keys(&fx, &out.files[0]);
        assert_eq!(keys.len(), 1, "tombstone must survive fragmented append");
    }

    #[test]
    fn compaction_fails_on_read_error_instead_of_truncating() {
        // Regression: a transient read error on an input table used to end
        // the merged stream early, so the compaction installed a truncated
        // output and the manifest edit deleted the inputs — durable loss
        // of acked keys. The job must fail instead.
        use p2kvs_storage::{FaultPlan, FaultyEnv};
        let faulty = Arc::new(FaultyEnv::over_mem());
        let mut opts = Options::for_test();
        opts.env = faulty.clone();
        let dir = std::path::PathBuf::from("cdb");
        opts.env.create_dir_all(&dir).unwrap();
        let cache = Arc::new(TableCache::new(opts.env.clone(), dir.clone(), None));
        let stats = DbStats::new();
        let next = AtomicU64::new(10);
        let ctx = JobContext {
            env: &opts.env,
            dir: &dir,
            opts: &opts,
            table_cache: &cache,
            stats: &stats,
        };
        let alloc = || next.fetch_add(1, Ordering::Relaxed);

        let build = |tag: u8| {
            let mem = Arc::new(MemTable::new());
            for i in 0..400u64 {
                mem.add(
                    i + 1,
                    ValueType::Value,
                    format!("{tag:02x}-key{i:06}").as_bytes(),
                    &[tag; 64],
                );
            }
            flush_memtable(&ctx, &mem, &alloc).unwrap().remove(0)
        };
        let f1 = build(1);
        let f2 = build(2);
        let input_entries = f1.entries + f2.entries;
        let version = Version::empty(7, CompactionStyle::Leveled);
        let task = CompactionTask {
            level: 0,
            output_level: 1,
            inputs: vec![Arc::new(f1), Arc::new(f2)],
            next_inputs: vec![],
        };
        // Fail a read somewhere in the middle of the merge.
        faulty.set_plan(FaultPlan {
            fail_read: Some(faulty.reads() + 8),
            ..FaultPlan::default()
        });
        let err = run_compaction(&ctx, &task, &version, 100, &alloc)
            .expect_err("truncated merge must not pass as success");
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Retrying after the transient error succeeds and keeps every entry.
        let out = run_compaction(&ctx, &task, &version, 100, &alloc).unwrap();
        let total: u64 = out.files.iter().map(|f| f.entries).sum();
        assert_eq!(total, input_entries);
    }

    #[test]
    fn outputs_split_at_target_size() {
        let fx = Fixture::new();
        // ~32 KiB target file size in test options; write ~200 KiB.
        let mem = Arc::new(MemTable::new());
        for i in 0..2000u64 {
            mem.add(i + 1, ValueType::Value, format!("key{i:08}").as_bytes(), &[7u8; 90]);
        }
        let files = flush_memtable(&fx.ctx(), &mem, &|| fx.alloc()).unwrap();
        assert!(files.len() > 2, "expected several outputs, got {}", files.len());
        // Ranges must be disjoint and ordered.
        for pair in files.windows(2) {
            assert!(
                crate::types::internal_cmp(&pair[0].largest, &pair[1].smallest)
                    == std::cmp::Ordering::Less
            );
        }
        let total: u64 = files.iter().map(|f| f.entries).sum();
        assert_eq!(total, 2000);
    }
}
