//! Core key/sequence types and file naming.
//!
//! Internal keys follow the LevelDB/RocksDB convention: the user key
//! followed by an 8-byte trailer packing `(sequence << 8) | value_type`.
//! Internal ordering is user key ascending, then sequence *descending*, so
//! that the newest version of a key sorts first.

use std::cmp::Ordering;
use std::path::{Path, PathBuf};

use p2kvs_util::coding::{get_fixed64, put_fixed64};

/// Monotonically increasing write sequence number (56 bits usable).
pub type SequenceNumber = u64;

/// Largest representable sequence number.
pub const MAX_SEQUENCE: SequenceNumber = (1 << 56) - 1;

/// The kind of a record stored under an internal key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ValueType {
    /// A deletion tombstone.
    Deletion = 0,
    /// A value insertion.
    Value = 1,
}

impl ValueType {
    /// Decodes a tag byte.
    pub fn from_u8(v: u8) -> Option<ValueType> {
        match v {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

/// Value type used when seeking: sorts before all records of the same
/// (user_key, sequence).
pub const VALUE_TYPE_FOR_SEEK: ValueType = ValueType::Value;

/// Packs a sequence number and type into the 8-byte trailer.
#[inline]
pub fn pack_seq_type(seq: SequenceNumber, t: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE);
    (seq << 8) | t as u64
}

/// Appends the encoded internal key `(user_key, seq, t)` to `dst`.
pub fn append_internal_key(dst: &mut Vec<u8>, user_key: &[u8], seq: SequenceNumber, t: ValueType) {
    dst.extend_from_slice(user_key);
    put_fixed64(dst, pack_seq_type(seq, t));
}

/// Builds the encoded internal key `(user_key, seq, t)`.
pub fn make_internal_key(user_key: &[u8], seq: SequenceNumber, t: ValueType) -> Vec<u8> {
    let mut v = Vec::with_capacity(user_key.len() + 8);
    append_internal_key(&mut v, user_key, seq, t);
    v
}

/// The user-key portion of an encoded internal key.
///
/// # Panics
///
/// Panics if `ikey` is shorter than the 8-byte trailer.
#[inline]
pub fn user_key(ikey: &[u8]) -> &[u8] {
    assert!(ikey.len() >= 8, "internal key too short");
    &ikey[..ikey.len() - 8]
}

/// The `(sequence, type)` trailer of an encoded internal key.
///
/// # Panics
///
/// Panics if `ikey` is shorter than the 8-byte trailer.
#[inline]
pub fn seq_and_type(ikey: &[u8]) -> (SequenceNumber, ValueType) {
    let tag = get_fixed64(&ikey[ikey.len() - 8..]);
    let t = ValueType::from_u8((tag & 0xff) as u8).unwrap_or(ValueType::Value);
    (tag >> 8, t)
}

/// Compares two encoded internal keys: user key ascending, sequence
/// descending (newer first), type descending.
#[inline]
pub fn internal_cmp(a: &[u8], b: &[u8]) -> Ordering {
    match user_key(a).cmp(user_key(b)) {
        Ordering::Equal => {
            let ta = get_fixed64(&a[a.len() - 8..]);
            let tb = get_fixed64(&b[b.len() - 8..]);
            // Descending on the packed (seq, type) word.
            tb.cmp(&ta)
        }
        other => other,
    }
}

/// Numbered file kinds inside a database directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Write-ahead log (`NNNNNN.log`).
    Wal,
    /// Sorted string table (`NNNNNN.sst`).
    Table,
    /// Version-edit log (`MANIFEST-NNNNNN`).
    Manifest,
    /// Temporary file (`NNNNNN.tmp`).
    Temp,
}

/// Builds the path of file `num` of `kind` inside `dir`.
pub fn file_path(dir: &Path, num: u64, kind: FileKind) -> PathBuf {
    let name = match kind {
        FileKind::Wal => format!("{num:06}.log"),
        FileKind::Table => format!("{num:06}.sst"),
        FileKind::Manifest => format!("MANIFEST-{num:06}"),
        FileKind::Temp => format!("{num:06}.tmp"),
    };
    dir.join(name)
}

/// Parses a database file name into its number and kind.
pub fn parse_file_name(name: &str) -> Option<(u64, FileKind)> {
    if let Some(rest) = name.strip_prefix("MANIFEST-") {
        return rest.parse().ok().map(|n| (n, FileKind::Manifest));
    }
    let (stem, ext) = name.split_once('.')?;
    let num: u64 = stem.parse().ok()?;
    match ext {
        "log" => Some((num, FileKind::Wal)),
        "sst" => Some((num, FileKind::Table)),
        "tmp" => Some((num, FileKind::Temp)),
        _ => None,
    }
}

/// Name of the pointer file holding the current manifest name.
pub const CURRENT_FILE: &str = "CURRENT";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_key_roundtrip() {
        let ik = make_internal_key(b"apple", 42, ValueType::Value);
        assert_eq!(user_key(&ik), b"apple");
        assert_eq!(seq_and_type(&ik), (42, ValueType::Value));
        let del = make_internal_key(b"", 7, ValueType::Deletion);
        assert_eq!(user_key(&del), b"");
        assert_eq!(seq_and_type(&del), (7, ValueType::Deletion));
    }

    #[test]
    fn ordering_user_key_then_seq_desc() {
        let a1 = make_internal_key(b"a", 10, ValueType::Value);
        let a2 = make_internal_key(b"a", 5, ValueType::Value);
        let b1 = make_internal_key(b"b", 1, ValueType::Value);
        assert_eq!(internal_cmp(&a1, &a2), Ordering::Less); // newer first
        assert_eq!(internal_cmp(&a2, &a1), Ordering::Greater);
        assert_eq!(internal_cmp(&a1, &b1), Ordering::Less);
        assert_eq!(internal_cmp(&a1, &a1), Ordering::Equal);
    }

    #[test]
    fn deletion_sorts_after_value_at_same_seq() {
        // Packed tag: value(1) > deletion(0), descending order puts the
        // Value first, matching LevelDB's seek semantics.
        let v = make_internal_key(b"k", 9, ValueType::Value);
        let d = make_internal_key(b"k", 9, ValueType::Deletion);
        assert_eq!(internal_cmp(&v, &d), Ordering::Less);
    }

    #[test]
    fn file_names_roundtrip() {
        let dir = Path::new("/db");
        assert_eq!(file_path(dir, 7, FileKind::Wal), Path::new("/db/000007.log"));
        assert_eq!(file_path(dir, 12, FileKind::Table), Path::new("/db/000012.sst"));
        assert_eq!(
            file_path(dir, 3, FileKind::Manifest),
            Path::new("/db/MANIFEST-000003")
        );
        assert_eq!(parse_file_name("000007.log"), Some((7, FileKind::Wal)));
        assert_eq!(parse_file_name("000012.sst"), Some((12, FileKind::Table)));
        assert_eq!(parse_file_name("MANIFEST-000003"), Some((3, FileKind::Manifest)));
        assert_eq!(parse_file_name("000099.tmp"), Some((99, FileKind::Temp)));
        assert_eq!(parse_file_name("CURRENT"), None);
        assert_eq!(parse_file_name("junk.xyz"), None);
        assert_eq!(parse_file_name("NaN.log"), None);
    }

    #[test]
    fn pack_unpack_boundaries() {
        let ik = make_internal_key(b"x", MAX_SEQUENCE, ValueType::Deletion);
        assert_eq!(seq_and_type(&ik), (MAX_SEQUENCE, ValueType::Deletion));
    }
}
