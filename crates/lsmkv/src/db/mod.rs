//! The database: write pipeline, reads, background jobs, recovery.
//!
//! The write path reproduces RocksDB's architecture (paper §2.2):
//! concurrent writers queue into a group; the leader writes the WAL once
//! for the whole group; the group inserts into the MemTable either via the
//! leader (vanilla) or in parallel (concurrent MemTable); with pipelined
//! writes the next group's WAL overlaps the previous group's MemTable
//! phase. Background threads flush immutable memtables to L0 and run
//! compactions picked by the version set. All timings feeding the paper's
//! Fig 6 breakdown are collected here.

pub mod iter;
pub mod read_pool;
pub mod write_queue;

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::batch::{BatchOp, WriteBatch};
use crate::compaction::{flush_memtable, run_compaction, JobContext};
use crate::error::{Error, Result};
use crate::memtable::{MemGet, MemTable};
use crate::options::{Options, ReadOptions, SyncPolicy, WriteOptions};
use crate::sst::BlockCache;
use crate::stats::DbStats;
use crate::types::{file_path, FileKind, SequenceNumber, ValueType};
use crate::version::edit::VersionEdit;
use crate::version::table_cache::TableCache;
use crate::version::{GetOutcome, Version, VersionSet};
use crate::wal::{LogReader, LogWriter};
pub use iter::DbIterator;
use read_pool::ReadPool;
use write_queue::{form_group, GroupSync, Phase, SignaledPhase, WriterSlot};

/// Predicate deciding whether a WAL batch with the given GSN tag should be
/// replayed during recovery (the p2KVS transaction rollback hook, §4.5).
pub type RecoveryFilter = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// A background-job lifecycle notification, delivered from the background
/// thread that runs the job to the hook installed via
/// [`Db::install_event_hook`]. `Start` events fire before the job touches
/// the device; `Finish` events fire after the version edit is applied and
/// the state lock is released, so a hook may call back into the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbEvent {
    /// A memtable flush is starting; `bytes` is the memtable footprint.
    FlushStart { bytes: u64 },
    /// A flush finished; `bytes` is the L0 output written (0 on failure).
    FlushFinish { bytes: u64, ok: bool },
    /// A compaction is starting at `level`, reading `input_bytes`.
    CompactionStart { level: u32, input_bytes: u64 },
    /// A compaction at `level` finished, producing `output_bytes`.
    CompactionFinish { level: u32, output_bytes: u64, ok: bool },
}

/// Observer for [`DbEvent`]s (the p2KVS flight recorder subscribes here).
pub type DbEventHook = Arc<dyn Fn(&DbEvent) + Send + Sync>;

/// The WAL writer and its file number; touched only by the current group
/// leader and by memtable switches (which the leader itself performs).
struct LogState {
    writer: Option<LogWriter>,
    number: u64,
}

/// Mutable engine state guarded by the state mutex.
struct DbState {
    mem: Arc<MemTable>,
    /// Immutable memtables with their WAL numbers, oldest first.
    imms: Vec<(u64, Arc<MemTable>)>,
    versions: VersionSet,
    bg_error: Option<String>,
    flush_active: bool,
    /// Levels claimed by in-flight compactions (one slot per level). A
    /// task at level L claims L and L+1, so concurrent background threads
    /// compact disjoint level pairs but never the same level twice.
    compact_busy: Vec<bool>,
}

impl DbState {
    fn any_compaction_active(&self) -> bool {
        self.compact_busy.iter().any(|&b| b)
    }
}

struct DbInner {
    opts: Options,
    dir: PathBuf,
    table_cache: Arc<TableCache>,
    block_cache: Option<Arc<BlockCache>>,
    stats: Arc<DbStats>,
    state: Mutex<DbState>,
    /// Signals background work and stall releases (paired with `state`).
    bg_cv: Condvar,
    log: Mutex<LogState>,
    wal_queue: Mutex<VecDeque<Arc<WriterSlot>>>,
    /// Sequence allocation (reserved, possibly unpublished).
    next_seq: AtomicU64,
    /// Highest sequence visible to reads.
    visible_seq: AtomicU64,
    publish_mutex: Mutex<()>,
    publish_cv: Condvar,
    /// Active snapshot sequences with reference counts.
    snapshots: Mutex<BTreeMap<u64, usize>>,
    shutdown: AtomicBool,
    read_pool: Option<ReadPool>,
    file_counter: Arc<AtomicU64>,
    /// Output files of in-flight background jobs: not yet in any version,
    /// but must not be garbage-collected (LevelDB's `pending_outputs_`).
    pending_outputs: Arc<Mutex<std::collections::HashSet<u64>>>,
    /// Largest GSN tag observed while replaying WALs at open.
    recovered_max_gsn: AtomicU64,
    /// Set by [`Db::crash`] so `Drop` skips the final WAL sync.
    skip_sync_on_drop: AtomicBool,
    /// Serializes garbage-collection passes.
    gc_mutex: Mutex<()>,
    /// Background-job event observer (flight recorder), if installed.
    event_hook: Mutex<Option<DbEventHook>>,
}

/// An LSM-tree database instance.
pub struct Db {
    inner: Arc<DbInner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Db {
    /// Opens (creating if allowed) the database in `dir` within
    /// `opts.env`.
    pub fn open(opts: Options, dir: impl AsRef<Path>) -> Result<Db> {
        Self::open_with_recovery_filter(opts, dir, None)
    }

    /// Opens the database, replaying only WAL batches whose GSN tag the
    /// filter accepts (used by the p2KVS transaction layer to roll back
    /// uncommitted cross-instance transactions).
    pub fn open_with_recovery_filter(
        opts: Options,
        dir: impl AsRef<Path>,
        filter: Option<RecoveryFilter>,
    ) -> Result<Db> {
        let dir = dir.as_ref().to_path_buf();
        let env = opts.env.clone();
        env.create_dir_all(&dir)?;
        let versions = VersionSet::open(env.clone(), &dir, &opts)?;
        let file_counter = versions.file_counter();
        let block_cache = (opts.block_cache_size > 0)
            .then(|| Arc::new(BlockCache::new(opts.block_cache_size)));
        let table_cache = Arc::new(TableCache::new(env.clone(), dir.clone(), block_cache.clone()));
        let stats = Arc::new(DbStats::new());

        let mut state = DbState {
            mem: Arc::new(MemTable::new()),
            imms: Vec::new(),
            versions,
            bg_error: None,
            flush_active: false,
            compact_busy: vec![false; opts.num_levels],
        };

        // Replay WALs newer than the manifest's log number.
        let mut max_seq = state.versions.last_sequence.load(Ordering::Relaxed);
        let mut max_gsn = 0u64;
        let mut edit = VersionEdit::default();
        let mut wal_numbers: Vec<u64> = env
            .list_dir(&dir)?
            .iter()
            .filter_map(|p| crate::types::parse_file_name(&p.to_string_lossy()))
            .filter(|(num, kind)| *kind == FileKind::Wal && *num >= state.versions.log_number)
            .map(|(num, _)| num)
            .collect();
        wal_numbers.sort_unstable();
        {
            let ctx = JobContext {
                env: &env,
                dir: &dir,
                opts: &opts,
                table_cache: &table_cache,
                stats: &stats,
            };
            let counter = file_counter.clone();
            let alloc = move || counter.fetch_add(1, Ordering::Relaxed);
            let mut mem = Arc::new(MemTable::new());
            for wal in &wal_numbers {
                let path = file_path(&dir, *wal, FileKind::Wal);
                let mut reader = LogReader::new(env.new_sequential(&path)?);
                let mut record = Vec::new();
                while reader.read_record(&mut record)? {
                    let batch = WriteBatch::from_data(&record)?;
                    max_gsn = max_gsn.max(batch.gsn());
                    if let Some(f) = &filter {
                        if !f(batch.gsn()) {
                            continue;
                        }
                    }
                    let end = batch.sequence() + u64::from(batch.count()).saturating_sub(1);
                    max_seq = max_seq.max(end);
                    Self::apply_batch_to_mem(&mem, &batch)?;
                    if mem.approximate_memory_usage() >= opts.memtable_size {
                        for f in flush_memtable(&ctx, &mem, &alloc)? {
                            edit.added.push((0, f));
                        }
                        mem = Arc::new(MemTable::new());
                    }
                }
            }
            if !mem.is_empty() {
                for f in flush_memtable(&ctx, &mem, &alloc)? {
                    edit.added.push((0, f));
                }
            }
        }

        // Fresh WAL for new writes, pinned to the instance's home queue.
        let new_log = state.versions.allocate_file_number();
        let wal_path = file_path(&dir, new_log, FileKind::Wal);
        let wal_file = match opts.io_queue {
            Some(q) => env.new_writable_on(&wal_path, q)?,
            None => env.new_writable(&wal_path)?,
        };
        let writer = LogWriter::new(wal_file);
        edit.log_number = Some(new_log);
        edit.last_sequence = Some(max_seq);
        state.versions.last_sequence.store(max_seq, Ordering::Relaxed);
        state.versions.log_and_apply(edit)?;

        let read_pool =
            (opts.read_pool_threads > 0).then(|| ReadPool::new(opts.read_pool_threads));
        let n_bg = opts.compaction_threads.max(1) + 1;
        let inner = Arc::new(DbInner {
            stats,
            table_cache,
            block_cache,
            state: Mutex::new(state),
            bg_cv: Condvar::new(),
            log: Mutex::new(LogState {
                writer: Some(writer),
                number: new_log,
            }),
            wal_queue: Mutex::new(VecDeque::new()),
            next_seq: AtomicU64::new(max_seq),
            visible_seq: AtomicU64::new(max_seq),
            publish_mutex: Mutex::new(()),
            publish_cv: Condvar::new(),
            snapshots: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            read_pool,
            file_counter,
            pending_outputs: Arc::new(Mutex::new(std::collections::HashSet::new())),
            recovered_max_gsn: AtomicU64::new(max_gsn),
            skip_sync_on_drop: AtomicBool::new(false),
            gc_mutex: Mutex::new(()),
            event_hook: Mutex::new(None),
            opts,
            dir,
        });
        inner.remove_obsolete_files();

        let threads = (0..n_bg)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("lsmkv-bg-{i}"))
                    .spawn(move || DbInner::background_loop(inner))
                    .expect("spawn background thread")
            })
            .collect();
        Ok(Db {
            inner,
            threads: Mutex::new(threads),
        })
    }

    /// Applies every update in `batch` to `mem` using the batch's assigned
    /// sequence numbers.
    fn apply_batch_to_mem(mem: &MemTable, batch: &WriteBatch) -> Result<()> {
        let mut seq = batch.sequence();
        for op in batch.iter() {
            match op? {
                BatchOp::Put { key, value } => mem.add(seq, ValueType::Value, key, value),
                BatchOp::Delete { key } => mem.add(seq, ValueType::Deletion, key, b""),
            }
            seq += 1;
        }
        Ok(())
    }

    /// Inserts `key -> value`.
    pub fn put(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.put(key, value);
        self.write(opts, b)
    }

    /// Deletes `key`.
    pub fn delete(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.delete(key);
        self.write(opts, b)
    }

    /// Applies `batch` atomically.
    pub fn write(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::ShuttingDown);
        }
        let count = u64::from(batch.count());
        let user_bytes = (batch.size() - crate::batch::BATCH_HEADER) as u64;
        let slot = WriterSlot::new(batch, opts.sync, opts.disable_wal);
        {
            let mut q = self.inner.wal_queue.lock();
            let was_empty = q.is_empty();
            q.push_back(slot.clone());
            if was_empty {
                slot.set_phase(Phase::Lead);
            }
        }
        let result = loop {
            match slot.wait_for_signal() {
                SignaledPhase::Lead => break self.inner.run_as_leader(&slot),
                SignaledPhase::Insert { mem, group } => {
                    let t0 = Instant::now();
                    let res = {
                        let b = slot.batch.lock();
                        Self::apply_batch_to_mem(&mem, &b)
                    };
                    let mem_ns = t0.elapsed().as_nanos() as u64;
                    slot.mem_ns.store(mem_ns, Ordering::Relaxed);
                    group.complete();
                    let err = slot.wait_done();
                    // Breakdown accounting for the concurrent-insert path.
                    let wal_end = group.wal_end.lock().unwrap_or(slot.enqueued);
                    let wal_lock = wal_end
                        .saturating_duration_since(slot.enqueued)
                        .as_nanos() as u64;
                    slot.wal_lock_ns.store(wal_lock, Ordering::Relaxed);
                    let after_wal = Instant::now()
                        .saturating_duration_since(wal_end)
                        .as_nanos() as u64;
                    slot.mem_lock_ns
                        .store(after_wal.saturating_sub(mem_ns), Ordering::Relaxed);
                    break match (res, err) {
                        (Err(e), _) => Err(e),
                        (Ok(()), Some(msg)) => Err(Error::InvalidState(msg)),
                        (Ok(()), None) => Ok(()),
                    };
                }
                SignaledPhase::Done(err) => {
                    break match err {
                        Some(msg) => Err(Error::InvalidState(msg)),
                        None => Ok(()),
                    }
                }
            }
        };
        // Record the breakdown.
        let total = slot.enqueued.elapsed().as_nanos() as u64;
        let wal = slot.wal_ns.load(Ordering::Relaxed);
        let mem = slot.mem_ns.load(Ordering::Relaxed);
        let wal_lock = slot.wal_lock_ns.load(Ordering::Relaxed);
        let mem_lock = slot.mem_lock_ns.load(Ordering::Relaxed);
        let stats = &self.inner.stats;
        stats.breakdown.wal.record(wal);
        stats.breakdown.memtable.record(mem);
        stats.breakdown.wal_lock.record(wal_lock);
        stats.breakdown.memtable_lock.record(mem_lock);
        stats
            .breakdown
            .other
            .record(total.saturating_sub(wal + mem + wal_lock + mem_lock));
        DbStats::bump(&stats.writes, 1);
        DbStats::bump(&stats.keys_written, count);
        DbStats::bump(&stats.user_bytes_written, user_bytes);
        result
    }

    /// Point lookup at the latest visible sequence.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_with(&ReadOptions::default(), key)
    }

    /// Point lookup honoring `opts` (snapshot, cache bypass).
    pub fn get_with(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let t_read = Instant::now();
        DbStats::bump(&self.inner.stats.gets, 1);
        let snapshot = opts
            .snapshot
            .unwrap_or_else(|| self.inner.visible_seq.load(Ordering::Acquire));
        let (mem, imms, version) = self.inner.read_refs();
        let result = DbInner::get_in_refs(
            &self.inner,
            &mem,
            &imms,
            &version,
            key,
            snapshot,
            opts.skip_cache,
        );
        self.inner
            .stats
            .read_path
            .record(t_read.elapsed().as_nanos() as u64);
        result
    }

    /// Batched point lookups (RocksDB `MultiGet` analogue). Results are in
    /// key order; lookups may proceed in parallel on the read pool.
    pub fn multiget(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        self.multiget_with(&ReadOptions::default(), keys)
    }

    /// Batched point lookups honoring `opts`.
    pub fn multiget_with(
        &self,
        opts: &ReadOptions,
        keys: &[Vec<u8>],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        if !self.inner.opts.has_multiget {
            // LevelDB mode: engines without multiget run lookups serially.
            return keys.iter().map(|k| self.get_with(opts, k)).collect();
        }
        DbStats::bump(&self.inner.stats.multigets, 1);
        let t_read = Instant::now();
        let snapshot = opts
            .snapshot
            .unwrap_or_else(|| self.inner.visible_seq.load(Ordering::Acquire));
        let (mem, imms, version) = self.inner.read_refs();
        let pool = self.inner.read_pool.as_ref();
        let result = match pool {
            Some(pool) if keys.len() >= 4 => {
                let shared_keys: Arc<Vec<Vec<u8>>> = Arc::new(keys.to_vec());
                let results: Arc<Vec<Mutex<std::result::Result<Option<Vec<u8>>, String>>>> = Arc::new(
                    (0..keys.len()).map(|_| Mutex::new(Ok(None))).collect(),
                );
                let threads = pool.threads().max(1);
                let chunk = keys.len().div_ceil(threads);
                let mut jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
                for c in 0..threads {
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(keys.len());
                    if lo >= hi {
                        break;
                    }
                    let inner = self.inner.clone();
                    let mem = mem.clone();
                    let imms = imms.clone();
                    let version = version.clone();
                    let keys = shared_keys.clone();
                    let results = results.clone();
                    let skip_cache = opts.skip_cache;
                    jobs.push(Box::new(move || {
                        for i in lo..hi {
                            let r = DbInner::get_in_refs(
                                &inner, &mem, &imms, &version, &keys[i], snapshot, skip_cache,
                            );
                            *results[i].lock() = r.map_err(|e| e.to_string());
                        }
                    }));
                }
                pool.run_all(jobs);
                let results = Arc::try_unwrap(results).unwrap_or_else(|arc| {
                    // Jobs all completed (run_all waits); contention-free.
                    (0..arc.len())
                        .map(|i| Mutex::new(arc[i].lock().clone()))
                        .collect()
                });
                results
                    .into_iter()
                    .map(|m| m.into_inner().map_err(Error::InvalidState))
                    .collect()
            }
            _ => keys
                .iter()
                .map(|k| {
                    DbInner::get_in_refs(
                        &self.inner,
                        &mem,
                        &imms,
                        &version,
                        k,
                        snapshot,
                        opts.skip_cache,
                    )
                })
                .collect(),
        };
        self.inner
            .stats
            .read_path
            .record(t_read.elapsed().as_nanos() as u64);
        result
    }

    /// A forward iterator over live keys at the latest visible sequence.
    pub fn iter(&self) -> Result<DbIterator> {
        self.iter_with(&ReadOptions::default())
    }

    /// A forward iterator honoring `opts`.
    pub fn iter_with(&self, opts: &ReadOptions) -> Result<DbIterator> {
        let snapshot = opts
            .snapshot
            .unwrap_or_else(|| self.inner.visible_seq.load(Ordering::Acquire));
        let (mem, imms, version) = self.inner.read_refs();
        let mut children: Vec<Box<dyn crate::iterator::InternalIterator>> = Vec::new();
        children.push(Box::new(mem.iter()));
        for imm in &imms {
            children.push(Box::new(imm.iter()));
        }
        children.extend(version.iterators(&self.inner.table_cache)?);
        Ok(DbIterator::new_pinned(children, snapshot, version))
    }

    /// Reads up to `count` live entries starting at `start` (SCAN).
    pub fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut it = self.iter()?;
        it.seek(start);
        let mut out = Vec::with_capacity(count);
        while it.valid() && out.len() < count {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        it.status()?; // A read error must not pass as a short scan.
        Ok(out)
    }

    /// Reads all live entries in `[begin, end)` (RANGE).
    pub fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut it = self.iter()?;
        it.seek(begin);
        let mut out = Vec::new();
        while it.valid() && it.key() < end {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        it.status()?; // A read error must not pass as an empty tail.
        Ok(out)
    }

    /// Takes a consistent point-in-time snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let seq = self.inner.visible_seq.load(Ordering::Acquire);
        *self.inner.snapshots.lock().entry(seq).or_insert(0) += 1;
        Snapshot {
            inner: self.inner.clone(),
            seq,
        }
    }

    /// Forces the current memtable out and waits until all immutable
    /// memtables are flushed.
    pub fn flush(&self) -> Result<()> {
        {
            let mut state = self.inner.state.lock();
            if !state.mem.is_empty() {
                self.inner.switch_memtable(&mut state)?;
            }
        }
        self.inner.bg_cv.notify_all();
        let mut state = self.inner.state.lock();
        while !state.imms.is_empty() || state.flush_active {
            if let Some(e) = &state.bg_error {
                return Err(Error::InvalidState(e.clone()));
            }
            self.inner.bg_cv.wait(&mut state);
        }
        Ok(())
    }

    /// Blocks until no flush or compaction work remains.
    pub fn wait_idle(&self) -> Result<()> {
        let mut state = self.inner.state.lock();
        loop {
            if let Some(e) = &state.bg_error {
                return Err(Error::InvalidState(e.clone()));
            }
            let busy = !state.imms.is_empty()
                || state.flush_active
                || state.any_compaction_active()
                || state.versions.pick_compaction().is_some();
            if !busy {
                return Ok(());
            }
            self.inner.bg_cv.notify_all();
            self.inner.bg_cv.wait(&mut state);
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &Arc<DbStats> {
        &self.inner.stats
    }

    /// Installs (replacing any previous) the background-job event
    /// observer. Events are delivered from the background thread with no
    /// engine lock held.
    pub fn install_event_hook(&self, hook: DbEventHook) {
        *self.inner.event_hook.lock() = Some(hook);
    }

    /// Engine options.
    pub fn options(&self) -> &Options {
        &self.inner.opts
    }

    /// Approximate resident memory: memtables plus block cache.
    pub fn approximate_memory_usage(&self) -> usize {
        let state = self.inner.state.lock();
        let mem = state.mem.approximate_memory_usage();
        let imm: usize = state
            .imms
            .iter()
            .map(|(_, m)| m.approximate_memory_usage())
            .sum();
        drop(state);
        let cache = self
            .inner
            .block_cache
            .as_ref()
            .map(|c| c.usage())
            .unwrap_or(0);
        mem + imm + cache
    }

    /// Number of table files at `level`.
    pub fn num_files_at_level(&self, level: usize) -> usize {
        self.inner.state.lock().versions.current().levels[level].len()
    }

    /// Bytes per level.
    pub fn level_sizes(&self) -> Vec<u64> {
        let v = self.inner.state.lock().versions.current();
        (0..v.levels.len()).map(|l| v.level_bytes(l)).collect()
    }

    /// Latest sequence visible to reads.
    pub fn visible_sequence(&self) -> SequenceNumber {
        self.inner.visible_seq.load(Ordering::Acquire)
    }

    /// Largest GSN tag seen while replaying WALs at open.
    pub fn max_recovered_gsn(&self) -> u64 {
        self.inner.recovered_max_gsn.load(Ordering::Relaxed)
    }

    /// Synchronizes the WAL (durability barrier for all prior writes).
    pub fn sync_wal(&self) -> Result<()> {
        let mut log = self.inner.log.lock();
        if let Some(w) = log.writer.as_mut() {
            w.sync()?;
        }
        Ok(())
    }
}

impl Db {
    /// Simulates a process crash: stops background threads and drops the
    /// handle **without** syncing the WAL or flushing memtables. Unsynced
    /// data survives only as far as the environment's page-cache semantics
    /// allow (combine with `MemFs::power_failure` to also drop those
    /// bytes). Intended for crash-consistency tests and the paper's §4.5
    /// kill-during-write experiments.
    pub fn crash(self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.bg_cv.notify_all();
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
        // `Drop` will run next but finds no threads and an already-set
        // shutdown flag; suppress its WAL sync to preserve crash
        // semantics.
        self.inner.skip_sync_on_drop.store(true, Ordering::Release);
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        // Best-effort durability, then stop background work.
        if !self.inner.skip_sync_on_drop.load(Ordering::Acquire) {
            let _ = self.sync_wal();
        }
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.bg_cv.notify_all();
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// A registered point-in-time view; keeps versions older than `seq` alive
/// against compaction GC until dropped.
pub struct Snapshot {
    inner: Arc<DbInner>,
    seq: SequenceNumber,
}

impl Snapshot {
    /// The snapshot's sequence number (pass via [`ReadOptions::snapshot`]).
    pub fn sequence(&self) -> SequenceNumber {
        self.seq
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut snaps = self.inner.snapshots.lock();
        if let Some(count) = snaps.get_mut(&self.seq) {
            *count -= 1;
            if *count == 0 {
                snaps.remove(&self.seq);
            }
        }
    }
}

impl DbInner {
    /// Clones the references a read needs, under the state lock.
    fn read_refs(&self) -> (Arc<MemTable>, Vec<Arc<MemTable>>, Arc<Version>) {
        let state = self.state.lock();
        let imms = state.imms.iter().rev().map(|(_, m)| m.clone()).collect();
        (state.mem.clone(), imms, state.versions.current())
    }

    /// Point lookup against an already-captured set of references.
    fn get_in_refs(
        inner: &Arc<DbInner>,
        mem: &Arc<MemTable>,
        imms: &[Arc<MemTable>],
        version: &Arc<Version>,
        key: &[u8],
        snapshot: SequenceNumber,
        skip_cache: bool,
    ) -> Result<Option<Vec<u8>>> {
        match mem.get(key, snapshot) {
            MemGet::Found(v) => {
                DbStats::bump(&inner.stats.memtable_hits, 1);
                return Ok(Some(v));
            }
            MemGet::Deleted => return Ok(None),
            MemGet::NotFound => {}
        }
        for imm in imms {
            match imm.get(key, snapshot) {
                MemGet::Found(v) => {
                    DbStats::bump(&inner.stats.memtable_hits, 1);
                    return Ok(Some(v));
                }
                MemGet::Deleted => return Ok(None),
                MemGet::NotFound => {}
            }
        }
        match version.get(
            key,
            snapshot,
            &inner.table_cache,
            skip_cache,
            Some(&inner.stats),
        )? {
            GetOutcome::Found(v) => Ok(Some(v)),
            GetOutcome::Deleted | GetOutcome::NotFound => Ok(None),
        }
    }

    /// Runs one write group with the calling slot as leader.
    fn run_as_leader(self: &Arc<Self>, slot: &Arc<WriterSlot>) -> Result<()> {
        slot.wal_lock_ns.store(
            slot.enqueued.elapsed().as_nanos() as u64,
            Ordering::Relaxed,
        );
        if let Err(e) = self.make_room_for_write() {
            self.pop_group_and_promote(&[slot.clone()]);
            slot.set_phase(Phase::Done(Some(e.to_string())));
            return Err(e);
        }
        // Capture the memtable the group inserts into; only this leader can
        // switch it (in make_room above), so it stays current for the group.
        let mem = self.state.lock().mem.clone();
        let group = {
            let q = self.wal_queue.lock();
            form_group(&q, self.opts.group_commit, self.opts.max_write_group_bytes)
        };
        // Assign sequence numbers.
        let total: u64 = group
            .iter()
            .map(|s| u64::from(s.batch.lock().count()))
            .sum();
        let start_seq = self.next_seq.fetch_add(total, Ordering::Relaxed) + 1;
        let mut cur = start_seq;
        for s in &group {
            let mut b = s.batch.lock();
            b.set_sequence(cur);
            cur += u64::from(b.count());
        }
        let end_seq = cur - 1;

        // WAL stage.
        let t_wal = Instant::now();
        let mut wal_err: Option<Error> = None;
        if !slot.disable_wal {
            let mut log = self.log.lock();
            if let Some(w) = log.writer.as_mut() {
                for s in &group {
                    let b = s.batch.lock();
                    if let Err(e) = w.add_record(b.data()) {
                        wal_err = Some(e);
                        break;
                    }
                }
                if wal_err.is_none() {
                    let sync = slot.sync || self.opts.sync == SyncPolicy::Always;
                    let r = if sync {
                        w.sync()
                    } else if self.opts.sync == SyncPolicy::Async {
                        w.flush()
                    } else {
                        Ok(())
                    };
                    if let Err(e) = r {
                        wal_err = Some(e);
                    }
                }
            }
        }
        let t_wal_end = Instant::now();
        slot.wal_ns.store(
            t_wal_end.saturating_duration_since(t_wal).as_nanos() as u64,
            Ordering::Relaxed,
        );
        if let Err(e) = wal_err.map_or(Ok(()), Err) {
            // The group's sequence range was already reserved; publish it
            // even though nothing was inserted under those seqs, or the
            // next group would wait on `visible_seq == start_seq - 1`
            // forever and one transient WAL error would wedge every
            // subsequent write.
            self.publish(start_seq, end_seq);
            let msg = e.to_string();
            self.pop_group_and_promote(&group);
            for f in group.iter().skip(1) {
                f.set_phase(Phase::Done(Some(msg.clone())));
            }
            slot.set_phase(Phase::Done(Some(msg)));
            return Err(e);
        }
        DbStats::bump(&self.stats.write_groups, 1);

        // Pipelined write: unblock the next group's WAL before our
        // MemTable phase.
        if self.opts.pipelined_write {
            self.pop_group_and_promote(&group);
        }

        // MemTable stage.
        let concurrent =
            self.opts.concurrent_memtable && group.len() > 1 && !self.opts.bench_skip_memtable;
        let mut insert_err: Option<Error> = None;
        if !self.opts.bench_skip_memtable {
            if concurrent {
                let gs = Arc::new(GroupSync::new(group.len()));
                *gs.wal_end.lock() = Some(t_wal_end);
                for f in group.iter().skip(1) {
                    f.set_phase(Phase::Insert {
                        mem: mem.clone(),
                        group: gs.clone(),
                    });
                }
                let t0 = Instant::now();
                let r = {
                    let b = slot.batch.lock();
                    Db::apply_batch_to_mem(&mem, &b)
                };
                slot.mem_ns
                    .store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                gs.complete();
                let t_sync = Instant::now();
                gs.wait_all();
                slot.mem_lock_ns
                    .store(t_sync.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if let Err(e) = r {
                    insert_err = Some(e);
                }
            } else {
                let t0 = Instant::now();
                for s in &group {
                    let b = s.batch.lock();
                    if let Err(e) = Db::apply_batch_to_mem(&mem, &b) {
                        insert_err = Some(e);
                        break;
                    }
                }
                slot.mem_ns
                    .store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }

        // Publish visibility strictly in sequence order.
        self.publish(start_seq, end_seq);

        if !self.opts.pipelined_write {
            self.pop_group_and_promote(&group);
        }
        let t_done = Instant::now();
        let err_msg = insert_err.as_ref().map(|e| e.to_string());
        for f in group.iter().skip(1) {
            if !concurrent {
                f.wal_lock_ns.store(
                    t_wal_end.saturating_duration_since(f.enqueued).as_nanos() as u64,
                    Ordering::Relaxed,
                );
                f.mem_lock_ns.store(
                    t_done.saturating_duration_since(t_wal_end).as_nanos() as u64,
                    Ordering::Relaxed,
                );
            }
            f.set_phase(Phase::Done(err_msg.clone()));
        }
        slot.set_phase(Phase::Done(err_msg));
        insert_err.map_or(Ok(()), Err)
    }

    /// Waits until `visible_seq == start_seq - 1`, then publishes
    /// `end_seq`. Guarantees in-order visibility across pipelined groups.
    fn publish(&self, start_seq: u64, end_seq: u64) {
        let mut guard = self.publish_mutex.lock();
        while self.visible_seq.load(Ordering::Acquire) != start_seq - 1 {
            self.publish_cv.wait(&mut guard);
        }
        self.visible_seq.store(end_seq, Ordering::Release);
        drop(guard);
        self.publish_cv.notify_all();
    }

    /// Pops `group` from the queue front and promotes the next leader.
    fn pop_group_and_promote(&self, group: &[Arc<WriterSlot>]) {
        let mut q = self.wal_queue.lock();
        for expected in group {
            let popped = q.pop_front().expect("group members are at the front");
            debug_assert!(Arc::ptr_eq(&popped, expected));
            let _ = popped;
        }
        if let Some(front) = q.front() {
            front.set_phase(Phase::Lead);
        }
    }

    /// Ensures the memtable has room, applying the paper's backpressure
    /// rules (L0 slowdown/stop, immutable-memtable stall).
    fn make_room_for_write(&self) -> Result<()> {
        let mut delayed = false;
        let mut state = self.state.lock();
        loop {
            if let Some(e) = &state.bg_error {
                return Err(Error::InvalidState(e.clone()));
            }
            let l0 = state.versions.current().levels[0].len();
            if !delayed && l0 >= self.opts.l0_slowdown_trigger && l0 < self.opts.l0_stop_trigger {
                // Soft backpressure: one 1 ms delay per write.
                drop(state);
                let t = Instant::now();
                std::thread::sleep(std::time::Duration::from_millis(1));
                self.stats.add_stall(t.elapsed());
                delayed = true;
                state = self.state.lock();
                continue;
            }
            if state.mem.approximate_memory_usage() < self.opts.memtable_size {
                return Ok(());
            }
            if state.imms.len() >= self.opts.max_immutable_memtables
                || l0 >= self.opts.l0_stop_trigger
            {
                // Hard stall: wait for background work to catch up.
                let t = Instant::now();
                self.bg_cv.wait(&mut state);
                self.stats.add_stall(t.elapsed());
                continue;
            }
            self.switch_memtable(&mut state)?;
            self.bg_cv.notify_all();
        }
    }

    /// Moves the active memtable to the immutable list and starts a fresh
    /// WAL. Caller holds the state lock.
    fn switch_memtable(&self, state: &mut DbState) -> Result<()> {
        let new_num = state.versions.allocate_file_number();
        let path = file_path(&self.dir, new_num, FileKind::Wal);
        let file = match self.opts.io_queue {
            Some(q) => self.opts.env.new_writable_on(&path, q)?,
            None => self.opts.env.new_writable(&path)?,
        };
        let mut log = self.log.lock();
        if let Some(old) = log.writer.as_mut() {
            // Push buffered bytes out so the flushed memtable's WAL is
            // complete on the device before we stop writing to it.
            let _ = old.flush();
        }
        let old_num = log.number;
        log.writer = Some(LogWriter::new(file));
        log.number = new_num;
        drop(log);
        let old_mem = std::mem::replace(&mut state.mem, Arc::new(MemTable::new()));
        state.imms.push((old_num, old_mem));
        Ok(())
    }

    /// Smallest sequence any reader may still need.
    fn smallest_snapshot(&self) -> SequenceNumber {
        let snaps = self.snapshots.lock();
        let min_snap = snaps.keys().next().copied();
        let visible = self.visible_seq.load(Ordering::Acquire);
        min_snap.map_or(visible, |s| s.min(visible))
    }

    /// Deletes files no version references (old WALs, dead tables, stale
    /// manifests, temp files).
    fn remove_obsolete_files(&self) {
        // One pass at a time: concurrent passes double-delete harmlessly
        // but make traces confusing.
        let _gc = self.gc_mutex.lock();
        // Order matters: list the directory BEFORE computing the live set.
        // A file that is created and installed after the listing simply
        // isn't seen; a listed file that becomes live before the
        // computation below is protected. Computing live first would leave
        // a window where a freshly installed file is listed but absent
        // from the stale live snapshot — and wrongly deleted.
        let Ok(names) = self.opts.env.list_dir(&self.dir) else {
            return;
        };
        let (live, log_floor, current_log, manifest) = {
            let state = self.state.lock();
            let live = state.versions.live_files_any();
            let floor = state
                .imms
                .first()
                .map(|(num, _)| *num)
                .unwrap_or(state.versions.log_number);
            (
                live,
                floor.min(state.versions.log_number.max(1)),
                self.log.lock().number,
                state.versions.manifest_number,
            )
        };
        for name in names {
            let name_str = name.to_string_lossy().into_owned();
            let Some((num, kind)) = crate::types::parse_file_name(&name_str) else {
                continue;
            };
            let dead = match kind {
                FileKind::Wal => num < log_floor && num != current_log,
                FileKind::Table => {
                    !live.contains(&num) && !self.pending_outputs.lock().contains(&num)
                }
                FileKind::Manifest => num < manifest,
                FileKind::Temp => true,
            };
            if dead {
                if kind == FileKind::Table {
                    self.table_cache.evict(num);
                }
                if std::env::var_os("P2KVS_GC_TRACE").is_some() {
                    eprintln!("[gc] {} removing {}", self.dir.display(), name_str);
                }
                let _ = self.opts.env.remove_file(&self.dir.join(&name));
            }
        }
    }

    /// Delivers `ev` to the installed event hook, if any, with no engine
    /// lock held (the hook clone is taken before the call).
    fn fire_event(&self, ev: DbEvent) {
        let hook = self.event_hook.lock().clone();
        if let Some(hook) = hook {
            hook(&ev);
        }
    }

    /// Background worker: flushes and compactions.
    fn background_loop(inner: Arc<DbInner>) {
        // Background IO (manifest writes, anything not explicitly pinned)
        // rides the instance's home queue.
        p2kvs_storage::set_thread_io_queue(inner.opts.io_queue);
        enum Work {
            Flush(u64, Arc<MemTable>),
            Compact(crate::version::CompactionTask, Arc<Version>),
        }
        loop {
            /// Allocates output file numbers and shields them from GC until
            /// the job's edit is applied (dropped at end of the job).
            struct OutputGuard {
                pending: Arc<Mutex<std::collections::HashSet<u64>>>,
                mine: Mutex<Vec<u64>>,
                counter: Arc<AtomicU64>,
            }
            impl OutputGuard {
                fn alloc(&self) -> u64 {
                    let n = self.counter.fetch_add(1, Ordering::Relaxed);
                    self.pending.lock().insert(n);
                    self.mine.lock().push(n);
                    n
                }
            }
            impl Drop for OutputGuard {
                fn drop(&mut self) {
                    let mut pending = self.pending.lock();
                    for n in self.mine.lock().drain(..) {
                        pending.remove(&n);
                    }
                }
            }
            let work = {
                let mut state = inner.state.lock();
                loop {
                    if inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if state.bg_error.is_some() {
                        inner.bg_cv.wait(&mut state);
                        continue;
                    }
                    if !state.imms.is_empty() && !state.flush_active {
                        state.flush_active = true;
                        let (num, mem) = state.imms[0].clone();
                        break Work::Flush(num, mem);
                    }
                    if let Some(task) =
                        state.versions.pick_compaction_excluding(&state.compact_busy)
                    {
                        state.compact_busy[task.level] = true;
                        state.compact_busy[task.output_level] = true;
                        break Work::Compact(task, state.versions.current());
                    }
                    inner.bg_cv.wait(&mut state);
                }
            };
            let guard = OutputGuard {
                pending: inner.pending_outputs.clone(),
                mine: Mutex::new(Vec::new()),
                counter: inner.file_counter.clone(),
            };
            let alloc = || guard.alloc();
            let ctx = JobContext {
                env: &inner.opts.env,
                dir: &inner.dir,
                opts: &inner.opts,
                table_cache: &inner.table_cache,
                stats: &inner.stats,
            };
            match work {
                Work::Flush(wal_num, mem) => {
                    inner.fire_event(DbEvent::FlushStart {
                        bytes: mem.approximate_memory_usage() as u64,
                    });
                    let t_job = Instant::now();
                    let result = flush_memtable(&ctx, &mem, &alloc);
                    inner.stats.bg_busy.record(t_job.elapsed().as_nanos() as u64);
                    let mut finish = DbEvent::FlushFinish { bytes: 0, ok: false };
                    let mut state = inner.state.lock();
                    match result {
                        Ok(files) => {
                            finish = DbEvent::FlushFinish {
                                bytes: files.iter().map(|f| f.size).sum(),
                                ok: true,
                            };
                            let mut edit = VersionEdit::default();
                            for f in files {
                                edit.added.push((0, f));
                            }
                            // After this imm is gone, the oldest WAL still
                            // needed is the next imm's (or the live log).
                            let next_needed = state
                                .imms
                                .get(1)
                                .map(|(n, _)| *n)
                                .unwrap_or_else(|| inner.log.lock().number);
                            edit.log_number = Some(next_needed);
                            edit.last_sequence =
                                Some(inner.visible_seq.load(Ordering::Acquire));
                            match state.versions.log_and_apply(edit) {
                                Ok(()) => {
                                    debug_assert_eq!(state.imms[0].0, wal_num);
                                    state.imms.remove(0);
                                }
                                Err(e) => state.bg_error = Some(e.to_string()),
                            }
                        }
                        Err(e) => state.bg_error = Some(e.to_string()),
                    }
                    state.flush_active = false;
                    drop(state);
                    inner.fire_event(finish);
                    inner.remove_obsolete_files();
                    inner.bg_cv.notify_all();
                }
                Work::Compact(task, version) => {
                    let input_bytes: u64 = task
                        .inputs
                        .iter()
                        .chain(task.next_inputs.iter())
                        .map(|f| f.size)
                        .sum();
                    inner.fire_event(DbEvent::CompactionStart {
                        level: task.level as u32,
                        input_bytes,
                    });
                    let smallest = inner.smallest_snapshot();
                    let t_job = Instant::now();
                    let result = run_compaction(&ctx, &task, &version, smallest, &alloc);
                    inner.stats.bg_busy.record(t_job.elapsed().as_nanos() as u64);
                    let mut finish = DbEvent::CompactionFinish {
                        level: task.level as u32,
                        output_bytes: 0,
                        ok: false,
                    };
                    let mut state = inner.state.lock();
                    match result {
                        Ok(out) => {
                            finish = DbEvent::CompactionFinish {
                                level: task.level as u32,
                                output_bytes: out.files.iter().map(|f| f.size).sum(),
                                ok: true,
                            };
                            let mut edit = VersionEdit::default();
                            for f in &task.inputs {
                                edit.deleted.push((task.level, f.number));
                            }
                            for f in &task.next_inputs {
                                edit.deleted.push((task.output_level, f.number));
                            }
                            for f in out.files {
                                edit.added.push((task.output_level, f));
                            }
                            if let Some(largest) =
                                task.inputs.iter().map(|f| f.largest.clone()).max()
                            {
                                state.versions.set_compact_pointer(task.level, largest);
                            }
                            if let Err(e) = state.versions.log_and_apply(edit) {
                                state.bg_error = Some(e.to_string());
                            }
                        }
                        Err(e) => state.bg_error = Some(e.to_string()),
                    }
                    state.compact_busy[task.level] = false;
                    state.compact_busy[task.output_level] = false;
                    drop(state);
                    inner.fire_event(finish);
                    inner.remove_obsolete_files();
                    inner.bg_cv.notify_all();
                }
            }
        }
    }
}
