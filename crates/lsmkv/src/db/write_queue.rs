//! Writer slots and group-commit bookkeeping.
//!
//! This module reproduces RocksDB's *group logging* protocol (paper §2.2,
//! Fig 3): concurrent writers enqueue [`WriterSlot`]s; the front slot
//! becomes the **leader**, aggregates the batches of trailing **followers**
//! into one log write, and either inserts all batches into the MemTable
//! itself (vanilla) or wakes the followers to insert their own batches in
//! parallel (concurrent MemTable). The timestamps collected here feed the
//! Fig 6 write-latency breakdown.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::batch::WriteBatch;
use crate::memtable::MemTable;

/// Where a queued writer currently is in the protocol.
pub enum Phase {
    /// Waiting in the queue.
    Queued,
    /// Promoted to group leader: must run the group.
    Lead,
    /// Told to insert its own batch into `mem`, then report to `group`.
    Insert {
        mem: Arc<MemTable>,
        group: Arc<GroupSync>,
    },
    /// Finished; `None` = success.
    Done(Option<String>),
}

/// Synchronizes one write group.
pub struct GroupSync {
    /// Batches still inserting into the MemTable.
    pending: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
    /// Nanoseconds (relative to the leader's enqueue) when the group's WAL
    /// write finished; used by followers for breakdown accounting.
    pub wal_end: Mutex<Option<Instant>>,
}

impl GroupSync {
    /// Creates a sync for `n` pending inserters.
    pub fn new(n: usize) -> GroupSync {
        GroupSync {
            pending: AtomicUsize::new(n),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
            wal_end: Mutex::new(None),
        }
    }

    /// Reports one inserter done.
    pub fn complete(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.mutex.lock();
            self.cv.notify_all();
        }
    }

    /// Blocks until every inserter reported.
    pub fn wait_all(&self) {
        let mut guard = self.mutex.lock();
        while self.pending.load(Ordering::Acquire) != 0 {
            self.cv.wait(&mut guard);
        }
    }
}

/// One queued write request.
pub struct WriterSlot {
    /// The writer's batch; the leader locks it to assign the sequence and
    /// copy its payload into the log write.
    pub batch: Mutex<WriteBatch>,
    /// Request a durability barrier after the log write.
    pub sync: bool,
    /// Skip the WAL entirely.
    pub disable_wal: bool,
    /// Protocol phase.
    phase: Mutex<Phase>,
    cv: Condvar,
    /// When the writer enqueued (origin for the breakdown deltas).
    pub enqueued: Instant,
    /// Breakdown components in nanoseconds, filled as the protocol runs.
    pub wal_ns: AtomicU64,
    pub mem_ns: AtomicU64,
    pub wal_lock_ns: AtomicU64,
    pub mem_lock_ns: AtomicU64,
}

impl WriterSlot {
    /// Creates a slot holding `batch`.
    pub fn new(batch: WriteBatch, sync: bool, disable_wal: bool) -> Arc<WriterSlot> {
        Arc::new(WriterSlot {
            batch: Mutex::new(batch),
            sync,
            disable_wal,
            phase: Mutex::new(Phase::Queued),
            cv: Condvar::new(),
            enqueued: Instant::now(),
            wal_ns: AtomicU64::new(0),
            mem_ns: AtomicU64::new(0),
            wal_lock_ns: AtomicU64::new(0),
            mem_lock_ns: AtomicU64::new(0),
        })
    }

    /// Sets the phase and wakes the waiting writer.
    pub fn set_phase(&self, phase: Phase) {
        let mut guard = self.phase.lock();
        *guard = phase;
        drop(guard);
        self.cv.notify_all();
    }

    /// Blocks until the phase changes from `Queued`, then returns a
    /// snapshot of the new phase (cloning the Insert payload).
    pub fn wait_for_signal(&self) -> SignaledPhase {
        let mut guard = self.phase.lock();
        loop {
            match &*guard {
                Phase::Queued => self.cv.wait(&mut guard),
                Phase::Lead => return SignaledPhase::Lead,
                Phase::Insert { mem, group } => {
                    return SignaledPhase::Insert {
                        mem: mem.clone(),
                        group: group.clone(),
                    }
                }
                Phase::Done(err) => return SignaledPhase::Done(err.clone()),
            }
        }
    }

    /// Blocks until the phase is `Done`, returning its error if any.
    pub fn wait_done(&self) -> Option<String> {
        let mut guard = self.phase.lock();
        loop {
            if let Phase::Done(err) = &*guard {
                return err.clone();
            }
            self.cv.wait(&mut guard);
        }
    }
}

/// Owned snapshot of a phase transition.
pub enum SignaledPhase {
    Lead,
    Insert {
        mem: Arc<MemTable>,
        group: Arc<GroupSync>,
    },
    Done(Option<String>),
}

/// Selects the slots forming the leader's group.
///
/// The leader is `queue[0]`. Followers are taken in order while they are
/// compatible (same WAL/sync settings) and the byte budget holds. Without
/// group commit the group is just the leader.
pub fn form_group(
    queue: &std::collections::VecDeque<Arc<WriterSlot>>,
    group_commit: bool,
    max_bytes: usize,
) -> Vec<Arc<WriterSlot>> {
    let leader = queue
        .front()
        .expect("form_group called with empty queue")
        .clone();
    let mut group = vec![leader.clone()];
    if !group_commit {
        return group;
    }
    let mut bytes = leader.batch.lock().size();
    for slot in queue.iter().skip(1) {
        if slot.sync != leader.sync || slot.disable_wal != leader.disable_wal {
            break;
        }
        let b = slot.batch.lock().size();
        if bytes + b > max_bytes {
            break;
        }
        bytes += b;
        group.push(slot.clone());
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn slot_with(n_keys: usize, sync: bool, disable_wal: bool) -> Arc<WriterSlot> {
        let mut b = WriteBatch::new();
        for i in 0..n_keys {
            b.put(format!("k{i}").as_bytes(), b"v");
        }
        WriterSlot::new(b, sync, disable_wal)
    }

    #[test]
    fn group_sync_counts_down() {
        let g = Arc::new(GroupSync::new(3));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || g.complete())
            })
            .collect();
        g.wait_all();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn form_group_respects_compatibility() {
        let mut q = VecDeque::new();
        q.push_back(slot_with(1, false, false));
        q.push_back(slot_with(1, false, false));
        q.push_back(slot_with(1, true, false)); // sync mismatch stops here
        q.push_back(slot_with(1, false, false));
        let g = form_group(&q, true, 1 << 20);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn form_group_respects_byte_budget() {
        let mut q = VecDeque::new();
        for _ in 0..10 {
            q.push_back(slot_with(100, false, false));
        }
        let one = q[0].batch.lock().size();
        let g = form_group(&q, true, one * 3 + 10);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn no_group_commit_means_leader_only() {
        let mut q = VecDeque::new();
        q.push_back(slot_with(1, false, false));
        q.push_back(slot_with(1, false, false));
        let g = form_group(&q, false, 1 << 20);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn phase_signaling_wakes_waiter() {
        let slot = slot_with(1, false, false);
        let s2 = slot.clone();
        let waiter = std::thread::spawn(move || s2.wait_for_signal());
        std::thread::sleep(std::time::Duration::from_millis(10));
        slot.set_phase(Phase::Lead);
        assert!(matches!(waiter.join().unwrap(), SignaledPhase::Lead));
        slot.set_phase(Phase::Done(None));
        assert_eq!(slot.wait_done(), None);
        slot.set_phase(Phase::Done(Some("boom".into())));
        assert_eq!(slot.wait_done(), Some("boom".into()));
    }

    #[test]
    fn disable_wal_mismatch_breaks_group() {
        let mut q = VecDeque::new();
        q.push_back(slot_with(1, false, true));
        q.push_back(slot_with(1, false, false));
        let g = form_group(&q, true, 1 << 20);
        assert_eq!(g.len(), 1);
    }
}
