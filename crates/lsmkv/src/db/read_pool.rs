//! Shared read pool backing `multiget`.
//!
//! RocksDB's `MultiGet` overlaps the IO of independent key lookups; this
//! pool reproduces that: `multiget` shards its keys across a small set of
//! long-lived threads so block reads proceed in parallel on the simulated
//! device's channels. This is the intra-instance read parallelism OBM
//! exploits in Fig 14.

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;

/// A fixed-size pool executing submitted closures.
pub struct ReadPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ReadPool {
    /// Spawns `threads` workers.
    pub fn new(threads: usize) -> ReadPool {
        let (tx, rx) = unbounded::<Job>();
        let handles = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("lsmkv-read-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn read pool thread")
            })
            .collect();
        ReadPool {
            sender: Some(tx),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `jobs` on the pool and waits for all of them.
    pub fn run_all(&self, jobs: Vec<Job>) {
        let wg = crossbeam::sync::WaitGroup::new();
        let sender = self.sender.as_ref().expect("pool alive");
        for job in jobs {
            let wg = wg.clone();
            sender
                .send(Box::new(move || {
                    job();
                    drop(wg);
                }))
                .expect("pool receiver alive");
        }
        wg.wait();
    }
}

impl Drop for ReadPool {
    fn drop(&mut self) {
        self.sender.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_jobs() {
        let pool = ReadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..100)
            .map(|_| {
                let c = counter.clone();
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.run_all(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn overlapping_waits_are_independent() {
        let pool = Arc::new(ReadPool::new(2));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let counter = Arc::new(AtomicUsize::new(0));
                    let jobs: Vec<Job> = (0..10)
                        .map(|_| {
                            let c = counter.clone();
                            Box::new(move || {
                                c.fetch_add(1, Ordering::Relaxed);
                            }) as Job
                        })
                        .collect();
                    pool.run_all(jobs);
                    assert_eq!(counter.load(Ordering::Relaxed), 10);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ReadPool::new(2);
        pool.run_all(vec![Box::new(|| {})]);
        drop(pool);
    }
}
