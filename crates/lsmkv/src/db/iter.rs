//! User-facing database iterator.
//!
//! Wraps a [`MergingIterator`] over the memtables and every on-disk level,
//! applying snapshot visibility, per-key deduplication (newest visible
//! version wins) and tombstone filtering. Forward-only, matching the
//! paper's RANGE/SCAN semantics.

use crate::iterator::{InternalIterator, MergingIterator};
use crate::types::{make_internal_key, seq_and_type, user_key, SequenceNumber, ValueType,
    VALUE_TYPE_FOR_SEEK};

/// Iterator over live user keys and values.
pub struct DbIterator {
    inner: MergingIterator,
    seq: SequenceNumber,
    key_buf: Vec<u8>,
    val_buf: Vec<u8>,
    valid: bool,
    /// Keeps the version (and thus its table files) alive against GC for
    /// the iterator's lifetime.
    _pin: Option<std::sync::Arc<crate::version::Version>>,
}

impl DbIterator {
    /// Builds an iterator at sequence `seq` over merged `children`.
    pub(crate) fn new(children: Vec<Box<dyn InternalIterator>>, seq: SequenceNumber) -> DbIterator {
        DbIterator {
            inner: MergingIterator::new(children),
            seq,
            key_buf: Vec::new(),
            val_buf: Vec::new(),
            valid: false,
            _pin: None,
        }
    }

    /// Like [`DbIterator::new`], additionally pinning `version` so its
    /// files cannot be garbage-collected while the iterator lives.
    pub(crate) fn new_pinned(
        children: Vec<Box<dyn InternalIterator>>,
        seq: SequenceNumber,
        version: std::sync::Arc<crate::version::Version>,
    ) -> DbIterator {
        DbIterator {
            _pin: Some(version),
            ..Self::new(children, seq)
        }
    }

    /// Whether the iterator points at a live entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// First read error any child iterator ran into. A child that errors
    /// goes invalid, which otherwise just looks like its data ended:
    /// callers draining the iterator must check this afterwards or a
    /// transient read error silently truncates their results.
    pub fn status(&self) -> crate::error::Result<()> {
        self.inner.status()
    }

    /// Positions at the first live user key.
    pub fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
        self.advance_to_visible(None);
    }

    /// Positions at the first live user key `>= key`.
    pub fn seek(&mut self, key: &[u8]) {
        self.inner
            .seek(&make_internal_key(key, self.seq, VALUE_TYPE_FOR_SEEK));
        self.advance_to_visible(None);
    }

    /// Advances to the next live user key.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is not valid.
    pub fn next(&mut self) {
        assert!(self.valid, "next() on invalid DbIterator");
        let current = std::mem::take(&mut self.key_buf);
        self.inner.next();
        self.advance_to_visible(Some(current));
    }

    /// Current user key. Requires `valid()`.
    pub fn key(&self) -> &[u8] {
        assert!(self.valid);
        &self.key_buf
    }

    /// Current value. Requires `valid()`.
    pub fn value(&self) -> &[u8] {
        assert!(self.valid);
        &self.val_buf
    }

    /// Skips hidden sequence numbers, shadowed versions and tombstones
    /// until a live entry (or the end) is reached. `skipping` suppresses
    /// all remaining versions of one user key.
    fn advance_to_visible(&mut self, mut skipping: Option<Vec<u8>>) {
        self.valid = false;
        while self.inner.valid() {
            let ikey = self.inner.key();
            let (seq, kind) = seq_and_type(ikey);
            if seq <= self.seq {
                let ukey = user_key(ikey);
                let skip = skipping.as_deref() == Some(ukey);
                if !skip {
                    match kind {
                        ValueType::Deletion => skipping = Some(ukey.to_vec()),
                        ValueType::Value => {
                            self.key_buf.clear();
                            self.key_buf.extend_from_slice(ukey);
                            self.val_buf.clear();
                            self.val_buf.extend_from_slice(self.inner.value());
                            self.valid = true;
                            return;
                        }
                    }
                }
            }
            self.inner.next();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::VecIterator;

    fn entry(k: &str, seq: u64, kind: ValueType, v: &str) -> (Vec<u8>, Vec<u8>) {
        (
            make_internal_key(k.as_bytes(), seq, kind),
            v.as_bytes().to_vec(),
        )
    }

    fn iter_over(entries: Vec<(Vec<u8>, Vec<u8>)>, seq: u64) -> DbIterator {
        DbIterator::new(vec![Box::new(VecIterator::new(entries))], seq)
    }

    fn collect(it: &mut DbIterator) -> Vec<(String, String)> {
        let mut out = Vec::new();
        while it.valid() {
            out.push((
                String::from_utf8(it.key().to_vec()).unwrap(),
                String::from_utf8(it.value().to_vec()).unwrap(),
            ));
            it.next();
        }
        out
    }

    #[test]
    fn newest_visible_version_wins() {
        let mut it = iter_over(
            vec![
                entry("a", 3, ValueType::Value, "new"),
                entry("a", 1, ValueType::Value, "old"),
                entry("b", 2, ValueType::Value, "b2"),
            ],
            10,
        );
        it.seek_to_first();
        assert_eq!(
            collect(&mut it),
            vec![("a".into(), "new".into()), ("b".into(), "b2".into())]
        );
    }

    #[test]
    fn snapshot_hides_future_writes() {
        let mut it = iter_over(
            vec![
                entry("a", 9, ValueType::Value, "future"),
                entry("a", 2, ValueType::Value, "past"),
            ],
            5,
        );
        it.seek_to_first();
        assert_eq!(collect(&mut it), vec![("a".into(), "past".into())]);
    }

    #[test]
    fn tombstone_hides_older_versions() {
        let mut it = iter_over(
            vec![
                entry("a", 5, ValueType::Deletion, ""),
                entry("a", 2, ValueType::Value, "dead"),
                entry("b", 1, ValueType::Value, "live"),
            ],
            10,
        );
        it.seek_to_first();
        assert_eq!(collect(&mut it), vec![("b".into(), "live".into())]);
    }

    #[test]
    fn tombstone_invisible_at_earlier_snapshot() {
        let mut it = iter_over(
            vec![
                entry("a", 5, ValueType::Deletion, ""),
                entry("a", 2, ValueType::Value, "alive-at-2"),
            ],
            2,
        );
        it.seek_to_first();
        assert_eq!(collect(&mut it), vec![("a".into(), "alive-at-2".into())]);
    }

    #[test]
    fn seek_skips_dead_prefix() {
        let mut it = iter_over(
            vec![
                entry("a", 5, ValueType::Deletion, ""),
                entry("a", 2, ValueType::Value, "x"),
                entry("c", 3, ValueType::Value, "c3"),
            ],
            10,
        );
        it.seek(b"a");
        assert!(it.valid());
        assert_eq!(it.key(), b"c");
        it.seek(b"d");
        assert!(!it.valid());
    }

    #[test]
    fn empty_iterator() {
        let mut it = iter_over(vec![], 10);
        it.seek_to_first();
        assert!(!it.valid());
        it.seek(b"k");
        assert!(!it.valid());
    }

    #[test]
    fn merges_across_children() {
        let c1 = VecIterator::new(vec![
            entry("a", 8, ValueType::Value, "mem"),
            entry("c", 8, ValueType::Value, "mem-c"),
        ]);
        let c2 = VecIterator::new(vec![
            entry("a", 2, ValueType::Value, "disk"),
            entry("b", 2, ValueType::Value, "disk-b"),
        ]);
        let mut it = DbIterator::new(vec![Box::new(c1), Box::new(c2)], 10);
        it.seek_to_first();
        assert_eq!(
            collect(&mut it),
            vec![
                ("a".into(), "mem".into()),
                ("b".into(), "disk-b".into()),
                ("c".into(), "mem-c".into())
            ]
        );
    }
}
