//! Engine statistics, including the write-path latency breakdown.
//!
//! The paper's root-cause analysis (Fig 6) splits user-thread write latency
//! into **WAL**, **MemTable**, **WAL lock**, **MemTable lock**, and
//! **Others**. The write queue records exactly those components per request
//! into [`WriteBreakdown`]; the `repro fig6` harness prints the resulting
//! percentages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sum-and-count accumulator (nanoseconds).
#[derive(Default)]
pub struct LatencyAccumulator {
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl LatencyAccumulator {
    /// Records one observation.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / c as f64
        }
    }
}

/// Per-write breakdown of where a user thread's time went.
#[derive(Default)]
pub struct WriteBreakdown {
    /// Executing write-ahead logging (encode + append + flush).
    pub wal: LatencyAccumulator,
    /// Inserting into the MemTable (skiplist update).
    pub memtable: LatencyAccumulator,
    /// Waiting for the group-logging leader (lock acquisition + wakeup).
    pub wal_lock: LatencyAccumulator,
    /// Synchronizing with the group during MemTable insertion.
    pub memtable_lock: LatencyAccumulator,
    /// Everything else (allocation, queueing, stalls).
    pub other: LatencyAccumulator,
}

/// A snapshot of the five breakdown components, averaged per write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownSnapshot {
    pub wal_us: f64,
    pub memtable_us: f64,
    pub wal_lock_us: f64,
    pub memtable_lock_us: f64,
    pub other_us: f64,
}

impl BreakdownSnapshot {
    /// Total average write latency in microseconds.
    pub fn total_us(&self) -> f64 {
        self.wal_us + self.memtable_us + self.wal_lock_us + self.memtable_lock_us + self.other_us
    }

    /// Percentage of the total spent in each component, in declaration
    /// order (WAL, MemTable, WAL lock, MemTable lock, Others).
    pub fn percentages(&self) -> [f64; 5] {
        let t = self.total_us();
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.wal_us / t * 100.0,
            self.memtable_us / t * 100.0,
            self.wal_lock_us / t * 100.0,
            self.memtable_lock_us / t * 100.0,
            self.other_us / t * 100.0,
        ]
    }
}

impl WriteBreakdown {
    /// Averages per component, in microseconds.
    pub fn snapshot(&self) -> BreakdownSnapshot {
        BreakdownSnapshot {
            wal_us: self.wal.mean_ns() / 1e3,
            memtable_us: self.memtable.mean_ns() / 1e3,
            wal_lock_us: self.wal_lock.mean_ns() / 1e3,
            memtable_lock_us: self.memtable_lock.mean_ns() / 1e3,
            other_us: self.other.mean_ns() / 1e3,
        }
    }
}

/// Cumulative counters for one database instance.
#[derive(Default)]
pub struct DbStats {
    /// Write-path latency breakdown.
    pub breakdown: WriteBreakdown,
    /// Completed write requests (user-visible, not groups).
    pub writes: AtomicU64,
    /// Write groups committed (leaders).
    pub write_groups: AtomicU64,
    /// Keys written.
    pub keys_written: AtomicU64,
    /// User bytes written (key+value payload).
    pub user_bytes_written: AtomicU64,
    /// Point lookups served.
    pub gets: AtomicU64,
    /// Multiget batches served.
    pub multigets: AtomicU64,
    /// Gets answered from a MemTable.
    pub memtable_hits: AtomicU64,
    /// SST probes skipped thanks to bloom filters.
    pub bloom_skips: AtomicU64,
    /// MemTable flushes (minor compactions).
    pub flushes: AtomicU64,
    /// Major compactions run.
    pub compactions: AtomicU64,
    /// Bytes read by compactions.
    pub compaction_bytes_read: AtomicU64,
    /// Bytes written by compactions (incl. flushes).
    pub compaction_bytes_written: AtomicU64,
    /// Nanoseconds writers spent stalled on L0/imm backpressure.
    pub stall_ns: AtomicU64,
    /// CPU time consumed by background flush/compaction jobs.
    pub bg_busy: LatencyAccumulator,
    /// Read-path time (memtable probe + SST lookups) per `get`/`multiget`
    /// call. The cumulative sum is the read-phase clock p2KVS samples
    /// around an engine call to attribute trace time to the read path.
    pub read_path: LatencyAccumulator,
}

impl DbStats {
    /// Creates zeroed stats.
    pub fn new() -> DbStats {
        DbStats::default()
    }

    /// Every counter and breakdown component as `(name, value)` pairs
    /// with `engine_`-prefixed Prometheus-style names — the shape the
    /// p2KVS observability registry samples per instance. Breakdown
    /// components are per-write averages in microseconds (the Fig 6
    /// split); `*_total` entries are cumulative counts.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let b = self.breakdown.snapshot();
        let c = |counter: &AtomicU64| counter.load(Ordering::Relaxed) as f64;
        vec![
            ("engine_wal_us".to_string(), b.wal_us),
            ("engine_memtable_us".to_string(), b.memtable_us),
            ("engine_wal_lock_us".to_string(), b.wal_lock_us),
            ("engine_memtable_lock_us".to_string(), b.memtable_lock_us),
            ("engine_other_us".to_string(), b.other_us),
            ("engine_write_us".to_string(), b.total_us()),
            ("engine_writes_total".to_string(), c(&self.writes)),
            ("engine_write_groups_total".to_string(), c(&self.write_groups)),
            ("engine_keys_written_total".to_string(), c(&self.keys_written)),
            (
                "engine_user_bytes_written_total".to_string(),
                c(&self.user_bytes_written),
            ),
            ("engine_gets_total".to_string(), c(&self.gets)),
            ("engine_multigets_total".to_string(), c(&self.multigets)),
            ("engine_memtable_hits_total".to_string(), c(&self.memtable_hits)),
            ("engine_bloom_skips_total".to_string(), c(&self.bloom_skips)),
            ("engine_flushes_total".to_string(), c(&self.flushes)),
            ("engine_compactions_total".to_string(), c(&self.compactions)),
            (
                "engine_compaction_bytes_read_total".to_string(),
                c(&self.compaction_bytes_read),
            ),
            (
                "engine_compaction_bytes_written_total".to_string(),
                c(&self.compaction_bytes_written),
            ),
            ("engine_stall_ns_total".to_string(), c(&self.stall_ns)),
            (
                "engine_bg_busy_ns_total".to_string(),
                self.bg_busy.sum_ns() as f64,
            ),
            (
                "engine_read_ns_total".to_string(),
                self.read_path.sum_ns() as f64,
            ),
        ]
    }

    /// Adds `d` to the stall-time counter.
    pub fn add_stall(&self, d: Duration) {
        self.stall_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Convenience relaxed add.
    #[inline]
    pub fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_math() {
        let a = LatencyAccumulator::default();
        assert_eq!(a.mean_ns(), 0.0);
        a.record(100);
        a.record(300);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum_ns(), 400);
        assert_eq!(a.mean_ns(), 200.0);
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let b = WriteBreakdown::default();
        b.wal.record(2_100);
        b.memtable.record(2_900);
        b.wal_lock.record(1_000);
        b.memtable_lock.record(500);
        b.other.record(3_500);
        let snap = b.snapshot();
        let total: f64 = snap.percentages().iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((snap.total_us() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = WriteBreakdown::default();
        assert_eq!(b.snapshot().percentages(), [0.0; 5]);
    }

    #[test]
    fn metrics_expose_breakdown_and_counters() {
        let s = DbStats::new();
        s.breakdown.wal.record(2_000);
        s.breakdown.memtable.record(1_000);
        DbStats::bump(&s.writes, 3);
        DbStats::bump(&s.flushes, 1);
        let metrics = s.metrics();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
                .1
        };
        assert!((get("engine_wal_us") - 2.0).abs() < 1e-9);
        assert!((get("engine_memtable_us") - 1.0).abs() < 1e-9);
        assert_eq!(get("engine_writes_total"), 3.0);
        assert_eq!(get("engine_flushes_total"), 1.0);
        assert!(
            metrics.iter().all(|(n, _)| n.starts_with("engine_")),
            "all engine metrics share the engine_ prefix"
        );
    }

    #[test]
    fn stall_accumulates() {
        let s = DbStats::new();
        s.add_stall(Duration::from_micros(5));
        s.add_stall(Duration::from_micros(7));
        assert_eq!(s.stall_ns.load(Ordering::Relaxed), 12_000);
    }
}
