//! Internal iterator trait and the merging iterator.
//!
//! Internal iterators walk *internal* entries — `(user_key, seq, type)`
//! keys with raw values — in internal-key order. User-visible iteration
//! (deduplication, tombstone filtering, snapshot visibility) is layered on
//! top in `db::DbIterator`. Iteration is forward-only throughout the
//! engine: the paper's RANGE/SCAN operations are forward scans.

use crate::error::Result;
use crate::types::internal_cmp;

/// A forward-only cursor over internal entries.
pub trait InternalIterator: Send {
    /// Whether the cursor points at an entry.
    fn valid(&self) -> bool;

    /// First error the iterator ran into, if any. An iterator that hits a
    /// read error simply becomes invalid — indistinguishable from a clean
    /// end of stream — so any consumer that drains an iterator to make a
    /// durable decision (compaction rewrites, scans) MUST check `status`
    /// after its loop, or a transient read error silently truncates data.
    fn status(&self) -> Result<()> {
        Ok(())
    }

    /// Positions at the first entry.
    fn seek_to_first(&mut self);

    /// Positions at the first entry with internal key `>= target`.
    fn seek(&mut self, target: &[u8]);

    /// Advances to the next entry. Requires `valid()`.
    fn next(&mut self);

    /// Current internal key. Requires `valid()`.
    fn key(&self) -> &[u8];

    /// Current value. Requires `valid()`.
    fn value(&self) -> &[u8];
}

/// An iterator over zero entries.
pub struct EmptyIterator;

impl InternalIterator for EmptyIterator {
    fn valid(&self) -> bool {
        false
    }
    fn seek_to_first(&mut self) {}
    fn seek(&mut self, _target: &[u8]) {}
    fn next(&mut self) {
        panic!("next() on empty iterator");
    }
    fn key(&self) -> &[u8] {
        panic!("key() on empty iterator");
    }
    fn value(&self) -> &[u8] {
        panic!("value() on empty iterator");
    }
}

/// Merges multiple sorted children into one sorted stream.
///
/// Children yielding equal internal keys (impossible inside one engine, but
/// tolerated) are emitted in child order. A linear min-scan is used — the
/// fan-in is small (a handful of memtables and levels), matching LevelDB's
/// own choice.
pub struct MergingIterator {
    children: Vec<Box<dyn InternalIterator>>,
    current: Option<usize>,
}

impl MergingIterator {
    /// Builds a merging iterator over `children`.
    pub fn new(children: Vec<Box<dyn InternalIterator>>) -> MergingIterator {
        MergingIterator {
            children,
            current: None,
        }
    }

    fn find_smallest(&mut self) {
        let mut smallest: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            smallest = match smallest {
                None => Some(i),
                Some(s) => {
                    if internal_cmp(child.key(), self.children[s].key()) == std::cmp::Ordering::Less
                    {
                        Some(i)
                    } else {
                        Some(s)
                    }
                }
            };
        }
        self.current = smallest;
    }
}

impl InternalIterator for MergingIterator {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn status(&self) -> Result<()> {
        for child in &self.children {
            child.status()?;
        }
        Ok(())
    }

    fn seek_to_first(&mut self) {
        for child in &mut self.children {
            child.seek_to_first();
        }
        self.find_smallest();
    }

    fn seek(&mut self, target: &[u8]) {
        for child in &mut self.children {
            child.seek(target);
        }
        self.find_smallest();
    }

    fn next(&mut self) {
        let cur = self.current.expect("next() on invalid merging iterator");
        self.children[cur].next();
        self.find_smallest();
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.expect("key() on invalid iterator")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("value() on invalid iterator")].value()
    }
}

/// A sorted in-memory iterator used by tests and small metadata scans.
pub struct VecIterator {
    /// `(internal_key, value)` pairs sorted by internal key.
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
}

impl VecIterator {
    /// Builds an iterator; `entries` are sorted internally.
    pub fn new(mut entries: Vec<(Vec<u8>, Vec<u8>)>) -> VecIterator {
        entries.sort_by(|a, b| internal_cmp(&a.0, &b.0));
        VecIterator {
            entries,
            pos: usize::MAX,
        }
    }
}

impl InternalIterator for VecIterator {
    fn valid(&self) -> bool {
        self.pos < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.pos = 0;
    }

    fn seek(&mut self, target: &[u8]) {
        self.pos = self
            .entries
            .partition_point(|(k, _)| internal_cmp(k, target) == std::cmp::Ordering::Less);
    }

    fn next(&mut self) {
        assert!(self.valid());
        self.pos += 1;
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, user_key, ValueType};

    fn ik(k: &[u8], seq: u64) -> Vec<u8> {
        make_internal_key(k, seq, ValueType::Value)
    }

    fn drain(it: &mut dyn InternalIterator) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while it.valid() {
            out.push(user_key(it.key()).to_vec());
            it.next();
        }
        out
    }

    #[test]
    fn empty_children() {
        let mut m = MergingIterator::new(vec![Box::new(EmptyIterator), Box::new(EmptyIterator)]);
        m.seek_to_first();
        assert!(!m.valid());
        m.seek(&ik(b"a", 1));
        assert!(!m.valid());
    }

    #[test]
    fn merge_interleaves_sorted_streams() {
        let a = VecIterator::new(vec![(ik(b"a", 1), b"1".to_vec()), (ik(b"c", 1), b"3".to_vec())]);
        let b = VecIterator::new(vec![(ik(b"b", 1), b"2".to_vec()), (ik(b"d", 1), b"4".to_vec())]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek_to_first();
        assert_eq!(
            drain(&mut m),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
    }

    #[test]
    fn merge_respects_seq_ordering_within_key() {
        // Same user key in two children: newer (higher seq) must win order.
        let a = VecIterator::new(vec![(ik(b"k", 5), b"old".to_vec())]);
        let b = VecIterator::new(vec![(ik(b"k", 9), b"new".to_vec())]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek_to_first();
        assert!(m.valid());
        assert_eq!(m.value(), b"new");
        m.next();
        assert_eq!(m.value(), b"old");
        m.next();
        assert!(!m.valid());
    }

    #[test]
    fn merge_seek_lands_on_lower_bound() {
        let a = VecIterator::new(vec![(ik(b"apple", 1), vec![]), (ik(b"melon", 1), vec![])]);
        let b = VecIterator::new(vec![(ik(b"banana", 1), vec![])]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek(&make_internal_key(b"b", u64::MAX >> 8, ValueType::Value));
        assert!(m.valid());
        assert_eq!(user_key(m.key()), b"banana");
        assert_eq!(drain(&mut m), vec![b"banana".to_vec(), b"melon".to_vec()]);
    }

    #[test]
    fn vec_iterator_sorts_input() {
        let mut v = VecIterator::new(vec![
            (ik(b"z", 1), vec![]),
            (ik(b"a", 1), vec![]),
            (ik(b"m", 1), vec![]),
        ]);
        v.seek_to_first();
        assert_eq!(drain(&mut v), vec![b"a".to_vec(), b"m".to_vec(), b"z".to_vec()]);
    }
}
