//! Error type shared across the engine.

use std::fmt;
use std::io;

/// Errors returned by the engine.
#[derive(Debug)]
pub enum Error {
    /// An IO error from the underlying `Env`.
    Io(io::Error),
    /// On-disk data failed validation (bad checksum, truncated structure).
    Corruption(String),
    /// The database is in a state that forbids the operation.
    InvalidState(String),
    /// The database is shutting down.
    ShuttingDown,
}

/// Result alias used across the engine.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::ShuttingDown => write!(f, "database is shutting down"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Shorthand for a corruption error.
    pub fn corruption(msg: impl Into<String>) -> Error {
        Error::Corruption(msg.into())
    }

    /// A value-preserving copy. `io::Error` is not `Clone`, so the IO
    /// variant keeps the kind and message but drops the source chain —
    /// enough for iterators that must hold an error and report it again
    /// from `status()`.
    pub fn clone_shallow(&self) -> Error {
        match self {
            Error::Io(e) => Error::Io(io::Error::new(e.kind(), e.to_string())),
            Error::Corruption(m) => Error::Corruption(m.clone()),
            Error::InvalidState(m) => Error::InvalidState(m.clone()),
            Error::ShuttingDown => Error::ShuttingDown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::corruption("bad block");
        assert_eq!(e.to_string(), "corruption: bad block");
        let e: Error = io::Error::new(io::ErrorKind::Other, "disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error as _;
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(e.source().is_some());
        assert!(Error::ShuttingDown.source().is_none());
    }
}
