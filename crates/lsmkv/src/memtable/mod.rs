//! The in-memory write buffer.
//!
//! A [`MemTable`] wraps the concurrent skiplist with the engine's entry
//! encoding, point lookups honoring snapshot sequence numbers, and an
//! iterator adapter used by flushes and merged reads.

pub mod arena;
pub mod skiplist;

use std::sync::Arc;

use p2kvs_util::coding::put_varint32;

use crate::iterator::InternalIterator;
use crate::types::{
    internal_cmp, make_internal_key, seq_and_type, user_key, SequenceNumber, ValueType,
    VALUE_TYPE_FOR_SEEK,
};
use arena::Arena;
use skiplist::{entry_internal_key, entry_value, SkipIter, SkipList};

/// Outcome of a MemTable point lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum MemGet {
    /// The key is live with this value.
    Found(Vec<u8>),
    /// The key was deleted at or before the snapshot.
    Deleted,
    /// The MemTable has no visible entry for the key.
    NotFound,
}

/// An in-memory, sorted write buffer.
pub struct MemTable {
    list: SkipList,
    arena: Arc<Arena>,
}

impl Default for MemTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTable {
    /// Creates an empty MemTable.
    pub fn new() -> MemTable {
        let arena = Arc::new(Arena::new());
        MemTable {
            list: SkipList::new(arena.clone()),
            arena,
        }
    }

    /// Inserts `(user_key, seq, kind, value)`.
    ///
    /// Safe to call from multiple threads concurrently (the paper's
    /// "concurrent MemTable"); the caller serializes when emulating the
    /// vanilla single-writer MemTable.
    pub fn add(&self, seq: SequenceNumber, kind: ValueType, key: &[u8], value: &[u8]) {
        let mut entry = Vec::with_capacity(key.len() + value.len() + 16);
        put_varint32(&mut entry, (key.len() + 8) as u32);
        crate::types::append_internal_key(&mut entry, key, seq, kind);
        put_varint32(&mut entry, value.len() as u32);
        entry.extend_from_slice(value);
        self.list.insert(&entry);
    }

    /// Looks up `key` as of sequence `snapshot`.
    pub fn get(&self, key: &[u8], snapshot: SequenceNumber) -> MemGet {
        let lookup = make_internal_key(key, snapshot, VALUE_TYPE_FOR_SEEK);
        match self.list.seek(&lookup) {
            None => MemGet::NotFound,
            Some(entry) => {
                let ikey = entry_internal_key(entry);
                if user_key(ikey) != key {
                    return MemGet::NotFound;
                }
                match seq_and_type(ikey).1 {
                    ValueType::Value => MemGet::Found(entry_value(entry).to_vec()),
                    ValueType::Deletion => MemGet::Deleted,
                }
            }
        }
    }

    /// Approximate bytes of memory held.
    pub fn approximate_memory_usage(&self) -> usize {
        self.arena.allocated_bytes()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// An iterator over internal entries (used by flush and merged reads).
    pub fn iter(self: &Arc<Self>) -> MemTableIterator {
        // SAFETY-adjacent note: the iterator clones the Arc so skiplist
        // nodes outlive it.
        MemTableIterator {
            _mem: self.clone(),
            iter: {
                // SAFETY: we extend the borrow of `list` to 'static inside
                // the iterator; the `_mem` Arc guarantees the list (and its
                // arena) outlive `iter`, and `SkipIter` never exposes
                // references beyond its own lifetime parameter.
                let list: &'static SkipList = unsafe { std::mem::transmute(&self.list) };
                list.iter()
            },
            init: false,
        }
    }
}

/// Owning iterator over a MemTable's internal entries.
pub struct MemTableIterator {
    _mem: Arc<MemTable>,
    iter: SkipIter<'static>,
    init: bool,
}

impl InternalIterator for MemTableIterator {
    fn valid(&self) -> bool {
        self.init && self.iter.valid()
    }

    fn seek_to_first(&mut self) {
        self.iter.seek_to_first();
        self.init = true;
    }

    fn seek(&mut self, target: &[u8]) {
        self.iter.seek(target);
        self.init = true;
    }

    fn next(&mut self) {
        self.iter.next();
    }

    fn key(&self) -> &[u8] {
        entry_internal_key(self.iter.entry())
    }

    fn value(&self) -> &[u8] {
        entry_value(self.iter.entry())
    }
}

/// Compares a MemTable iterator key to a raw internal key (test helper).
pub fn cmp_keys(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    internal_cmp(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_latest_visible() {
        let m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(2, ValueType::Value, b"k", b"v2");
        assert_eq!(m.get(b"k", 10), MemGet::Found(b"v2".to_vec()));
        // Snapshot at seq 1 sees the old value.
        assert_eq!(m.get(b"k", 1), MemGet::Found(b"v1".to_vec()));
        assert_eq!(m.get(b"nope", 10), MemGet::NotFound);
    }

    #[test]
    fn deletion_shadows_value() {
        let m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"v");
        m.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(b"k", 10), MemGet::Deleted);
        assert_eq!(m.get(b"k", 1), MemGet::Found(b"v".to_vec()));
    }

    #[test]
    fn snapshot_before_any_write_sees_nothing() {
        let m = MemTable::new();
        m.add(5, ValueType::Value, b"k", b"v");
        assert_eq!(m.get(b"k", 4), MemGet::NotFound);
    }

    #[test]
    fn iterator_yields_sorted_internal_entries() {
        let m = Arc::new(MemTable::new());
        m.add(3, ValueType::Value, b"b", b"2");
        m.add(1, ValueType::Value, b"a", b"1");
        m.add(2, ValueType::Deletion, b"c", b"");
        let mut it = m.iter();
        assert!(!it.valid());
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            seen.push((user_key(it.key()).to_vec(), it.value().to_vec()));
            it.next();
        }
        assert_eq!(
            seen,
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec()),
                (b"c".to_vec(), b"".to_vec()),
            ]
        );
    }

    #[test]
    fn iterator_seek() {
        let m = Arc::new(MemTable::new());
        for (i, k) in [b"aa", b"bb", b"cc", b"dd"].iter().enumerate() {
            m.add(i as u64 + 1, ValueType::Value, *k, b"v");
        }
        let mut it = m.iter();
        it.seek(&make_internal_key(b"bb", u64::MAX >> 8, VALUE_TYPE_FOR_SEEK));
        assert!(it.valid());
        assert_eq!(user_key(it.key()), b"bb");
        it.seek(&make_internal_key(b"zz", u64::MAX >> 8, VALUE_TYPE_FOR_SEEK));
        assert!(!it.valid());
    }

    #[test]
    fn iterator_outlives_external_arc() {
        let m = Arc::new(MemTable::new());
        m.add(1, ValueType::Value, b"x", b"y");
        let mut it = m.iter();
        drop(m);
        it.seek_to_first();
        assert!(it.valid());
        assert_eq!(it.value(), b"y");
    }

    #[test]
    fn memory_usage_grows() {
        let m = MemTable::new();
        let before = m.approximate_memory_usage();
        for i in 0..100u64 {
            m.add(i + 1, ValueType::Value, format!("key{i}").as_bytes(), &[0u8; 100]);
        }
        assert!(m.approximate_memory_usage() > before);
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn concurrent_adds_are_all_visible() {
        let m = Arc::new(MemTable::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let seq = t * 1000 + i + 1;
                        m.add(seq, ValueType::Value, format!("t{t}-{i:05}").as_bytes(), b"v");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 4000);
        for t in 0..4u64 {
            for i in (0..1000u64).step_by(97) {
                assert_eq!(
                    m.get(format!("t{t}-{i:05}").as_bytes(), u64::MAX >> 8),
                    MemGet::Found(b"v".to_vec())
                );
            }
        }
    }
}
