//! Bump arena backing MemTable skiplist nodes.
//!
//! Allocations are never freed individually; everything is released when
//! the arena (and therefore the MemTable) is dropped. Chunks are pinned
//! boxed slices, so returned pointers stay valid for the arena's lifetime
//! even while other threads allocate concurrently.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Default chunk size; large allocations get their own chunk.
const CHUNK_SIZE: usize = 256 * 1024;

struct ArenaCore {
    /// Owned chunks; never shrunk or reallocated.
    chunks: Vec<Box<[u8]>>,
    /// Bump offset within the last chunk.
    offset: usize,
}

/// A thread-safe bump allocator.
pub struct Arena {
    core: Mutex<ArenaCore>,
    allocated: AtomicUsize,
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: all mutation happens under the internal mutex; handed-out
// pointers reference chunk memory that is never moved or freed until drop.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Arena {
        Arena {
            core: Mutex::new(ArenaCore {
                chunks: Vec::new(),
                offset: 0,
            }),
            allocated: AtomicUsize::new(0),
        }
    }

    /// Allocates `size` zeroed bytes aligned to `align` (a power of two).
    ///
    /// The returned pointer is valid and stable until the arena is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `size` is zero.
    pub fn alloc(&self, size: usize, align: usize) -> NonNull<u8> {
        assert!(align.is_power_of_two(), "align must be a power of two");
        assert!(size > 0, "zero-size arena allocation");
        let mut core = self.core.lock();
        let need_new_chunk = match core.chunks.last() {
            None => true,
            Some(chunk) => {
                let base = chunk.as_ptr() as usize;
                let aligned = (base + core.offset + align - 1) & !(align - 1);
                aligned + size > base + chunk.len()
            }
        };
        if need_new_chunk {
            let chunk_len = CHUNK_SIZE.max(size + align);
            core.chunks.push(vec![0u8; chunk_len].into_boxed_slice());
            core.offset = 0;
        }
        let offset = core.offset;
        let chunk = core.chunks.last_mut().expect("chunk just ensured");
        let base = chunk.as_ptr() as usize;
        let aligned = (base + offset + align - 1) & !(align - 1);
        let start = aligned - base;
        let ptr = chunk.as_mut_ptr();
        core.offset = start + size;
        self.allocated.fetch_add(size, Ordering::Relaxed);
        // SAFETY: `start + size <= chunk.len()` by the checks above, and the
        // chunk memory is owned by the arena and never moved.
        unsafe { NonNull::new_unchecked(ptr.add(start)) }
    }

    /// Copies `data` into the arena, returning a stable pointer to it.
    pub fn alloc_bytes(&self, data: &[u8]) -> NonNull<u8> {
        let ptr = self.alloc(data.len().max(1), 1);
        // SAFETY: `ptr` points at `data.len().max(1)` freshly allocated
        // bytes that no other thread references yet.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), ptr.as_ptr(), data.len());
        }
        ptr
    }

    /// Total bytes handed out (approximate memory usage of the owner).
    pub fn allocated_bytes(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_stable_and_disjoint() {
        let arena = Arena::new();
        let mut ptrs = Vec::new();
        for i in 0..1000usize {
            let p = arena.alloc(16, 8);
            // SAFETY: freshly allocated 16-byte region, exclusively ours.
            unsafe {
                std::ptr::write(p.as_ptr() as *mut u64, i as u64);
            }
            ptrs.push(p);
        }
        for (i, p) in ptrs.iter().enumerate() {
            // SAFETY: pointers remain valid until the arena drops.
            let v = unsafe { std::ptr::read(p.as_ptr() as *const u64) };
            assert_eq!(v, i as u64);
        }
        assert!(arena.allocated_bytes() >= 16_000);
    }

    #[test]
    fn alignment_is_respected() {
        let arena = Arena::new();
        for align in [1usize, 2, 4, 8, 16, 64] {
            for size in [1usize, 3, 17, 1000] {
                let p = arena.alloc(size, align);
                assert_eq!(p.as_ptr() as usize % align, 0);
            }
        }
    }

    #[test]
    fn large_allocation_gets_own_chunk() {
        let arena = Arena::new();
        let p = arena.alloc(CHUNK_SIZE * 2, 8);
        // SAFETY: region is CHUNK_SIZE*2 bytes, write the last byte.
        unsafe {
            *p.as_ptr().add(CHUNK_SIZE * 2 - 1) = 0xab;
        }
    }

    #[test]
    fn alloc_bytes_copies() {
        let arena = Arena::new();
        let p = arena.alloc_bytes(b"payload");
        // SAFETY: 7 bytes were just copied to `p`.
        let got = unsafe { std::slice::from_raw_parts(p.as_ptr(), 7) };
        assert_eq!(got, b"payload");
        // Empty slices must not panic.
        let _ = arena.alloc_bytes(b"");
    }

    #[test]
    fn concurrent_allocation_is_safe() {
        let arena = std::sync::Arc::new(Arena::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let arena = arena.clone();
                std::thread::spawn(move || {
                    let mut ptrs = Vec::new();
                    for i in 0..500usize {
                        let p = arena.alloc(24, 8);
                        // SAFETY: exclusive fresh region.
                        unsafe {
                            std::ptr::write(p.as_ptr() as *mut u64, (t * 1000 + i) as u64);
                        }
                        ptrs.push((p, (t * 1000 + i) as u64));
                    }
                    for (p, expect) in ptrs {
                        // SAFETY: stable pointer, written above by this thread.
                        let v = unsafe { std::ptr::read(p.as_ptr() as *const u64) };
                        assert_eq!(v, expect);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
