//! Concurrent, insert-only skiplist (RocksDB `InlineSkipList` style).
//!
//! Nodes live in an [`Arena`]; they are never unlinked or freed, which is
//! what makes lock-free reads sound: any pointer a reader observes stays
//! valid until the whole MemTable is dropped. Inserts link nodes level by
//! level with CAS, retrying a level on contention. This is the data
//! structure whose shared-case synchronization cost the paper measures as
//! the "MemTable lock" component (Fig 6) — with `p2kvs` giving each worker
//! its own skiplist, that cost disappears.
//!
//! Keys are *entries*: `varint32 klen | internal_key | varint32 vlen |
//! value`, ordered by [`internal_cmp`] on the internal-key portion. Sequence
//! numbers make keys unique, so duplicate insertion cannot occur.

use std::cmp::Ordering as CmpOrdering;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use p2kvs_util::coding::get_varint32;

use super::arena::Arena;
use crate::types::internal_cmp;

/// Maximum tower height.
const MAX_HEIGHT: usize = 12;
/// 1-in-`BRANCHING` chance of growing a level.
const BRANCHING: u32 = 4;

/// Extracts the internal key from an encoded entry.
#[inline]
pub fn entry_internal_key(entry: &[u8]) -> &[u8] {
    let (klen, used) = get_varint32(entry).expect("corrupt memtable entry");
    &entry[used..used + klen as usize]
}

/// Extracts the value from an encoded entry.
#[inline]
pub fn entry_value(entry: &[u8]) -> &[u8] {
    let (klen, used) = get_varint32(entry).expect("corrupt memtable entry");
    let rest = &entry[used + klen as usize..];
    let (vlen, vused) = get_varint32(rest).expect("corrupt memtable entry");
    &rest[vused..vused + vlen as usize]
}

#[repr(C)]
struct Node {
    entry_ptr: *const u8,
    entry_len: u32,
    height: u16,
    // Tower of `height` AtomicPtr<Node> follows immediately after.
}

impl Node {
    /// # Safety
    ///
    /// `node` must point to a node allocated by [`SkipList::new_node`] and
    /// `level < node.height`.
    #[inline]
    unsafe fn tower(node: *mut Node, level: usize) -> &'static AtomicPtr<Node> {
        debug_assert!(level < (*node).height as usize);
        let base = (node as *mut u8).add(std::mem::size_of::<Node>()) as *mut AtomicPtr<Node>;
        &*base.add(level)
    }

    /// # Safety
    ///
    /// `node` must be a valid, fully initialized non-head node.
    #[inline]
    unsafe fn entry<'a>(node: *mut Node) -> &'a [u8] {
        std::slice::from_raw_parts((*node).entry_ptr, (*node).entry_len as usize)
    }

    /// # Safety
    ///
    /// As for [`Node::entry`].
    #[inline]
    unsafe fn key<'a>(node: *mut Node) -> &'a [u8] {
        entry_internal_key(Node::entry(node))
    }
}

/// The concurrent skiplist.
pub struct SkipList {
    arena: Arc<Arena>,
    head: *mut Node,
    max_height: AtomicUsize,
    len: AtomicUsize,
    seed: AtomicUsize,
}

// SAFETY: nodes are immutable after publication except for their atomic
// towers; all cross-thread traffic goes through atomics with
// acquire/release ordering, and node memory is owned by the arena.
unsafe impl Send for SkipList {}
unsafe impl Sync for SkipList {}

impl SkipList {
    /// Creates an empty list over `arena`.
    pub fn new(arena: Arc<Arena>) -> SkipList {
        let list = SkipList {
            head: ptr::null_mut(),
            arena,
            max_height: AtomicUsize::new(1),
            len: AtomicUsize::new(0),
            seed: AtomicUsize::new(0x9e3779b9),
        };
        let head = list.new_node(&[], MAX_HEIGHT);
        // SAFETY: `head` was just allocated with height MAX_HEIGHT.
        unsafe {
            for level in 0..MAX_HEIGHT {
                Node::tower(head, level).store(ptr::null_mut(), Ordering::Relaxed);
            }
        }
        SkipList { head, ..list }
    }

    /// Number of entries inserted.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn new_node(&self, entry: &[u8], height: usize) -> *mut Node {
        let tower_bytes = height * std::mem::size_of::<AtomicPtr<Node>>();
        let total = std::mem::size_of::<Node>() + tower_bytes;
        let mem = self.arena.alloc(total, std::mem::align_of::<Node>());
        let entry_ptr = if entry.is_empty() {
            ptr::NonNull::dangling().as_ptr() as *const u8
        } else {
            self.arena.alloc_bytes(entry).as_ptr() as *const u8
        };
        let node = mem.as_ptr() as *mut Node;
        // SAFETY: `node` points at `total` freshly allocated zeroed bytes
        // sized and aligned for a Node plus its tower; no other thread can
        // see it before we publish it via CAS.
        unsafe {
            ptr::write(
                node,
                Node {
                    entry_ptr,
                    entry_len: entry.len() as u32,
                    height: height as u16,
                },
            );
            for level in 0..height {
                Node::tower(node, level).store(ptr::null_mut(), Ordering::Relaxed);
            }
        }
        node
    }

    fn random_height(&self) -> usize {
        // Xorshift over a shared seed; contention-tolerant (races only
        // perturb randomness).
        let mut s = self.seed.load(Ordering::Relaxed);
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.seed.store(s, Ordering::Relaxed);
        let mut height = 1;
        let mut v = s as u32;
        while height < MAX_HEIGHT && v % BRANCHING == 0 {
            height += 1;
            v /= BRANCHING;
        }
        height
    }

    /// Compares `node`'s key with `key`; head sorts before everything.
    ///
    /// # Safety
    ///
    /// `node` must be a valid node pointer from this list (possibly head).
    #[inline]
    unsafe fn cmp_node(&self, node: *mut Node, key: &[u8]) -> CmpOrdering {
        if node == self.head {
            CmpOrdering::Less
        } else {
            internal_cmp(Node::key(node), key)
        }
    }

    /// Finds `(prev, next)` around `key` at `level`, starting from `start`
    /// (whose key must be `< key` or be the head).
    fn find_splice_for_level(
        &self,
        key: &[u8],
        mut start: *mut Node,
        level: usize,
    ) -> (*mut Node, *mut Node) {
        loop {
            // SAFETY: `start` is head or a published node; towers of
            // published nodes are valid for `level < height`, which holds
            // because we only descend within heights we observed.
            let next = unsafe { Node::tower(start, level).load(Ordering::Acquire) };
            // SAFETY: `next` is null or a fully initialized published node.
            let go_right = !next.is_null() && unsafe { self.cmp_node(next, key) } == CmpOrdering::Less;
            if go_right {
                start = next;
            } else {
                return (start, next);
            }
        }
    }

    /// Inserts an encoded entry. The internal key inside `entry` must be
    /// unique (guaranteed by unique sequence numbers).
    pub fn insert(&self, entry: &[u8]) {
        let key = entry_internal_key(entry);
        let height = self.random_height();
        let mut max_h = self.max_height.load(Ordering::Relaxed);
        while height > max_h {
            match self.max_height.compare_exchange_weak(
                max_h,
                height,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => max_h = actual,
            }
        }

        let node = self.new_node(entry, height);
        let mut prev = [self.head; MAX_HEIGHT];
        let mut next = [ptr::null_mut::<Node>(); MAX_HEIGHT];
        // Top-down search to fill the splice.
        {
            let mut before = self.head;
            let mut level = self.max_height.load(Ordering::Relaxed).max(height);
            while level > 0 {
                let l = level - 1;
                let (p, n) = self.find_splice_for_level(key, before, l);
                prev[l] = p;
                next[l] = n;
                before = p;
                level -= 1;
            }
        }

        for level in 0..height {
            loop {
                // SAFETY: `node` has `height` tower slots; `level < height`.
                unsafe {
                    Node::tower(node, level).store(next[level], Ordering::Relaxed);
                }
                // SAFETY: `prev[level]` is head or a published node whose
                // height exceeds `level` (it was found at this level).
                let cas = unsafe {
                    Node::tower(prev[level], level).compare_exchange(
                        next[level],
                        node,
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                };
                if cas.is_ok() {
                    break;
                }
                // Lost a race: recompute the splice at this level from the
                // last known predecessor (still strictly before `key`).
                let (p, n) = self.find_splice_for_level(key, prev[level], level);
                prev[level] = p;
                next[level] = n;
            }
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// First node with key `>= key`, or null.
    fn find_greater_or_equal(&self, key: &[u8]) -> *mut Node {
        let mut node = self.head;
        let mut level = self.max_height.load(Ordering::Relaxed);
        loop {
            let l = level - 1;
            let (p, n) = self.find_splice_for_level(key, node, l);
            node = p;
            if level == 1 {
                return n;
            }
            level -= 1;
        }
    }

    /// Entry of the first element `>= key` (by internal-key order).
    pub fn seek(&self, key: &[u8]) -> Option<&[u8]> {
        let node = self.find_greater_or_equal(key);
        if node.is_null() {
            None
        } else {
            // SAFETY: non-null nodes returned by the search are published
            // and outlive `self` via the arena.
            Some(unsafe { Node::entry(node) })
        }
    }

    /// Forward iterator over entries in key order.
    pub fn iter(&self) -> SkipIter<'_> {
        SkipIter {
            list: self,
            node: ptr::null_mut(),
        }
    }
}

/// Forward-only cursor over a [`SkipList`].
pub struct SkipIter<'a> {
    list: &'a SkipList,
    node: *mut Node,
}

// SAFETY: the cursor only dereferences published, immutable nodes whose
// memory is owned by the list's arena; moving the cursor across threads is
// as safe as sharing the list itself (which is `Sync`).
unsafe impl Send for SkipIter<'_> {}

impl<'a> SkipIter<'a> {
    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        // SAFETY: head is always valid with MAX_HEIGHT tower slots.
        self.node = unsafe { Node::tower(self.list.head, 0).load(Ordering::Acquire) };
    }

    /// Positions at the first entry with key `>= key`.
    pub fn seek(&mut self, key: &[u8]) {
        self.node = self.list.find_greater_or_equal(key);
    }

    /// Whether the cursor points at an entry.
    pub fn valid(&self) -> bool {
        !self.node.is_null()
    }

    /// Advances to the next entry.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not valid.
    pub fn next(&mut self) {
        assert!(self.valid(), "next() on invalid iterator");
        // SAFETY: `self.node` is a published node (valid() checked).
        self.node = unsafe { Node::tower(self.node, 0).load(Ordering::Acquire) };
    }

    /// The current encoded entry.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not valid.
    pub fn entry(&self) -> &'a [u8] {
        assert!(self.valid(), "entry() on invalid iterator");
        // SAFETY: published node; entry bytes live in the arena borrowed
        // for 'a.
        unsafe { Node::entry(self.node) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use p2kvs_util::coding::{put_varint32};

    fn encode_entry(user_key: &[u8], seq: u64, value: &[u8]) -> Vec<u8> {
        let ikey = make_internal_key(user_key, seq, ValueType::Value);
        let mut e = Vec::new();
        put_varint32(&mut e, ikey.len() as u32);
        e.extend_from_slice(&ikey);
        put_varint32(&mut e, value.len() as u32);
        e.extend_from_slice(value);
        e
    }

    fn new_list() -> SkipList {
        SkipList::new(Arc::new(Arena::new()))
    }

    #[test]
    fn empty_list() {
        let list = new_list();
        assert!(list.is_empty());
        let mut it = list.iter();
        it.seek_to_first();
        assert!(!it.valid());
        assert!(list.seek(&make_internal_key(b"a", 1, ValueType::Value)).is_none());
    }

    #[test]
    fn insert_and_seek() {
        let list = new_list();
        for (i, k) in [b"banana", b"apple!", b"cherry"].iter().enumerate() {
            list.insert(&encode_entry(*k, i as u64 + 1, b"v"));
        }
        assert_eq!(list.len(), 3);
        let e = list
            .seek(&make_internal_key(b"apple!", u64::MAX >> 8, ValueType::Value))
            .unwrap();
        assert_eq!(
            crate::types::user_key(entry_internal_key(e)),
            b"apple!"
        );
        // Seek past everything.
        assert!(list
            .seek(&make_internal_key(b"zzz", 1, ValueType::Value))
            .is_none());
    }

    #[test]
    fn iteration_is_sorted() {
        let list = new_list();
        let mut keys: Vec<String> = (0..500).map(|i| format!("key{:05}", (i * 7919) % 500)).collect();
        for (i, k) in keys.iter().enumerate() {
            list.insert(&encode_entry(k.as_bytes(), i as u64 + 1, b"x"));
        }
        keys.sort();
        let mut it = list.iter();
        it.seek_to_first();
        let mut got = Vec::new();
        while it.valid() {
            let uk = crate::types::user_key(entry_internal_key(it.entry())).to_vec();
            got.push(String::from_utf8(uk).unwrap());
            it.next();
        }
        assert_eq!(got, keys);
    }

    #[test]
    fn same_user_key_orders_newest_first() {
        let list = new_list();
        list.insert(&encode_entry(b"k", 5, b"old"));
        list.insert(&encode_entry(b"k", 9, b"new"));
        let mut it = list.iter();
        it.seek_to_first();
        assert_eq!(entry_value(it.entry()), b"new");
        it.next();
        assert_eq!(entry_value(it.entry()), b"old");
    }

    #[test]
    fn values_roundtrip() {
        let list = new_list();
        list.insert(&encode_entry(b"a", 1, b""));
        list.insert(&encode_entry(b"b", 2, &vec![0xcd; 4096]));
        let mut it = list.iter();
        it.seek_to_first();
        assert_eq!(entry_value(it.entry()), b"");
        it.next();
        assert_eq!(entry_value(it.entry()), &vec![0xcd; 4096][..]);
    }

    #[test]
    fn concurrent_inserts_preserve_all_entries() {
        let arena = Arc::new(Arena::new());
        let list = Arc::new(SkipList::new(arena));
        const THREADS: u64 = 8;
        const PER: u64 = 2000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let list = list.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let key = format!("k{:08}", i * THREADS + t);
                        let seq = t * PER + i + 1;
                        list.insert(&encode_entry(key.as_bytes(), seq, b"v"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(list.len(), (THREADS * PER) as usize);
        // Full scan must see every key exactly once, in order.
        let mut it = list.iter();
        it.seek_to_first();
        let mut count = 0u64;
        let mut last: Option<Vec<u8>> = None;
        while it.valid() {
            let uk = crate::types::user_key(entry_internal_key(it.entry())).to_vec();
            if let Some(prev) = &last {
                assert!(*prev < uk, "unsorted: {prev:?} !< {uk:?}");
            }
            last = Some(uk);
            count += 1;
            it.next();
        }
        assert_eq!(count, THREADS * PER);
    }

    #[test]
    fn readers_run_during_writes() {
        let list = Arc::new(SkipList::new(Arc::new(Arena::new())));
        let writer = {
            let list = list.clone();
            std::thread::spawn(move || {
                for i in 0..5000u64 {
                    list.insert(&encode_entry(format!("w{i:06}").as_bytes(), i + 1, b"v"));
                }
            })
        };
        // Concurrent readers continuously scan; they must never see
        // out-of-order or torn entries.
        for _ in 0..50 {
            let mut it = list.iter();
            it.seek_to_first();
            let mut last: Option<Vec<u8>> = None;
            while it.valid() {
                let uk = crate::types::user_key(entry_internal_key(it.entry())).to_vec();
                if let Some(prev) = &last {
                    assert!(*prev < uk);
                }
                last = Some(uk);
                it.next();
            }
        }
        writer.join().unwrap();
    }
}
