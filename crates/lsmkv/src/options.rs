//! Engine configuration.
//!
//! The defaults mimic a small RocksDB tuned for the paper's experiments
//! (sizes are scaled down so compaction behaviour appears within the
//! scaled-down op counts; see DESIGN.md). [`Options::leveldb_like`] disables
//! the RocksDB-only concurrency optimizations to act as the LevelDB
//! portability target, and [`Options::pebblesdb_like`] switches compaction
//! to the fragmented (guard-based) policy to act as the PebblesDB baseline.

use std::sync::Arc;

use p2kvs_storage::EnvRef;

/// How SST files are reorganized across levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionStyle {
    /// Classic leveled compaction: non-overlapping files per level (except
    /// L0); compaction merges into the next level.
    Leveled,
    /// PebblesDB-style fragmented LSM: overlapping fragments are allowed
    /// within a level, compaction appends fragments to the next level
    /// without rewriting it, trading read fan-out for write amplification.
    Fragmented,
}

/// When WAL writes become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` on every write group (safest, slowest).
    Always,
    /// Push bytes to the device per group but skip the barrier — the
    /// paper's "async-logging" default configuration.
    Async,
    /// Leave bytes in the writer's buffer; the device sees them on
    /// writeback thresholds only.
    Buffered,
}

/// Top-level engine options.
#[derive(Clone)]
pub struct Options {
    /// Environment all files are created in.
    pub env: EnvRef,
    /// Create the database if it does not exist.
    pub create_if_missing: bool,
    /// MemTable capacity in bytes before it is made immutable.
    pub memtable_size: usize,
    /// Maximum number of immutable memtables before writers stall.
    pub max_immutable_memtables: usize,
    /// Target file size for SSTs produced by flush/compaction.
    pub target_file_size: usize,
    /// Number of L0 files that triggers compaction.
    pub l0_compaction_trigger: usize,
    /// Number of L0 files at which writers are slowed down.
    pub l0_slowdown_trigger: usize,
    /// Number of L0 files at which writers stop until compaction catches up.
    pub l0_stop_trigger: usize,
    /// Size target of L1 in bytes; each deeper level is ×`level_multiplier`.
    pub base_level_size: u64,
    /// Growth factor between level size targets.
    pub level_multiplier: u64,
    /// Number of LSM levels.
    pub num_levels: usize,
    /// Data block size inside SSTs.
    pub block_size: usize,
    /// Bloom filter bits per key (0 disables filters).
    pub bloom_bits_per_key: usize,
    /// Capacity of the shared block cache in bytes (0 disables caching).
    pub block_cache_size: usize,
    /// Restart interval for prefix-compressed blocks.
    pub block_restart_interval: usize,
    /// WAL durability policy.
    pub sync: SyncPolicy,
    /// RocksDB-style group commit: concurrent writers are merged into one
    /// log write led by a leader.
    pub group_commit: bool,
    /// Upper bound on bytes aggregated into one write group.
    pub max_write_group_bytes: usize,
    /// Concurrent MemTable: followers of a write group insert their own
    /// batches in parallel (RocksDB `allow_concurrent_memtable_write`).
    pub concurrent_memtable: bool,
    /// Pipelined write: WAL of group N+1 may start while group N is still
    /// inserting into the MemTable (RocksDB `enable_pipelined_write`).
    pub pipelined_write: bool,
    /// Compaction policy.
    pub compaction_style: CompactionStyle,
    /// Fragmented style: fragments per guard that trigger a guard merge.
    pub fragment_merge_threshold: usize,
    /// Number of background compaction threads. With more than one thread
    /// the scheduler runs compactions at *different* levels concurrently
    /// (L0→L1 prioritized); a single level is never compacted by two jobs
    /// at once.
    pub compaction_threads: usize,
    /// Maximum subcompactions per major compaction: the merged input range
    /// is partitioned by user key and the partitions are written by
    /// parallel threads. `1` keeps the single-threaded path.
    pub subcompactions: usize,
    /// Device submission queue this instance's WAL/flush traffic should
    /// ride (see `p2kvs_storage::ioqueue`). Subcompaction outputs spread
    /// across queues starting after this one. `None` uses the ambient
    /// thread queue / file-hash placement.
    pub io_queue: Option<usize>,
    /// Size of the read pool serving `multiget` (0 = sequential multiget).
    pub read_pool_threads: usize,
    /// Whether the engine exposes `multiget` (RocksDB yes, LevelDB no).
    pub has_multiget: bool,
    /// Benchmark-only: skip MemTable insertion entirely to isolate the WAL
    /// stage (Figs 7, 8a). Reads are meaningless in this mode.
    pub bench_skip_memtable: bool,
}

impl Options {
    /// RocksDB-like defaults over the given environment, scaled for tests
    /// and simulation (4 MiB memtables, 2 MiB SSTs).
    pub fn rocksdb_like(env: EnvRef) -> Options {
        Options {
            env,
            create_if_missing: true,
            memtable_size: 4 << 20,
            max_immutable_memtables: 2,
            target_file_size: 2 << 20,
            l0_compaction_trigger: 4,
            l0_slowdown_trigger: 8,
            l0_stop_trigger: 12,
            base_level_size: 8 << 20,
            level_multiplier: 10,
            num_levels: 7,
            block_size: 4 << 10,
            bloom_bits_per_key: 10,
            block_cache_size: 8 << 20,
            block_restart_interval: 16,
            sync: SyncPolicy::Async,
            group_commit: true,
            max_write_group_bytes: 1 << 20,
            concurrent_memtable: true,
            pipelined_write: true,
            compaction_style: CompactionStyle::Leveled,
            fragment_merge_threshold: 6,
            compaction_threads: 1,
            subcompactions: 1,
            io_queue: None,
            read_pool_threads: 4,
            has_multiget: true,
            bench_skip_memtable: false,
        }
    }

    /// LevelDB mode: same structure, none of the RocksDB concurrency
    /// extras (no concurrent memtable, no pipelining, no multiget).
    pub fn leveldb_like(env: EnvRef) -> Options {
        Options {
            concurrent_memtable: false,
            pipelined_write: false,
            has_multiget: false,
            read_pool_threads: 0,
            ..Options::rocksdb_like(env)
        }
    }

    /// PebblesDB mode: LevelDB base plus fragmented (guard-based)
    /// compaction.
    pub fn pebblesdb_like(env: EnvRef) -> Options {
        Options {
            compaction_style: CompactionStyle::Fragmented,
            ..Options::leveldb_like(env)
        }
    }

    /// In-memory options for unit tests.
    pub fn for_test() -> Options {
        let mut o = Options::rocksdb_like(Arc::new(p2kvs_storage::MemEnv::new()));
        o.memtable_size = 64 << 10;
        o.target_file_size = 32 << 10;
        o.base_level_size = 128 << 10;
        o.block_cache_size = 256 << 10;
        o
    }

    /// Size target in bytes for `level` (>= 1).
    pub fn level_target(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        let mut target = self.base_level_size;
        for _ in 1..level {
            target = target.saturating_mul(self.level_multiplier);
        }
        target
    }
}

/// Per-write options.
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Force a durability barrier for this write.
    pub sync: bool,
    /// Skip the WAL entirely (used by the Fig 8 MemTable-only experiment).
    pub disable_wal: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            sync: false,
            disable_wal: false,
        }
    }
}

/// Per-read options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadOptions {
    /// Read at this sequence number instead of the latest (snapshots).
    pub snapshot: Option<u64>,
    /// Bypass the block cache for this read.
    pub skip_cache: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_targets_grow_geometrically() {
        let o = Options::for_test();
        assert_eq!(o.level_target(1), o.base_level_size);
        assert_eq!(o.level_target(2), o.base_level_size * 10);
        assert_eq!(o.level_target(3), o.base_level_size * 100);
    }

    #[test]
    fn mode_presets() {
        let env: EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let rocks = Options::rocksdb_like(env.clone());
        assert!(rocks.concurrent_memtable && rocks.pipelined_write && rocks.has_multiget);
        let level = Options::leveldb_like(env.clone());
        assert!(!level.concurrent_memtable && !level.pipelined_write && !level.has_multiget);
        assert_eq!(level.compaction_style, CompactionStyle::Leveled);
        let pebbles = Options::pebblesdb_like(env);
        assert_eq!(pebbles.compaction_style, CompactionStyle::Fragmented);
        assert!(!pebbles.concurrent_memtable);
    }
}
