//! Write-ahead log: LevelDB/RocksDB record format.
//!
//! The log is a sequence of 32 KiB blocks; records are fragmented across
//! blocks with a 7-byte header per fragment:
//!
//! ```text
//! masked_crc32c: fixed32 | length: fixed16 | type: u8 (FULL/FIRST/MIDDLE/LAST)
//! ```
//!
//! A torn tail (power failure mid-record) is detected by checksum or length
//! mismatch and treated as end-of-log, exactly like LevelDB's default
//! recovery mode. Group commit lives above this layer in `db::write_queue`;
//! the writer itself just appends one payload (typically a merged
//! [`crate::WriteBatch`]) per call.

use p2kvs_storage::{SequentialFile, WritableFile};
use p2kvs_util::crc32c;

use crate::error::{Error, Result};

/// Log block size.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Fragment header size: crc(4) + len(2) + type(1).
pub const HEADER_SIZE: usize = 7;

const FULL: u8 = 1;
const FIRST: u8 = 2;
const MIDDLE: u8 = 3;
const LAST: u8 = 4;

/// Appends records to a log file.
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    /// Offset within the current block.
    block_offset: usize,
}

impl LogWriter {
    /// Wraps `file`, which must be positioned at a block boundary (new or
    /// freshly truncated files always are).
    pub fn new(file: Box<dyn WritableFile>) -> LogWriter {
        LogWriter {
            file,
            block_offset: 0,
        }
    }

    /// Appends one record. Data is buffered in the file; call [`flush`] or
    /// [`sync`](LogWriter::sync) per the durability policy.
    pub fn add_record(&mut self, mut payload: &[u8]) -> Result<()> {
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Pad the block trailer with zeros.
                if leftover > 0 {
                    self.file.append(&[0u8; HEADER_SIZE - 1][..leftover])?;
                }
                self.block_offset = 0;
            }
            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = payload.len().min(avail);
            let end = fragment_len == payload.len();
            let kind = match (begin, end) {
                (true, true) => FULL,
                (true, false) => FIRST,
                (false, true) => LAST,
                (false, false) => MIDDLE,
            };
            self.emit(kind, &payload[..fragment_len])?;
            payload = &payload[fragment_len..];
            begin = false;
            if end {
                return Ok(());
            }
        }
    }

    fn emit(&mut self, kind: u8, fragment: &[u8]) -> Result<()> {
        let crc = crc32c::mask(crc32c::extend(crc32c::crc32c(&[kind]), fragment));
        let mut header = [0u8; HEADER_SIZE];
        header[..4].copy_from_slice(&crc.to_le_bytes());
        header[4..6].copy_from_slice(&(fragment.len() as u16).to_le_bytes());
        header[6] = kind;
        self.file.append(&header)?;
        self.file.append(fragment)?;
        self.block_offset += HEADER_SIZE + fragment.len();
        Ok(())
    }

    /// Pushes buffered bytes toward the device (no durability barrier).
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    /// Makes the log durable.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }

    /// Bytes appended so far.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.file.len() == 0
    }
}

/// Reads records back from a log file.
pub struct LogReader {
    file: Box<dyn SequentialFile>,
    block: Vec<u8>,
    /// Valid bytes in `block`.
    block_len: usize,
    /// Read cursor within `block`.
    pos: usize,
    /// Set when the last block read was short (EOF reached).
    at_eof: bool,
}

impl LogReader {
    /// Wraps a sequential file positioned at the start of the log.
    pub fn new(file: Box<dyn SequentialFile>) -> LogReader {
        LogReader {
            file,
            block: vec![0u8; BLOCK_SIZE],
            block_len: 0,
            pos: 0,
            at_eof: false,
        }
    }

    /// Reads the next record into `out`.
    ///
    /// Returns `Ok(false)` at end of log. A torn tail (checksum/length
    /// mismatch in the final partial record) also ends the log silently;
    /// corruption *before* the tail is still reported as an error by virtue
    /// of the checksum covering every fragment.
    pub fn read_record(&mut self, out: &mut Vec<u8>) -> Result<bool> {
        out.clear();
        let mut in_fragmented = false;
        loop {
            let Some((kind, fragment)) = self.read_fragment()? else {
                // EOF (possibly mid-record after a crash): drop partials.
                return Ok(false);
            };
            match kind {
                FULL => {
                    if in_fragmented {
                        return Err(Error::corruption("FULL record inside fragmented record"));
                    }
                    out.extend_from_slice(&fragment);
                    return Ok(true);
                }
                FIRST => {
                    if in_fragmented {
                        return Err(Error::corruption("FIRST record inside fragmented record"));
                    }
                    in_fragmented = true;
                    out.extend_from_slice(&fragment);
                }
                MIDDLE => {
                    if !in_fragmented {
                        return Err(Error::corruption("orphan MIDDLE fragment"));
                    }
                    out.extend_from_slice(&fragment);
                }
                LAST => {
                    if !in_fragmented {
                        return Err(Error::corruption("orphan LAST fragment"));
                    }
                    out.extend_from_slice(&fragment);
                    return Ok(true);
                }
                other => {
                    return Err(Error::corruption(format!("unknown fragment type {other}")));
                }
            }
        }
    }

    /// Reads one fragment; `None` means clean or torn end-of-log.
    fn read_fragment(&mut self) -> Result<Option<(u8, Vec<u8>)>> {
        loop {
            if self.block_len - self.pos < HEADER_SIZE {
                if !self.refill()? {
                    return Ok(None);
                }
                continue;
            }
            let header = &self.block[self.pos..self.pos + HEADER_SIZE];
            let stored_crc = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
            let len = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes")) as usize;
            let kind = header[6];
            if kind == 0 && len == 0 && stored_crc == 0 {
                // Block trailer padding; skip to next block.
                self.pos = self.block_len;
                continue;
            }
            if self.pos + HEADER_SIZE + len > self.block_len {
                // Truncated fragment: torn tail.
                return Ok(None);
            }
            let fragment =
                self.block[self.pos + HEADER_SIZE..self.pos + HEADER_SIZE + len].to_vec();
            let actual = crc32c::mask(crc32c::extend(crc32c::crc32c(&[kind]), &fragment));
            if actual != stored_crc {
                // Checksum failure: treat as torn tail (stop replay).
                return Ok(None);
            }
            self.pos += HEADER_SIZE + len;
            return Ok(Some((kind, fragment)));
        }
    }

    /// Loads the next block; returns false at EOF.
    fn refill(&mut self) -> Result<bool> {
        if self.at_eof {
            return Ok(false);
        }
        self.block_len = 0;
        self.pos = 0;
        while self.block_len < BLOCK_SIZE {
            let n = self.file.read(&mut self.block[self.block_len..])?;
            if n == 0 {
                self.at_eof = true;
                break;
            }
            self.block_len += n;
        }
        Ok(self.block_len >= HEADER_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::{Env, MemEnv};
    use std::path::Path;

    fn roundtrip(records: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let env = MemEnv::new();
        let path = Path::new("test.log");
        let mut w = LogWriter::new(env.new_writable(path).unwrap());
        for r in records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut r = LogReader::new(env.new_sequential(path).unwrap());
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while r.read_record(&mut buf).unwrap() {
            out.push(buf.clone());
        }
        out
    }

    #[test]
    fn small_records_roundtrip() {
        let records = vec![b"one".to_vec(), b"two".to_vec(), Vec::new(), b"four".to_vec()];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn records_spanning_blocks_roundtrip() {
        let records = vec![
            vec![1u8; BLOCK_SIZE / 2],
            vec![2u8; BLOCK_SIZE + 100],
            vec![3u8; 3 * BLOCK_SIZE],
            b"tail".to_vec(),
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn record_landing_exactly_on_boundary() {
        // Payload that leaves less than a header of space in the block.
        let sizes = [
            BLOCK_SIZE - HEADER_SIZE,     // exactly fills a block
            BLOCK_SIZE - HEADER_SIZE - 1, // leaves 1 byte (trailer pad)
            BLOCK_SIZE - 2 * HEADER_SIZE - 3,
        ];
        for size in sizes {
            let records = vec![vec![7u8; size], b"after".to_vec()];
            assert_eq!(roundtrip(&records), records, "size {size}");
        }
    }

    #[test]
    fn torn_tail_is_silently_dropped() {
        let env = MemEnv::new();
        let path = Path::new("torn.log");
        let mut w = LogWriter::new(env.new_writable(path).unwrap());
        w.add_record(b"complete-record").unwrap();
        w.sync().unwrap();
        w.add_record(&vec![9u8; 5000]).unwrap();
        // No sync: power failure loses the second record (partially).
        drop(w);
        env.fs().power_failure();
        let mut r = LogReader::new(env.new_sequential(path).unwrap());
        let mut buf = Vec::new();
        assert!(r.read_record(&mut buf).unwrap());
        assert_eq!(buf, b"complete-record");
        assert!(!r.read_record(&mut buf).unwrap());
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let env = MemEnv::new();
        let path = Path::new("corrupt.log");
        let mut w = LogWriter::new(env.new_writable(path).unwrap());
        w.add_record(b"first").unwrap();
        w.add_record(b"second").unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip a payload byte of the second record.
        let mut data = p2kvs_storage::env::read_all(&env, path).unwrap();
        let second_payload = HEADER_SIZE + 5 + HEADER_SIZE;
        data[second_payload] ^= 0xff;
        p2kvs_storage::env::write_all(&env, path, &data).unwrap();
        let mut r = LogReader::new(env.new_sequential(path).unwrap());
        let mut buf = Vec::new();
        assert!(r.read_record(&mut buf).unwrap());
        assert_eq!(buf, b"first");
        assert!(!r.read_record(&mut buf).unwrap());
    }

    #[test]
    fn empty_log_reads_nothing() {
        let env = MemEnv::new();
        let path = Path::new("empty.log");
        p2kvs_storage::env::write_all(&env, path, b"").unwrap();
        let mut r = LogReader::new(env.new_sequential(path).unwrap());
        let mut buf = Vec::new();
        assert!(!r.read_record(&mut buf).unwrap());
    }

    #[test]
    fn many_records_roundtrip() {
        let records: Vec<Vec<u8>> = (0..2000)
            .map(|i| format!("record-{i:06}-{}", "x".repeat(i % 97)).into_bytes())
            .collect();
        assert_eq!(roundtrip(&records), records);
    }
}
