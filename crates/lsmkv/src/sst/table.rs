//! SSTable builder and reader.
//!
//! File layout:
//!
//! ```text
//! [data block + trailer]*
//! [filter block (bloom) + trailer]
//! [index block + trailer]
//! footer: filter_handle (16) | index_handle (16) | entries (8) | magic (8)
//! ```
//!
//! Each block trailer is `type: u8 (0 = raw) | masked_crc32c: fixed32` over
//! the block bytes plus the type byte. Index entries map the last internal
//! key of each data block to its [`BlockHandle`].

use std::sync::Arc;

use p2kvs_storage::{RandomAccessFile, WritableFile};
use p2kvs_util::coding::{get_fixed64, put_fixed64};
use p2kvs_util::crc32c;

use super::block::{Block, BlockBuilder, BlockIter};
use super::bloom::BloomPolicy;
use super::cache::BlockCache;
use crate::error::{Error, Result};
use crate::iterator::InternalIterator;
use crate::types::user_key;

const MAGIC: u64 = 0x7032_6b76_735f_7373; // "p2kvs_ss"
const FOOTER_SIZE: usize = 16 + 16 + 8 + 8;
const BLOCK_TRAILER_SIZE: usize = 5;

/// Location of a block within the table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHandle {
    /// Byte offset of the block.
    pub offset: u64,
    /// Length of the block excluding its trailer.
    pub size: u64,
}

impl BlockHandle {
    fn encode(&self, dst: &mut Vec<u8>) {
        put_fixed64(dst, self.offset);
        put_fixed64(dst, self.size);
    }

    fn decode(src: &[u8]) -> BlockHandle {
        BlockHandle {
            offset: get_fixed64(src),
            size: get_fixed64(&src[8..]),
        }
    }
}

/// Configuration subset needed to build tables.
#[derive(Debug, Clone, Copy)]
pub struct TableConfig {
    /// Target uncompressed data-block size.
    pub block_size: usize,
    /// Restart interval of data blocks.
    pub restart_interval: usize,
    /// Bloom bits per key; 0 disables the filter block.
    pub bloom_bits_per_key: usize,
}

impl From<&crate::options::Options> for TableConfig {
    fn from(o: &crate::options::Options) -> Self {
        TableConfig {
            block_size: o.block_size,
            restart_interval: o.block_restart_interval,
            bloom_bits_per_key: o.bloom_bits_per_key,
        }
    }
}

/// Summary of a finished table.
#[derive(Debug, Clone)]
pub struct TableSummary {
    /// Final file size in bytes.
    pub file_size: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
    /// Number of entries.
    pub entries: u64,
}

/// Streams sorted entries into an SSTable file.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    config: TableConfig,
    data_block: BlockBuilder,
    index_block: BlockBuilder,
    /// User keys for the table-wide bloom filter.
    key_hashes: Vec<Vec<u8>>,
    offset: u64,
    entries: u64,
    smallest: Option<Vec<u8>>,
    last_key: Vec<u8>,
}

impl TableBuilder {
    /// Starts a table in `file`.
    pub fn new(file: Box<dyn WritableFile>, config: TableConfig) -> TableBuilder {
        TableBuilder {
            file,
            data_block: BlockBuilder::new(config.restart_interval),
            index_block: BlockBuilder::new(1),
            config,
            key_hashes: Vec::new(),
            offset: 0,
            entries: 0,
            smallest: None,
            last_key: Vec::new(),
        }
    }

    /// Adds an entry; internal keys must arrive strictly increasing.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) -> Result<()> {
        if self.smallest.is_none() {
            self.smallest = Some(ikey.to_vec());
        }
        if self.config.bloom_bits_per_key > 0 {
            self.key_hashes.push(user_key(ikey).to_vec());
        }
        self.data_block.add(ikey, value);
        self.last_key.clear();
        self.last_key.extend_from_slice(ikey);
        self.entries += 1;
        if self.data_block.size_estimate() >= self.config.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    /// Estimated final file size so far.
    pub fn estimated_size(&self) -> u64 {
        self.offset + self.data_block.size_estimate() as u64
    }

    /// Number of entries added so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    fn flush_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let block = std::mem::replace(
            &mut self.data_block,
            BlockBuilder::new(self.config.restart_interval),
        );
        let last_key = block.last_key().to_vec();
        let handle = self.write_block(&block.finish())?;
        let mut handle_enc = Vec::with_capacity(16);
        handle.encode(&mut handle_enc);
        self.index_block.add(&last_key, &handle_enc);
        Ok(())
    }

    fn write_block(&mut self, contents: &[u8]) -> Result<BlockHandle> {
        let handle = BlockHandle {
            offset: self.offset,
            size: contents.len() as u64,
        };
        self.file.append(contents)?;
        let mut trailer = [0u8; BLOCK_TRAILER_SIZE];
        trailer[0] = 0; // Raw, uncompressed.
        let crc = crc32c::mask(crc32c::extend(crc32c::crc32c(contents), &trailer[..1]));
        trailer[1..].copy_from_slice(&crc.to_le_bytes());
        self.file.append(&trailer)?;
        self.offset += contents.len() as u64 + BLOCK_TRAILER_SIZE as u64;
        Ok(handle)
    }

    /// Finishes the table: writes filter, index, and footer, then syncs.
    pub fn finish(mut self) -> Result<TableSummary> {
        self.flush_data_block()?;
        // Filter block.
        let filter_handle = if self.config.bloom_bits_per_key > 0 {
            let mut filter = Vec::new();
            let keys: Vec<&[u8]> = self.key_hashes.iter().map(|k| k.as_slice()).collect();
            BloomPolicy::new(self.config.bloom_bits_per_key).create_filter(&keys, &mut filter);
            self.write_block(&filter)?
        } else {
            BlockHandle { offset: 0, size: 0 }
        };
        // Index block.
        let index = std::mem::replace(&mut self.index_block, BlockBuilder::new(1));
        let index_handle = self.write_block(&index.finish())?;
        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_SIZE);
        filter_handle.encode(&mut footer);
        index_handle.encode(&mut footer);
        put_fixed64(&mut footer, self.entries);
        put_fixed64(&mut footer, MAGIC);
        self.file.append(&footer)?;
        self.file.sync()?;
        Ok(TableSummary {
            file_size: self.offset + FOOTER_SIZE as u64,
            smallest: self.smallest.unwrap_or_default(),
            largest: self.last_key.clone(),
            entries: self.entries,
        })
    }
}

/// Reads an SSTable.
pub struct TableReader {
    file: Box<dyn RandomAccessFile>,
    /// Unique id for block-cache keys.
    table_id: u64,
    cache: Option<Arc<BlockCache>>,
    index: Arc<Block>,
    filter: Option<Vec<u8>>,
    /// Number of entries recorded in the footer.
    pub entries: u64,
}

impl TableReader {
    /// Opens a table of `size` bytes from `file`.
    pub fn open(
        file: Box<dyn RandomAccessFile>,
        size: u64,
        table_id: u64,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<TableReader> {
        if size < FOOTER_SIZE as u64 {
            return Err(Error::corruption("table smaller than footer"));
        }
        let mut footer = [0u8; FOOTER_SIZE];
        file.read_at(size - FOOTER_SIZE as u64, &mut footer)?;
        if get_fixed64(&footer[40..]) != MAGIC {
            return Err(Error::corruption("bad table magic"));
        }
        let filter_handle = BlockHandle::decode(&footer[..16]);
        let index_handle = BlockHandle::decode(&footer[16..32]);
        let entries = get_fixed64(&footer[32..40]);
        let index_bytes = Self::read_block_raw(&*file, index_handle)?;
        let index = Arc::new(Block::new(Arc::new(index_bytes))?);
        let filter = if filter_handle.size > 0 {
            Some(Self::read_block_raw(&*file, filter_handle)?)
        } else {
            None
        };
        Ok(TableReader {
            file,
            table_id,
            cache,
            index,
            filter,
            entries,
        })
    }

    /// Reads and verifies a block's bytes (no cache).
    fn read_block_raw(file: &dyn RandomAccessFile, handle: BlockHandle) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; handle.size as usize + BLOCK_TRAILER_SIZE];
        file.read_at(handle.offset, &mut buf)?;
        let (contents, trailer) = buf.split_at(handle.size as usize);
        let stored = u32::from_le_bytes(trailer[1..5].try_into().expect("4 bytes"));
        let actual = crc32c::mask(crc32c::extend(crc32c::crc32c(contents), &trailer[..1]));
        if stored != actual {
            return Err(Error::corruption(format!(
                "block crc mismatch at offset {}",
                handle.offset
            )));
        }
        let mut out = buf;
        out.truncate(handle.size as usize);
        Ok(out)
    }

    /// Loads a data block, via the cache when one is configured.
    fn read_block(&self, handle: BlockHandle, skip_cache: bool) -> Result<Arc<Block>> {
        let key = (self.table_id, handle.offset);
        if !skip_cache {
            if let Some(cache) = &self.cache {
                if let Some(block) = cache.get(&key) {
                    return Ok(block);
                }
            }
        }
        let bytes = Self::read_block_raw(&*self.file, handle)?;
        let block = Arc::new(Block::new(Arc::new(bytes))?);
        if !skip_cache {
            if let Some(cache) = &self.cache {
                cache.insert(key, block.clone());
            }
        }
        Ok(block)
    }

    /// Whether the bloom filter rules out `ukey`.
    pub fn may_contain(&self, ukey: &[u8]) -> bool {
        match &self.filter {
            Some(f) => BloomPolicy::key_may_match(ukey, f),
            None => true,
        }
    }

    /// Point lookup: the first entry with internal key `>= ikey`, if it is
    /// in this table. The caller checks user-key equality and visibility.
    pub fn get(&self, ikey: &[u8], skip_cache: bool) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if !self.may_contain(user_key(ikey)) {
            return Ok(None);
        }
        let mut index_iter = self.index.iter();
        index_iter.seek(ikey);
        if !index_iter.valid() {
            return Ok(None);
        }
        let handle = BlockHandle::decode(index_iter.value());
        let block = self.read_block(handle, skip_cache)?;
        let mut it = block.iter();
        it.seek(ikey);
        if !it.valid() {
            return Ok(None);
        }
        Ok(Some((it.key().to_vec(), it.value().to_vec())))
    }

    /// Full iterator over the table.
    pub fn iter(self: &Arc<Self>) -> TableIterator {
        TableIterator {
            table: self.clone(),
            index_iter: self.index.iter(),
            data_iter: None,
            status: None,
        }
    }
}

/// Two-level iterator: index block → data blocks.
pub struct TableIterator {
    table: Arc<TableReader>,
    index_iter: BlockIter,
    data_iter: Option<BlockIter>,
    /// First block-load error; makes the iterator invalid and is reported
    /// through [`InternalIterator::status`] so consumers can tell a read
    /// failure from a clean end of stream.
    status: Option<Error>,
}

impl TableIterator {
    fn load_data_block(&mut self) {
        self.data_iter = None;
        if !self.index_iter.valid() {
            return;
        }
        let handle = BlockHandle::decode(self.index_iter.value());
        match self.table.read_block(handle, false) {
            Ok(block) => self.data_iter = Some(block.iter()),
            Err(e) => {
                if self.status.is_none() {
                    self.status = Some(e);
                }
            }
        }
    }

    /// Advances the index until the data iterator is valid or exhausted.
    fn skip_empty_blocks(&mut self) {
        while self
            .data_iter
            .as_ref()
            .map(|it| !it.valid())
            .unwrap_or(false)
        {
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.index_iter.next();
            self.load_data_block();
            if let Some(it) = &mut self.data_iter {
                it.seek_to_first();
            }
        }
    }
}

impl InternalIterator for TableIterator {
    fn valid(&self) -> bool {
        self.data_iter.as_ref().map(BlockIter::valid).unwrap_or(false)
    }

    fn status(&self) -> Result<()> {
        match &self.status {
            Some(e) => Err(e.clone_shallow()),
            None => Ok(()),
        }
    }

    fn seek_to_first(&mut self) {
        self.status = None;
        self.index_iter.seek_to_first();
        self.load_data_block();
        if let Some(it) = &mut self.data_iter {
            it.seek_to_first();
        }
        self.skip_empty_blocks();
    }

    fn seek(&mut self, target: &[u8]) {
        self.status = None;
        self.index_iter.seek(target);
        self.load_data_block();
        if let Some(it) = &mut self.data_iter {
            it.seek(target);
        }
        self.skip_empty_blocks();
    }

    fn next(&mut self) {
        let it = self.data_iter.as_mut().expect("next() on invalid iterator");
        it.next();
        self.skip_empty_blocks();
    }

    fn key(&self) -> &[u8] {
        self.data_iter.as_ref().expect("invalid").key()
    }

    fn value(&self) -> &[u8] {
        self.data_iter.as_ref().expect("invalid").value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, seq_and_type, ValueType};
    use p2kvs_storage::{Env, MemEnv};
    use std::path::Path;

    fn config() -> TableConfig {
        TableConfig {
            block_size: 512,
            restart_interval: 4,
            bloom_bits_per_key: 10,
        }
    }

    fn build_table(env: &MemEnv, path: &Path, n: usize) -> (TableSummary, Arc<TableReader>) {
        let mut b = TableBuilder::new(env.new_writable(path).unwrap(), config());
        for i in 0..n {
            let ikey = make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
            b.add(&ikey, format!("value{i}").as_bytes()).unwrap();
        }
        let summary = b.finish().unwrap();
        let file = env.new_random_access(path).unwrap();
        let reader =
            Arc::new(TableReader::open(file, summary.file_size, 1, None).unwrap());
        (summary, reader)
    }

    #[test]
    fn build_and_get_all_keys() {
        let env = MemEnv::new();
        let (summary, reader) = build_table(&env, Path::new("t.sst"), 1000);
        assert_eq!(summary.entries, 1000);
        assert_eq!(reader.entries, 1000);
        for i in (0..1000).step_by(17) {
            let ikey = make_internal_key(
                format!("key{i:06}").as_bytes(),
                u64::MAX >> 8,
                ValueType::Value,
            );
            let (k, v) = reader.get(&ikey, false).unwrap().unwrap();
            assert_eq!(user_key(&k), format!("key{i:06}").as_bytes());
            assert_eq!(v, format!("value{i}").as_bytes());
        }
    }

    #[test]
    fn get_missing_key_filtered_by_bloom() {
        let env = MemEnv::new();
        let (_, reader) = build_table(&env, Path::new("t.sst"), 100);
        let ikey = make_internal_key(b"not-present", u64::MAX >> 8, ValueType::Value);
        // Bloom should reject the vast majority of absent keys without IO.
        let mut rejected = 0;
        for i in 0..100 {
            let ikey = make_internal_key(
                format!("absent{i:04}").as_bytes(),
                u64::MAX >> 8,
                ValueType::Value,
            );
            if !reader.may_contain(user_key(&ikey)) {
                rejected += 1;
            }
        }
        assert!(rejected > 90, "bloom rejected only {rejected}/100");
        // And a full get on a missing key returns a non-matching or absent
        // entry rather than a wrong one.
        if let Some((k, _)) = reader.get(&ikey, false).unwrap() {
            assert_ne!(user_key(&k), b"not-present");
        }
    }

    #[test]
    fn summary_bounds_are_correct() {
        let env = MemEnv::new();
        let (summary, _) = build_table(&env, Path::new("t.sst"), 50);
        assert_eq!(user_key(&summary.smallest), b"key000000");
        assert_eq!(user_key(&summary.largest), b"key000049");
        assert_eq!(
            env.file_size(Path::new("t.sst")).unwrap(),
            summary.file_size
        );
    }

    #[test]
    fn iterator_walks_everything_in_order() {
        let env = MemEnv::new();
        let (_, reader) = build_table(&env, Path::new("t.sst"), 500);
        let mut it = reader.iter();
        it.seek_to_first();
        let mut count = 0;
        let mut last: Option<Vec<u8>> = None;
        while it.valid() {
            let k = user_key(it.key()).to_vec();
            if let Some(prev) = &last {
                assert!(*prev < k);
            }
            last = Some(k);
            count += 1;
            it.next();
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn iterator_seek_mid_table() {
        let env = MemEnv::new();
        let (_, reader) = build_table(&env, Path::new("t.sst"), 300);
        let mut it = reader.iter();
        it.seek(&make_internal_key(b"key000150", u64::MAX >> 8, ValueType::Value));
        assert!(it.valid());
        assert_eq!(user_key(it.key()), b"key000150");
        it.seek(&make_internal_key(b"zzzz", u64::MAX >> 8, ValueType::Value));
        assert!(!it.valid());
    }

    #[test]
    fn tombstones_survive_roundtrip() {
        let env = MemEnv::new();
        let path = Path::new("d.sst");
        let mut b = TableBuilder::new(env.new_writable(path).unwrap(), config());
        let del = make_internal_key(b"gone", 5, ValueType::Deletion);
        b.add(&del, b"").unwrap();
        let put = make_internal_key(b"here", 6, ValueType::Value);
        b.add(&put, b"v").unwrap();
        let summary = b.finish().unwrap();
        let reader = Arc::new(
            TableReader::open(
                env.new_random_access(path).unwrap(),
                summary.file_size,
                2,
                None,
            )
            .unwrap(),
        );
        let (k, _) = reader
            .get(
                &make_internal_key(b"gone", u64::MAX >> 8, ValueType::Value),
                false,
            )
            .unwrap()
            .unwrap();
        assert_eq!(seq_and_type(&k), (5, ValueType::Deletion));
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let env = MemEnv::new();
        let path = Path::new("c.sst");
        let mut b = TableBuilder::new(env.new_writable(path).unwrap(), config());
        for i in 0..200 {
            let ikey = make_internal_key(format!("k{i:05}").as_bytes(), 1, ValueType::Value);
            b.add(&ikey, b"v").unwrap();
        }
        let summary = b.finish().unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let reader = Arc::new(
            TableReader::open(
                env.new_random_access(path).unwrap(),
                summary.file_size,
                3,
                Some(cache.clone()),
            )
            .unwrap(),
        );
        let ikey = make_internal_key(b"k00007", u64::MAX >> 8, ValueType::Value);
        let read0 = env.io_stats().bytes_read;
        reader.get(&ikey, false).unwrap().unwrap();
        let read1 = env.io_stats().bytes_read;
        reader.get(&ikey, false).unwrap().unwrap();
        let read2 = env.io_stats().bytes_read;
        assert!(read1 > read0, "first read hits the file");
        assert_eq!(read2, read1, "second read served from cache");
        let (hits, _) = cache.stats();
        assert!(hits >= 1);
    }

    #[test]
    fn iterator_status_surfaces_injected_read_error() {
        // A block read that fails mid-iteration ends the iterator; without
        // `status()` that is indistinguishable from a clean end of stream,
        // which once let a compaction silently truncate its output.
        use p2kvs_storage::{FaultPlan, FaultyEnv};
        let faulty = FaultyEnv::over_mem();
        let path = Path::new("f.sst");
        let mut b = TableBuilder::new(faulty.new_writable(path).unwrap(), config());
        for i in 0..500 {
            let ikey = make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
            b.add(&ikey, format!("value{i}").as_bytes()).unwrap();
        }
        let summary = b.finish().unwrap();
        let reader = Arc::new(
            TableReader::open(
                faulty.new_random_access(path).unwrap(),
                summary.file_size,
                9,
                None,
            )
            .unwrap(),
        );
        let mut it = reader.iter();
        it.seek_to_first();
        assert!(it.valid());
        // Fail the next read: the upcoming data-block load.
        faulty.set_plan(FaultPlan {
            fail_read: Some(faulty.reads() + 1),
            ..FaultPlan::default()
        });
        let mut seen = 0;
        while it.valid() {
            seen += 1;
            it.next();
        }
        assert!(seen < 500, "every block served from one read?");
        let err = it.status().expect_err("read error must surface");
        assert!(err.to_string().contains("injected fault"), "{err}");
        // The error is transient: re-seeking retries and succeeds.
        it.seek_to_first();
        let mut count = 0;
        while it.valid() {
            count += 1;
            it.next();
        }
        assert_eq!(count, 500);
        it.status().unwrap();
    }

    #[test]
    fn corrupt_table_detected() {
        let env = MemEnv::new();
        let path = Path::new("x.sst");
        let (summary, _) = build_table(&env, Path::new("x.sst"), 100);
        let mut data = p2kvs_storage::env::read_all(&env, path).unwrap();
        data[10] ^= 0xff;
        p2kvs_storage::env::write_all(&env, path, &data).unwrap();
        let reader = TableReader::open(
            env.new_random_access(path).unwrap(),
            summary.file_size,
            4,
            None,
        )
        .unwrap();
        let ikey = make_internal_key(b"key000000", u64::MAX >> 8, ValueType::Value);
        assert!(matches!(reader.get(&ikey, false), Err(Error::Corruption(_))));
        // Truncated file fails to open.
        assert!(TableReader::open(
            env.new_random_access(path).unwrap(),
            10,
            5,
            None
        )
        .is_err());
    }

    #[test]
    fn empty_table() {
        let env = MemEnv::new();
        let path = Path::new("e.sst");
        let b = TableBuilder::new(env.new_writable(path).unwrap(), config());
        let summary = b.finish().unwrap();
        assert_eq!(summary.entries, 0);
        // An empty table still has a valid (single restart, zero entry)
        // index? No: the index block would be empty, which Block::new
        // rejects only if it has no restart array. BlockBuilder always
        // writes one restart, so the open must succeed.
        let reader = Arc::new(
            TableReader::open(
                env.new_random_access(path).unwrap(),
                summary.file_size,
                6,
                None,
            )
            .unwrap(),
        );
        let mut it = reader.iter();
        it.seek_to_first();
        assert!(!it.valid());
    }
}
