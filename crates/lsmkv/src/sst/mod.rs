//! Sorted String Tables: blocks, bloom filters, cache, builder and reader.

pub mod block;
pub mod bloom;
pub mod cache;
pub mod table;

pub use block::{Block, BlockBuilder, BlockIter};
pub use bloom::BloomPolicy;
pub use cache::BlockCache;
pub use table::{BlockHandle, TableBuilder, TableConfig, TableIterator, TableReader, TableSummary};
