//! Bloom filters for SST tables (LevelDB `FilterPolicy` style).
//!
//! One filter is built per table over all user keys it contains; GETs probe
//! it before touching the index or data blocks, which is what keeps
//! multi-level reads cheap and lets the paper's read-heavy workloads (B, C,
//! D) scale with instance count rather than with LSM depth.

use p2kvs_util::hash::bloom_hash;

/// Builds and probes bloom filters with `bits_per_key` bits per key.
#[derive(Debug, Clone, Copy)]
pub struct BloomPolicy {
    bits_per_key: usize,
    /// Number of probes, derived as `bits_per_key × ln 2`.
    k: u32,
}

impl BloomPolicy {
    /// Creates a policy; `bits_per_key = 10` gives ~1% false positives.
    pub fn new(bits_per_key: usize) -> BloomPolicy {
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        BloomPolicy { bits_per_key, k }
    }

    /// Builds a filter over `keys`, appending it to `dst`. The final byte
    /// stores the probe count so readers need no out-of-band config.
    pub fn create_filter(&self, keys: &[&[u8]], dst: &mut Vec<u8>) {
        let bits = (keys.len() * self.bits_per_key).max(64);
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;
        let start = dst.len();
        dst.resize(start + bytes, 0);
        for key in keys {
            let mut h = bloom_hash(key);
            let delta = h.rotate_left(15);
            for _ in 0..self.k {
                let bit = (h as usize) % bits;
                dst[start + bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        dst.push(self.k as u8);
    }

    /// Whether `key` may be in the filter (`false` = definitely absent).
    pub fn key_may_match(key: &[u8], filter: &[u8]) -> bool {
        if filter.len() < 2 {
            return true;
        }
        let k = filter[filter.len() - 1] as u32;
        if k > 30 {
            // Reserved for future encodings: err on the safe side.
            return true;
        }
        let data = &filter[..filter.len() - 1];
        let bits = data.len() * 8;
        let mut h = bloom_hash(key);
        let delta = h.rotate_left(15);
        for _ in 0..k {
            let bit = (h as usize) % bits;
            if data[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_of(keys: &[&[u8]]) -> Vec<u8> {
        let mut f = Vec::new();
        BloomPolicy::new(10).create_filter(keys, &mut f);
        f
    }

    #[test]
    fn empty_filter_matches_nothing_definite() {
        let f = filter_of(&[]);
        // An empty filter has all bits clear: everything is "absent".
        assert!(!BloomPolicy::key_may_match(b"anything", &f));
    }

    #[test]
    fn present_keys_always_match() {
        let keys: Vec<Vec<u8>> = (0..5000).map(|i| format!("key{i:07}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = filter_of(&refs);
        for k in &keys {
            assert!(BloomPolicy::key_may_match(k, &f), "false negative on {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<Vec<u8>> = (0..10_000).map(|i| format!("in{i:07}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = filter_of(&refs);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if BloomPolicy::key_may_match(format!("out{i:07}").as_bytes(), &f) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn short_or_garbage_filter_is_permissive() {
        assert!(BloomPolicy::key_may_match(b"k", &[]));
        assert!(BloomPolicy::key_may_match(b"k", &[0xff]));
        // Probe count 31 is reserved.
        assert!(BloomPolicy::key_may_match(b"k", &[0x00, 0x00, 31]));
    }

    #[test]
    fn single_key_filter() {
        let f = filter_of(&[b"lonely"]);
        assert!(BloomPolicy::key_may_match(b"lonely", &f));
        let mut miss = 0;
        for i in 0..100 {
            if !BloomPolicy::key_may_match(format!("other{i}").as_bytes(), &f) {
                miss += 1;
            }
        }
        assert!(miss > 90, "only {miss}/100 definite misses");
    }
}
