//! SST data/index blocks with prefix compression and restart points.
//!
//! Entry encoding (LevelDB format):
//!
//! ```text
//! shared: varint | non_shared: varint | value_len: varint
//! key_delta: non_shared bytes | value: value_len bytes
//! ```
//!
//! Every `restart_interval` entries the full key is stored and its offset
//! recorded in the restart array, enabling binary search:
//!
//! ```text
//! entries... | restart_offsets: fixed32 × n | n: fixed32
//! ```

use std::cmp::Ordering;
use std::sync::Arc;

use p2kvs_util::coding::{get_fixed32, get_varint32, put_fixed32, put_varint32};

use crate::error::{Error, Result};
use crate::types::internal_cmp;

/// Builds one block.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    counter: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    /// Creates a builder restarting prefix compression every
    /// `restart_interval` entries.
    pub fn new(restart_interval: usize) -> BlockBuilder {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            counter: 0,
            last_key: Vec::new(),
            entries: 0,
        }
    }

    /// Adds an entry; keys must arrive in strictly increasing internal-key
    /// order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.entries == 0 || internal_cmp(&self.last_key, key) == Ordering::Less,
            "unsorted block insertion"
        );
        let shared = if self.counter < self.restart_interval {
            self.last_key
                .iter()
                .zip(key.iter())
                .take_while(|(a, b)| a == b)
                .count()
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.counter = 0;
            0
        };
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, (key.len() - shared) as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
        self.entries += 1;
    }

    /// Serializes the block, consuming the builder's buffer.
    pub fn finish(mut self) -> Vec<u8> {
        for r in &self.restarts {
            put_fixed32(&mut self.buf, *r);
        }
        put_fixed32(&mut self.buf, self.restarts.len() as u32);
        self.buf
    }

    /// Estimated serialized size so far.
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether no entries were added.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The last key added (empty before the first add).
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }
}

/// A parsed, immutable block.
pub struct Block {
    data: Arc<Vec<u8>>,
    /// Offset of the restart array.
    restarts_off: usize,
    num_restarts: usize,
}

impl Block {
    /// Parses a serialized block.
    pub fn new(data: Arc<Vec<u8>>) -> Result<Block> {
        if data.len() < 4 {
            return Err(Error::corruption("block too small"));
        }
        let num_restarts = get_fixed32(&data[data.len() - 4..]) as usize;
        let needed = 4 + num_restarts * 4;
        if data.len() < needed || num_restarts == 0 {
            return Err(Error::corruption("bad restart array"));
        }
        Ok(Block {
            restarts_off: data.len() - needed,
            data,
            num_restarts,
        })
    }

    fn restart_point(&self, i: usize) -> usize {
        get_fixed32(&self.data[self.restarts_off + i * 4..]) as usize
    }

    /// An iterator over the block's entries.
    pub fn iter(self: &Arc<Self>) -> BlockIter {
        BlockIter {
            block: self.clone(),
            pos: usize::MAX,
            key: Vec::new(),
            val_range: (0, 0),
            next_pos: 0,
        }
    }

    /// Serialized bytes (for cache charging).
    pub fn size(&self) -> usize {
        self.data.len()
    }
}

/// Cursor over a [`Block`].
pub struct BlockIter {
    block: Arc<Block>,
    /// Offset of the current entry; `usize::MAX` = invalid.
    pos: usize,
    key: Vec<u8>,
    val_range: (usize, usize),
    /// Offset of the next entry.
    next_pos: usize,
}

impl BlockIter {
    /// Whether the cursor points at an entry.
    pub fn valid(&self) -> bool {
        self.pos != usize::MAX
    }

    /// Positions at the first entry (invalid if block has none).
    pub fn seek_to_first(&mut self) {
        self.key.clear();
        self.next_pos = 0;
        self.advance();
    }

    /// Positions at the first entry with key `>= target` (internal order).
    pub fn seek(&mut self, target: &[u8]) {
        // Binary search the restart array for the last restart whose key is
        // < target.
        let (mut lo, mut hi) = (0usize, self.block.num_restarts - 1);
        while lo < hi {
            let mid = (lo + hi + 1) / 2;
            let key = self.restart_key(mid);
            if internal_cmp(&key, target) == Ordering::Less {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        self.key.clear();
        self.next_pos = self.block.restart_point(lo);
        self.advance();
        while self.valid() && internal_cmp(&self.key, target) == Ordering::Less {
            self.next();
        }
    }

    /// Full key stored at restart point `i`.
    fn restart_key(&self, i: usize) -> Vec<u8> {
        let mut off = self.block.restart_point(i);
        let data = &self.block.data[..self.block.restarts_off];
        let (_shared, used) = get_varint32(&data[off..]).expect("corrupt restart entry");
        off += used;
        let (non_shared, used) = get_varint32(&data[off..]).expect("corrupt restart entry");
        off += used;
        let (_vlen, used) = get_varint32(&data[off..]).expect("corrupt restart entry");
        off += used;
        data[off..off + non_shared as usize].to_vec()
    }

    /// Decodes the entry at `next_pos` into the cursor state.
    fn advance(&mut self) {
        let data = &self.block.data[..self.block.restarts_off];
        if self.next_pos >= data.len() {
            self.pos = usize::MAX;
            return;
        }
        self.pos = self.next_pos;
        let mut off = self.pos;
        let (shared, used) = get_varint32(&data[off..]).expect("corrupt block entry");
        off += used;
        let (non_shared, used) = get_varint32(&data[off..]).expect("corrupt block entry");
        off += used;
        let (vlen, used) = get_varint32(&data[off..]).expect("corrupt block entry");
        off += used;
        self.key.truncate(shared as usize);
        self.key
            .extend_from_slice(&data[off..off + non_shared as usize]);
        off += non_shared as usize;
        self.val_range = (off, off + vlen as usize);
        self.next_pos = off + vlen as usize;
    }

    /// Advances to the next entry. Requires `valid()`.
    pub fn next(&mut self) {
        assert!(self.valid(), "next() on invalid block iterator");
        self.advance();
    }

    /// Current key. Requires `valid()`.
    pub fn key(&self) -> &[u8] {
        assert!(self.valid());
        &self.key
    }

    /// Current value. Requires `valid()`.
    pub fn value(&self) -> &[u8] {
        assert!(self.valid());
        &self.block.data[self.val_range.0..self.val_range.1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, user_key, ValueType};

    fn ik(k: &str, seq: u64) -> Vec<u8> {
        make_internal_key(k.as_bytes(), seq, ValueType::Value)
    }

    fn build(entries: &[(Vec<u8>, Vec<u8>)], restart: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new(restart);
        for (k, v) in entries {
            b.add(k, v);
        }
        Arc::new(Block::new(Arc::new(b.finish())).unwrap())
    }

    fn sample(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| (ik(&format!("key{i:06}"), 1), format!("value{i}").into_bytes()))
            .collect()
    }

    #[test]
    fn roundtrip_various_restart_intervals() {
        let entries = sample(100);
        for restart in [1usize, 2, 16, 1000] {
            let block = build(&entries, restart);
            let mut it = block.iter();
            it.seek_to_first();
            for (k, v) in &entries {
                assert!(it.valid());
                assert_eq!(it.key(), k.as_slice());
                assert_eq!(it.value(), v.as_slice());
                it.next();
            }
            assert!(!it.valid());
        }
    }

    #[test]
    fn seek_exact_and_between() {
        let entries = sample(50);
        let block = build(&entries, 4);
        let mut it = block.iter();
        // Exact key.
        it.seek(&ik("key000025", u64::MAX >> 8));
        assert!(it.valid());
        assert_eq!(user_key(it.key()), b"key000025");
        // Between keys: lands on the next one.
        it.seek(&ik("key000025x", u64::MAX >> 8));
        assert!(it.valid());
        assert_eq!(user_key(it.key()), b"key000026");
        // Before all.
        it.seek(&ik("a", u64::MAX >> 8));
        assert!(it.valid());
        assert_eq!(user_key(it.key()), b"key000000");
        // Past all.
        it.seek(&ik("zzz", u64::MAX >> 8));
        assert!(!it.valid());
    }

    #[test]
    fn empty_values_and_shared_prefixes() {
        let entries = vec![
            (ik("aaaa", 1), Vec::new()),
            (ik("aaab", 1), b"v".to_vec()),
            (ik("aabb", 1), Vec::new()),
        ];
        let block = build(&entries, 16);
        let mut it = block.iter();
        it.seek_to_first();
        assert_eq!(it.value(), b"");
        it.next();
        assert_eq!(it.value(), b"v");
        it.next();
        assert_eq!(user_key(it.key()), b"aabb");
    }

    #[test]
    fn single_entry_block() {
        let entries = vec![(ik("only", 9), b"one".to_vec())];
        let block = build(&entries, 16);
        let mut it = block.iter();
        it.seek(&ik("only", u64::MAX >> 8));
        assert!(it.valid());
        assert_eq!(it.value(), b"one");
    }

    #[test]
    fn corrupt_blocks_rejected() {
        assert!(Block::new(Arc::new(vec![])).is_err());
        assert!(Block::new(Arc::new(vec![0, 0, 0])).is_err());
        // num_restarts = 0.
        assert!(Block::new(Arc::new(vec![0, 0, 0, 0])).is_err());
        // num_restarts larger than the data.
        assert!(Block::new(Arc::new(vec![0xff, 0xff, 0xff, 0x7f])).is_err());
    }

    #[test]
    fn size_estimate_tracks_finish() {
        let entries = sample(64);
        let mut b = BlockBuilder::new(8);
        for (k, v) in &entries {
            b.add(k, v);
        }
        let estimate = b.size_estimate();
        let finished = b.finish().len();
        assert_eq!(estimate, finished);
    }

    #[test]
    fn same_user_key_multiple_seqs() {
        // Internal order: seq descending.
        let entries = vec![
            (ik("k", 9), b"new".to_vec()),
            (ik("k", 5), b"mid".to_vec()),
            (ik("k", 1), b"old".to_vec()),
        ];
        let block = build(&entries, 2);
        let mut it = block.iter();
        // Snapshot seek at seq 6 must land on seq-5 entry.
        it.seek(&ik("k", 6));
        assert!(it.valid());
        assert_eq!(it.value(), b"mid");
    }
}
