//! Sharded LRU block cache.
//!
//! Caches parsed [`Block`]s keyed by `(table_id, block_offset)`. Sharding
//! by key hash keeps lock hold times short; within a shard a generation
//! queue implements LRU with lazy eviction (stale queue entries are skipped
//! when they resurface).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use super::block::Block;

const SHARDS: usize = 8;

/// Cache key: table id + offset of the block within the table file.
pub type CacheKey = (u64, u64);

struct Entry {
    block: Arc<Block>,
    charge: usize,
    gen: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    /// Recency queue of (key, gen); entries with stale gens are skipped.
    queue: VecDeque<(CacheKey, u64)>,
    usage: usize,
    capacity: usize,
    next_gen: u64,
}

impl Shard {
    fn touch(&mut self, key: CacheKey) -> Option<Arc<Block>> {
        // Split borrow: bump the generation first.
        let gen = self.next_gen;
        let entry = self.map.get_mut(&key)?;
        self.next_gen += 1;
        entry.gen = gen;
        let block = entry.block.clone();
        self.queue.push_back((key, gen));
        self.compact_queue();
        Some(block)
    }

    fn insert(&mut self, key: CacheKey, block: Arc<Block>) {
        let charge = block.size();
        let gen = self.next_gen;
        self.next_gen += 1;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                block,
                charge,
                gen,
            },
        ) {
            self.usage -= old.charge;
        }
        self.usage += charge;
        self.queue.push_back((key, gen));
        self.evict();
    }

    fn evict(&mut self) {
        while self.usage > self.capacity {
            let Some((key, gen)) = self.queue.pop_front() else {
                return;
            };
            let stale = self.map.get(&key).map(|e| e.gen != gen).unwrap_or(true);
            if stale {
                continue;
            }
            if let Some(entry) = self.map.remove(&key) {
                self.usage -= entry.charge;
            }
        }
    }

    /// Bounds queue growth caused by repeated touches.
    fn compact_queue(&mut self) {
        if self.queue.len() > self.map.len() * 4 + 16 {
            let map = &self.map;
            self.queue
                .retain(|(key, gen)| map.get(key).map(|e| e.gen == *gen).unwrap_or(false));
        }
    }
}

/// A thread-safe sharded LRU cache of parsed blocks.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockCache {
    /// Creates a cache with `capacity` bytes total.
    pub fn new(capacity: usize) -> BlockCache {
        let per_shard = capacity / SHARDS;
        BlockCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        queue: VecDeque::new(),
                        usage: 0,
                        capacity: per_shard,
                        next_gen: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key.1;
        &self.shards[(h as usize) % SHARDS]
    }

    /// Looks up a block, refreshing its recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Block>> {
        let got = self.shard(key).lock().touch(*key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Inserts a block (possibly evicting older ones).
    pub fn insert(&self, key: CacheKey, block: Arc<Block>) {
        self.shard(&key).lock().insert(key, block);
    }

    /// Approximate resident bytes.
    pub fn usage(&self) -> usize {
        self.shards.iter().map(|s| s.lock().usage).sum()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::block::BlockBuilder;
    use crate::types::{make_internal_key, ValueType};

    fn block_of_size(seed: u64, approx: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new(16);
        let mut i = 0u64;
        while b.size_estimate() < approx {
            let key = make_internal_key(
                format!("k{seed:04}-{i:08}").as_bytes(),
                1,
                ValueType::Value,
            );
            b.add(&key, &[0u8; 64]);
            i += 1;
        }
        Arc::new(Block::new(Arc::new(b.finish())).unwrap())
    }

    #[test]
    fn hit_and_miss() {
        let cache = BlockCache::new(1 << 20);
        let blk = block_of_size(1, 1024);
        assert!(cache.get(&(1, 0)).is_none());
        cache.insert((1, 0), blk.clone());
        let got = cache.get(&(1, 0)).unwrap();
        assert_eq!(got.size(), blk.size());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity() {
        let cache = BlockCache::new(64 * 1024);
        for i in 0..200u64 {
            cache.insert((i, 0), block_of_size(i, 4096));
        }
        // Per-shard capacity is 8 KiB; usage must be bounded near capacity.
        assert!(cache.usage() <= 96 * 1024, "usage {}", cache.usage());
        // Recently inserted entries survive.
        assert!(cache.get(&(199, 0)).is_some() || cache.get(&(198, 0)).is_some());
    }

    #[test]
    fn lru_prefers_recent_entries() {
        // Single-shard-sized cache exercise: repeatedly touch one key while
        // inserting others; the touched key should survive.
        let cache = BlockCache::new(160 * 1024);
        cache.insert((42, 0), block_of_size(42, 4096));
        for i in 0..500u64 {
            let _ = cache.get(&(42, 0));
            cache.insert((1000 + i, 0), block_of_size(i, 4096));
        }
        assert!(cache.get(&(42, 0)).is_some(), "hot key was evicted");
    }

    #[test]
    fn reinsert_replaces_charge() {
        let cache = BlockCache::new(1 << 20);
        cache.insert((7, 7), block_of_size(1, 8192));
        let before = cache.usage();
        cache.insert((7, 7), block_of_size(2, 8192));
        let after = cache.usage();
        assert!(after <= before + 9000, "charge leaked: {before} -> {after}");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(BlockCache::new(256 * 1024));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..300u64 {
                        let key = (i % 50, t);
                        if cache.get(&key).is_none() {
                            cache.insert(key, block_of_size(i, 2048));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.usage() <= 300 * 1024);
    }
}
