//! Property-based tests of the engine's core structures and formats.

use std::sync::Arc;

use proptest::prelude::*;

use lsmkv::batch::WriteBatch;
use lsmkv::memtable::MemTable;
use lsmkv::sst::{Block, BlockBuilder, TableBuilder, TableConfig, TableReader};
use lsmkv::types::{internal_cmp, make_internal_key, user_key, ValueType};
use lsmkv::wal::{LogReader, LogWriter};
use p2kvs_storage::{Env, MemEnv};

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..40)
}

fn arb_value() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The WAL reproduces any sequence of records byte-for-byte.
    #[test]
    fn wal_roundtrips_arbitrary_records(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..70_000), 1..30)
    ) {
        let env = MemEnv::new();
        let path = std::path::Path::new("p.log");
        let mut w = LogWriter::new(env.new_writable(path).unwrap());
        for r in &records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut reader = LogReader::new(env.new_sequential(path).unwrap());
        let mut buf = Vec::new();
        for expect in &records {
            prop_assert!(reader.read_record(&mut buf).unwrap());
            prop_assert_eq!(&buf, expect);
        }
        prop_assert!(!reader.read_record(&mut buf).unwrap());
    }

    /// A truncated WAL never yields wrong records — only a (possibly
    /// shorter) prefix of what was written.
    #[test]
    fn wal_truncation_yields_prefix(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..500), 1..20),
        cut in any::<u16>(),
    ) {
        let env = MemEnv::new();
        let path = std::path::Path::new("p.log");
        let mut w = LogWriter::new(env.new_writable(path).unwrap());
        for r in &records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut data = p2kvs_storage::env::read_all(&env, path).unwrap();
        let cut = (cut as usize) % (data.len() + 1);
        data.truncate(cut);
        p2kvs_storage::env::write_all(&env, path, &data).unwrap();
        let mut reader = LogReader::new(env.new_sequential(path).unwrap());
        let mut buf = Vec::new();
        let mut i = 0;
        while let Ok(true) = reader.read_record(&mut buf) {
            prop_assert!(i < records.len());
            prop_assert_eq!(&buf, &records[i], "record {} corrupted by truncation", i);
            i += 1;
        }
    }

    /// WriteBatch encodes/decodes any op sequence faithfully.
    #[test]
    fn write_batch_roundtrip(
        ops in proptest::collection::vec((arb_key(), proptest::option::of(arb_value())), 0..40),
        gsn in any::<u64>(),
        seq in 0u64..(1 << 50),
    ) {
        let mut b = WriteBatch::new();
        b.set_gsn(gsn);
        b.set_sequence(seq);
        for (k, v) in &ops {
            match v {
                Some(v) => b.put(k, v),
                None => b.delete(k),
            }
        }
        let decoded = WriteBatch::from_data(b.data()).unwrap();
        prop_assert_eq!(decoded.gsn(), gsn);
        prop_assert_eq!(decoded.sequence(), seq);
        prop_assert_eq!(decoded.count() as usize, ops.len());
        for (op, (k, v)) in decoded.iter().zip(&ops) {
            match (op.unwrap(), v) {
                (lsmkv::BatchOp::Put { key, value }, Some(ev)) => {
                    prop_assert_eq!(key, &k[..]);
                    prop_assert_eq!(value, &ev[..]);
                }
                (lsmkv::BatchOp::Delete { key }, None) => prop_assert_eq!(key, &k[..]),
                other => prop_assert!(false, "op kind mismatch: {:?}", other.0),
            }
        }
    }

    /// MemTable lookups agree with a BTreeMap model at every snapshot.
    #[test]
    fn memtable_matches_model(
        ops in proptest::collection::vec((arb_key(), proptest::option::of(arb_value())), 1..150),
        probe_seq in 1u64..200,
    ) {
        let mem = MemTable::new();
        let mut model_at: Vec<std::collections::BTreeMap<Vec<u8>, Option<Vec<u8>>>> = Vec::new();
        let mut model = std::collections::BTreeMap::new();
        for (i, (k, v)) in ops.iter().enumerate() {
            let seq = i as u64 + 1;
            match v {
                Some(v) => {
                    mem.add(seq, ValueType::Value, k, v);
                    model.insert(k.clone(), Some(v.clone()));
                }
                None => {
                    mem.add(seq, ValueType::Deletion, k, b"");
                    model.insert(k.clone(), None);
                }
            }
            model_at.push(model.clone());
        }
        let snap = (probe_seq as usize).min(ops.len());
        let model = &model_at[snap - 1];
        for (k, _) in &ops {
            let got = match mem.get(k, snap as u64) {
                lsmkv::memtable::MemGet::Found(v) => Some(Some(v)),
                lsmkv::memtable::MemGet::Deleted => Some(None),
                lsmkv::memtable::MemGet::NotFound => None,
            };
            prop_assert_eq!(got, model.get(k).cloned(), "key {:?} at seq {}", k, snap);
        }
    }

    /// Blocks reproduce arbitrary sorted entry sets and seek correctly.
    #[test]
    fn block_roundtrip_and_seek(
        mut keys in proptest::collection::btree_set(arb_key(), 1..120),
        restart in 1usize..32,
    ) {
        let keys: Vec<Vec<u8>> = std::mem::take(&mut keys).into_iter().collect();
        let mut b = BlockBuilder::new(restart);
        for (i, k) in keys.iter().enumerate() {
            let ik = make_internal_key(k, 1, ValueType::Value);
            b.add(&ik, format!("v{i}").as_bytes());
        }
        let block = Arc::new(Block::new(Arc::new(b.finish())).unwrap());
        // Full iteration returns everything in order.
        let mut it = block.iter();
        it.seek_to_first();
        for k in &keys {
            prop_assert!(it.valid());
            prop_assert_eq!(user_key(it.key()), &k[..]);
            it.next();
        }
        prop_assert!(!it.valid());
        // Seeking an arbitrary existing key lands on it.
        let probe = &keys[keys.len() / 2];
        let target = make_internal_key(probe, u64::MAX >> 8, ValueType::Value);
        it.seek(&target);
        prop_assert!(it.valid());
        prop_assert_eq!(user_key(it.key()), &probe[..]);
    }

    /// Tables reproduce arbitrary sorted entries through build + read.
    #[test]
    fn table_roundtrip(
        entries in proptest::collection::btree_map(arb_key(), arb_value(), 1..300),
        block_size in 128usize..2048,
    ) {
        let env = MemEnv::new();
        let path = std::path::Path::new("prop.sst");
        let mut b = TableBuilder::new(
            env.new_writable(path).unwrap(),
            TableConfig { block_size, restart_interval: 8, bloom_bits_per_key: 10 },
        );
        for (i, (k, v)) in entries.iter().enumerate() {
            let ik = make_internal_key(k, i as u64 + 1, ValueType::Value);
            b.add(&ik, v).unwrap();
        }
        let summary = b.finish().unwrap();
        prop_assert_eq!(summary.entries as usize, entries.len());
        let reader = Arc::new(
            TableReader::open(env.new_random_access(path).unwrap(), summary.file_size, 1, None)
                .unwrap(),
        );
        for (k, v) in &entries {
            let lookup = make_internal_key(k, u64::MAX >> 8, ValueType::Value);
            let (ik, got) = reader.get(&lookup, false).unwrap().expect("present key");
            prop_assert_eq!(user_key(&ik), &k[..]);
            prop_assert_eq!(&got, v);
        }
    }

    /// Internal-key ordering is a strict total order consistent with
    /// (user_key asc, seq desc).
    #[test]
    fn internal_key_order_properties(
        a in arb_key(), b in arb_key(),
        sa in 0u64..(1 << 40), sb in 0u64..(1 << 40),
    ) {
        let ka = make_internal_key(&a, sa, ValueType::Value);
        let kb = make_internal_key(&b, sb, ValueType::Value);
        let ord = internal_cmp(&ka, &kb);
        prop_assert_eq!(internal_cmp(&kb, &ka), ord.reverse());
        if a == b {
            prop_assert_eq!(ord, sb.cmp(&sa), "same user key orders by seq desc");
        } else {
            prop_assert_eq!(ord, a.cmp(&b), "different user keys order lexicographically");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Whole-DB property: any single-threaded history matches a model,
    /// before and after flush + compaction + reopen.
    #[test]
    fn db_matches_model_through_flush_and_reopen(
        ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..12), proptest::option::of(arb_value())),
            1..200,
        )
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let mut opts = lsmkv::Options::rocksdb_like(env.clone());
        opts.memtable_size = 8 << 10; // Force frequent flushes.
        opts.target_file_size = 4 << 10;
        opts.base_level_size = 16 << 10;
        let mut model = std::collections::BTreeMap::new();
        {
            let db = lsmkv::Db::open(opts.clone(), "pdb").unwrap();
            let wo = lsmkv::WriteOptions::default();
            for (k, v) in &ops {
                match v {
                    Some(v) => {
                        db.put(&wo, k, v).unwrap();
                        model.insert(k.clone(), v.clone());
                    }
                    None => {
                        db.delete(&wo, k).unwrap();
                        model.remove(k);
                    }
                }
            }
            db.flush().unwrap();
            db.wait_idle().unwrap();
            for (k, _) in &ops {
                prop_assert_eq!(db.get(k).unwrap(), model.get(k).cloned());
            }
            // Iterator equals model iteration.
            let mut it = db.iter().unwrap();
            it.seek_to_first();
            for (mk, mv) in &model {
                prop_assert!(it.valid(), "iterator ended early at {:?}", mk);
                prop_assert_eq!(it.key(), &mk[..]);
                prop_assert_eq!(it.value(), &mv[..]);
                it.next();
            }
            prop_assert!(!it.valid());
        }
        let db = lsmkv::Db::open(opts, "pdb").unwrap();
        for (k, _) in &ops {
            prop_assert_eq!(db.get(k).unwrap(), model.get(k).cloned(), "post-reopen {:?}", k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential property for the tentpole: for any operation stream
    /// and any subcompaction fan-out, the multi-threaded range-partitioned
    /// compactor leaves level contents byte-identical to the
    /// single-threaded compactor — same live keys, same values, same
    /// iterator order.
    #[test]
    fn parallel_compaction_is_equivalent_to_serial(
        ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..10), proptest::option::of(arb_value())),
            1..300,
        ),
        subs in 2usize..6,
        threads in 2usize..4,
    ) {
        let run = |compaction_threads: usize, subcompactions: usize| {
            let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
            let mut opts = lsmkv::Options::rocksdb_like(env);
            opts.memtable_size = 4 << 10; // Force frequent flush + compaction.
            opts.target_file_size = 2 << 10;
            opts.base_level_size = 8 << 10;
            opts.compaction_threads = compaction_threads;
            opts.subcompactions = subcompactions;
            let db = lsmkv::Db::open(opts, "pdb").unwrap();
            let wo = lsmkv::WriteOptions::default();
            for (k, v) in &ops {
                match v {
                    Some(v) => db.put(&wo, k, v).unwrap(),
                    None => db.delete(&wo, k).unwrap(),
                }
            }
            db.flush().unwrap();
            db.wait_idle().unwrap();
            let mut it = db.iter().unwrap();
            it.seek_to_first();
            let mut out = Vec::new();
            while it.valid() {
                out.push((it.key().to_vec(), it.value().to_vec()));
                it.next();
            }
            out
        };
        let serial = run(1, 1);
        let parallel = run(threads, subs);
        prop_assert_eq!(serial, parallel);
    }
}
