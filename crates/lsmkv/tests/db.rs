//! End-to-end tests of the `lsmkv` engine: write/read paths, flushes,
//! compactions, recovery, snapshots, concurrency, and the engine modes the
//! p2KVS paper layers on (RocksDB-like / LevelDB-like / PebblesDB-like).

use std::sync::Arc;

use lsmkv::{CompactionStyle, Db, Options, ReadOptions, SyncPolicy, WriteBatch, WriteOptions};
use p2kvs_storage::{Env, EnvRef, MemEnv};

fn small_opts(env: EnvRef) -> Options {
    let mut o = Options::rocksdb_like(env);
    o.memtable_size = 32 << 10;
    o.target_file_size = 16 << 10;
    o.base_level_size = 64 << 10;
    o.block_cache_size = 128 << 10;
    o
}

fn wo() -> WriteOptions {
    WriteOptions::default()
}

#[test]
fn put_get_delete_roundtrip() {
    let db = Db::open(Options::for_test(), "db").unwrap();
    db.put(&wo(), b"hello", b"world").unwrap();
    assert_eq!(db.get(b"hello").unwrap().unwrap(), b"world");
    assert_eq!(db.get(b"missing").unwrap(), None);
    db.delete(&wo(), b"hello").unwrap();
    assert_eq!(db.get(b"hello").unwrap(), None);
}

#[test]
fn overwrite_returns_latest() {
    let db = Db::open(Options::for_test(), "db").unwrap();
    for i in 0..10 {
        db.put(&wo(), b"k", format!("v{i}").as_bytes()).unwrap();
    }
    assert_eq!(db.get(b"k").unwrap().unwrap(), b"v9");
}

#[test]
fn write_batch_is_atomic_and_ordered() {
    let db = Db::open(Options::for_test(), "db").unwrap();
    let mut b = WriteBatch::new();
    b.put(b"a", b"1");
    b.put(b"b", b"2");
    b.delete(b"a");
    db.write(&wo(), b).unwrap();
    assert_eq!(db.get(b"a").unwrap(), None);
    assert_eq!(db.get(b"b").unwrap().unwrap(), b"2");
}

#[test]
fn empty_batch_is_noop() {
    let db = Db::open(Options::for_test(), "db").unwrap();
    db.write(&wo(), WriteBatch::new()).unwrap();
    assert_eq!(db.visible_sequence(), 0);
}

#[test]
fn data_survives_memtable_flush() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Db::open(small_opts(env), "db").unwrap();
    let n = 2000;
    for i in 0..n {
        db.put(&wo(), format!("key{i:06}").as_bytes(), format!("value{i}").as_bytes())
            .unwrap();
    }
    db.flush().unwrap();
    assert!(db.num_files_at_level(0) > 0 || db.level_sizes()[1..].iter().any(|&s| s > 0));
    for i in (0..n).step_by(37) {
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
            format!("value{i}").as_bytes(),
            "key{i:06} after flush"
        );
    }
}

#[test]
fn compaction_keeps_data_readable() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Db::open(small_opts(env), "db").unwrap();
    let n = 8000;
    // Overwrite in several passes to force multi-level compaction.
    for pass in 0..3 {
        for i in 0..n {
            db.put(
                &wo(),
                format!("key{i:06}").as_bytes(),
                format!("pass{pass}-{i}").as_bytes(),
            )
            .unwrap();
        }
    }
    db.flush().unwrap();
    db.wait_idle().unwrap();
    let stats = db.stats();
    assert!(
        stats.compactions.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "workload must trigger compactions"
    );
    for i in (0..n).step_by(61) {
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
            format!("pass2-{i}").as_bytes()
        );
    }
    // Deeper levels must be populated.
    let sizes = db.level_sizes();
    assert!(sizes[1..].iter().any(|&s| s > 0), "levels: {sizes:?}");
}

#[test]
fn deletes_survive_flush_and_compaction() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Db::open(small_opts(env), "db").unwrap();
    for i in 0..3000 {
        db.put(&wo(), format!("k{i:06}").as_bytes(), b"v").unwrap();
    }
    for i in (0..3000).step_by(2) {
        db.delete(&wo(), format!("k{i:06}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_idle().unwrap();
    for i in 0..3000 {
        let got = db.get(format!("k{i:06}").as_bytes()).unwrap();
        if i % 2 == 0 {
            assert_eq!(got, None, "k{i:06} should be deleted");
        } else {
            assert_eq!(got.unwrap(), b"v");
        }
    }
}

#[test]
fn recovery_replays_wal() {
    let env: EnvRef = Arc::new(MemEnv::new());
    {
        let db = Db::open(Options::rocksdb_like(env.clone()), "db").unwrap();
        for i in 0..500 {
            db.put(&wo(), format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Drop without flush: data only in WAL + memtable.
    }
    let db = Db::open(Options::rocksdb_like(env), "db").unwrap();
    for i in (0..500).step_by(17) {
        assert_eq!(
            db.get(format!("k{i}").as_bytes()).unwrap().unwrap(),
            format!("v{i}").as_bytes()
        );
    }
    assert!(db.visible_sequence() >= 500);
}

#[test]
fn recovery_after_power_failure_keeps_synced_prefix() {
    let env = Arc::new(MemEnv::new());
    let env_ref: EnvRef = env.clone();
    {
        let mut opts = Options::rocksdb_like(env_ref.clone());
        opts.sync = SyncPolicy::Always;
        let db = Db::open(opts, "db").unwrap();
        for i in 0..50 {
            db.put(&wo(), format!("s{i}").as_bytes(), b"synced").unwrap();
        }
        // Unsynced writes follow.
        let mut opts2 = WriteOptions::default();
        opts2.sync = false;
        db.crash(); // Simulate a crash: no final sync.
    }
    env.fs().power_failure();
    let db = Db::open(Options::rocksdb_like(env_ref), "db").unwrap();
    for i in 0..50 {
        assert_eq!(
            db.get(format!("s{i}").as_bytes()).unwrap().unwrap(),
            b"synced",
            "synced write s{i} lost"
        );
    }
}

#[test]
fn recovery_filter_skips_tagged_batches() {
    let env: EnvRef = Arc::new(MemEnv::new());
    {
        let db = Db::open(Options::rocksdb_like(env.clone()), "db").unwrap();
        let mut committed = WriteBatch::new();
        committed.put(b"committed", b"yes");
        committed.set_gsn(5);
        db.write(&wo(), committed).unwrap();
        let mut uncommitted = WriteBatch::new();
        uncommitted.put(b"uncommitted", b"no");
        uncommitted.set_gsn(9);
        db.write(&wo(), uncommitted).unwrap();
        db.crash();
    }
    // Roll back everything with GSN > 5 (p2KVS transaction recovery).
    let filter: lsmkv::db::RecoveryFilter = Arc::new(|gsn| gsn <= 5);
    let db = Db::open_with_recovery_filter(Options::rocksdb_like(env), "db", Some(filter)).unwrap();
    assert_eq!(db.get(b"committed").unwrap().unwrap(), b"yes");
    assert_eq!(db.get(b"uncommitted").unwrap(), None);
    assert_eq!(db.max_recovered_gsn(), 9);
}

#[test]
fn concurrent_writers_all_land() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Arc::new(Db::open(small_opts(env), "db").unwrap());
    const THREADS: usize = 8;
    const PER: usize = 500;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..PER {
                    db.put(
                        &wo(),
                        format!("t{t}-k{i:05}").as_bytes(),
                        format!("t{t}-v{i}").as_bytes(),
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.visible_sequence(), (THREADS * PER) as u64);
    for t in 0..THREADS {
        for i in (0..PER).step_by(53) {
            assert_eq!(
                db.get(format!("t{t}-k{i:05}").as_bytes()).unwrap().unwrap(),
                format!("t{t}-v{i}").as_bytes()
            );
        }
    }
    // Group commit must actually have grouped some writes.
    let stats = db.stats();
    let groups = stats.write_groups.load(std::sync::atomic::Ordering::Relaxed);
    let writes = stats.writes.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(writes, (THREADS * PER) as u64);
    assert!(groups <= writes);
}

#[test]
fn concurrent_writers_without_rocksdb_optimizations() {
    // LevelDB mode: no concurrent memtable, no pipelining.
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Arc::new(Db::open(Options::leveldb_like(env), "db").unwrap());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..300 {
                    db.put(&wo(), format!("t{t}-{i}").as_bytes(), b"v").unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..4 {
        assert_eq!(db.get(format!("t{t}-0").as_bytes()).unwrap().unwrap(), b"v");
        assert_eq!(db.get(format!("t{t}-299").as_bytes()).unwrap().unwrap(), b"v");
    }
}

#[test]
fn readers_race_writers_without_torn_reads() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Arc::new(Db::open(small_opts(env), "db").unwrap());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                // Writes are two entries that must be observed together.
                let mut b = WriteBatch::new();
                b.put(b"pair-x", format!("{i}").as_bytes());
                b.put(b"pair-y", format!("{i}").as_bytes());
                db.write(&WriteOptions::default(), b).unwrap();
                i += 1;
            }
        })
    };
    for _ in 0..300 {
        let snap = db.snapshot();
        let ropts = ReadOptions {
            snapshot: Some(snap.sequence()),
            ..ReadOptions::default()
        };
        let x = db.get_with(&ropts, b"pair-x").unwrap();
        let y = db.get_with(&ropts, b"pair-y").unwrap();
        assert_eq!(x, y, "snapshot must never observe a torn batch");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn snapshot_pins_old_values() {
    let db = Db::open(Options::for_test(), "db").unwrap();
    db.put(&wo(), b"k", b"old").unwrap();
    let snap = db.snapshot();
    db.put(&wo(), b"k", b"new").unwrap();
    db.delete(&wo(), b"k2").unwrap();
    let ropts = ReadOptions {
        snapshot: Some(snap.sequence()),
        ..ReadOptions::default()
    };
    assert_eq!(db.get_with(&ropts, b"k").unwrap().unwrap(), b"old");
    assert_eq!(db.get(b"k").unwrap().unwrap(), b"new");
}

#[test]
fn snapshot_survives_flush_and_compaction() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Db::open(small_opts(env), "db").unwrap();
    db.put(&wo(), b"pinned", b"v1").unwrap();
    let snap = db.snapshot();
    // Bury the old version under lots of newer data.
    for i in 0..5000 {
        db.put(&wo(), format!("fill{i:06}").as_bytes(), &[0u8; 64]).unwrap();
    }
    db.put(&wo(), b"pinned", b"v2").unwrap();
    db.flush().unwrap();
    db.wait_idle().unwrap();
    let ropts = ReadOptions {
        snapshot: Some(snap.sequence()),
        ..ReadOptions::default()
    };
    assert_eq!(db.get_with(&ropts, b"pinned").unwrap().unwrap(), b"v1");
    assert_eq!(db.get(b"pinned").unwrap().unwrap(), b"v2");
}

#[test]
fn multiget_matches_get() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Db::open(small_opts(env), "db").unwrap();
    for i in 0..4000 {
        db.put(&wo(), format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    db.flush().unwrap();
    let keys: Vec<Vec<u8>> = (0..4000)
        .step_by(7)
        .map(|i| format!("k{i:05}").into_bytes())
        .chain(std::iter::once(b"absent".to_vec()))
        .collect();
    let batch_results = db.multiget(&keys).unwrap();
    assert_eq!(batch_results.len(), keys.len());
    for (key, got) in keys.iter().zip(&batch_results) {
        assert_eq!(*got, db.get(key).unwrap(), "mismatch for {key:?}");
    }
}

#[test]
fn iterator_scans_in_order_across_all_components() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Db::open(small_opts(env), "db").unwrap();
    // Data spread across SSTs (flushed) and the live memtable.
    for i in (0..1000).filter(|i| i % 2 == 0) {
        db.put(&wo(), format!("k{i:05}").as_bytes(), b"disk").unwrap();
    }
    db.flush().unwrap();
    for i in (0..1000).filter(|i| i % 2 == 1) {
        db.put(&wo(), format!("k{i:05}").as_bytes(), b"mem").unwrap();
    }
    let mut it = db.iter().unwrap();
    it.seek_to_first();
    let mut count = 0;
    let mut last = Vec::new();
    while it.valid() {
        assert!(it.key() > &last[..], "out of order at {count}");
        last = it.key().to_vec();
        count += 1;
        it.next();
    }
    assert_eq!(count, 1000);
}

#[test]
fn scan_and_range_semantics() {
    let db = Db::open(Options::for_test(), "db").unwrap();
    for i in 0..100 {
        db.put(&wo(), format!("k{i:03}").as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    let scan = db.scan(b"k010", 5).unwrap();
    assert_eq!(scan.len(), 5);
    assert_eq!(scan[0].0, b"k010");
    assert_eq!(scan[4].0, b"k014");
    let range = db.range(b"k095", b"k099").unwrap();
    assert_eq!(range.len(), 4, "end is exclusive");
    assert_eq!(range.last().unwrap().0, b"k098");
    assert!(db.range(b"x", b"z").unwrap().is_empty());
}

#[test]
fn pebblesdb_mode_compacts_with_lower_write_amp() {
    let env_leveled: EnvRef = Arc::new(MemEnv::new());
    let env_frag: EnvRef = Arc::new(MemEnv::new());
    let run = |env: EnvRef, style: CompactionStyle| -> (u64, u64) {
        let mut opts = small_opts(env.clone());
        opts.compaction_style = style;
        opts.read_pool_threads = 0;
        let db = Db::open(opts, "db").unwrap();
        for pass in 0..4 {
            for i in 0..4000u64 {
                db.put(
                    &wo(),
                    format!("key{:06}", (i * 2654435761) % 4000).as_bytes(),
                    format!("p{pass}-{i}").as_bytes(),
                )
                .unwrap();
            }
        }
        db.flush().unwrap();
        db.wait_idle().unwrap();
        // Verify reads still work in fragmented mode.
        assert!(db.get(b"key000000").unwrap().is_some());
        let user = db
            .stats()
            .user_bytes_written
            .load(std::sync::atomic::Ordering::Relaxed);
        drop(db);
        (env.io_stats().bytes_written, user)
    };
    let (leveled_io, leveled_user) = run(env_leveled, CompactionStyle::Leveled);
    let (frag_io, frag_user) = run(env_frag, CompactionStyle::Fragmented);
    let leveled_wa = leveled_io as f64 / leveled_user as f64;
    let frag_wa = frag_io as f64 / frag_user as f64;
    assert!(
        frag_wa < leveled_wa,
        "fragmented WA {frag_wa:.2} should beat leveled {leveled_wa:.2}"
    );
}

#[test]
fn disable_wal_writes_skip_log() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let db = Db::open(Options::rocksdb_like(env.clone()), "db").unwrap();
    let before = env.io_stats().wal_bytes;
    let mut opts = WriteOptions::default();
    opts.disable_wal = true;
    for i in 0..100 {
        db.put(&opts, format!("k{i}").as_bytes(), b"v").unwrap();
    }
    db.sync_wal().unwrap();
    assert_eq!(env.io_stats().wal_bytes, before, "disable_wal must not touch the log");
    assert_eq!(db.get(b"k7").unwrap().unwrap(), b"v");
}

#[test]
fn stats_track_write_breakdown() {
    let db = Db::open(Options::for_test(), "db").unwrap();
    for i in 0..200 {
        db.put(&wo(), format!("k{i}").as_bytes(), b"v").unwrap();
    }
    let snap = db.stats().breakdown.snapshot();
    assert!(snap.total_us() > 0.0);
    let p = snap.percentages();
    assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-6);
}

#[test]
fn memory_usage_reports_sane_values() {
    let db = Db::open(Options::for_test(), "db").unwrap();
    let before = db.approximate_memory_usage();
    for i in 0..500 {
        db.put(&wo(), format!("k{i:04}").as_bytes(), &[1u8; 128]).unwrap();
    }
    assert!(db.approximate_memory_usage() > before);
}

#[test]
fn reopen_after_clean_close_keeps_everything() {
    let env: EnvRef = Arc::new(MemEnv::new());
    {
        let db = Db::open(small_opts(env.clone()), "db").unwrap();
        for i in 0..3000 {
            db.put(&wo(), format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        db.flush().unwrap();
        for i in 3000..3500 {
            db.put(&wo(), format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Drop = clean close (syncs WAL).
    }
    let db = Db::open(small_opts(env), "db").unwrap();
    for i in (0..3500).step_by(101) {
        assert_eq!(
            db.get(format!("k{i:05}").as_bytes()).unwrap().unwrap(),
            format!("v{i}").as_bytes()
        );
    }
}

#[test]
fn many_reopens_accumulate_correctly() {
    let env: EnvRef = Arc::new(MemEnv::new());
    for round in 0..5 {
        let db = Db::open(small_opts(env.clone()), "db").unwrap();
        for i in 0..200 {
            db.put(
                &wo(),
                format!("r{round}-k{i}").as_bytes(),
                format!("{round}").as_bytes(),
            )
            .unwrap();
        }
        // Every previous round must still be intact.
        for r in 0..=round {
            assert_eq!(
                db.get(format!("r{r}-k0").as_bytes()).unwrap().unwrap(),
                format!("{r}").as_bytes()
            );
        }
    }
}

#[test]
fn transient_wal_sync_error_does_not_wedge_writes() {
    // A failed WAL sync must fail only the affected group. Before the
    // publish-on-error fix, the reserved sequence range was never
    // published and every later write group waited forever.
    let faulty = Arc::new(p2kvs_storage::FaultyEnv::over_mem());
    let mut opts = Options::rocksdb_like(faulty.clone());
    opts.sync = SyncPolicy::Always;
    let db = Arc::new(Db::open(opts, "db").unwrap());
    db.put(&wo(), b"before", b"1").unwrap();

    faulty.set_plan(p2kvs_storage::FaultPlan {
        fail_sync: Some(faulty.sync_points() + 1),
        ..Default::default()
    });
    let err = db.put(&wo(), b"failed", b"2").unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");

    // The next write must complete (bounded wait, not a join that could
    // hang the whole test binary on regression).
    let (tx, rx) = std::sync::mpsc::channel();
    let db2 = db.clone();
    std::thread::spawn(move || {
        let r = db2.put(&wo(), b"after", b"3").map_err(|e| e.to_string());
        let _ = tx.send(r);
    });
    let outcome = rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("write after transient WAL error must not hang");
    outcome.expect("retry after transient WAL error must succeed");
    assert_eq!(db.get(b"before").unwrap().unwrap(), b"1");
    assert_eq!(db.get(b"after").unwrap().unwrap(), b"3");
    // The failed group's data must not be visible.
    assert_eq!(db.get(b"failed").unwrap(), None);
}

#[test]
fn injected_read_error_surfaces_at_open() {
    // Recovery reads (CURRENT/MANIFEST/WAL) must propagate injected IO
    // errors as errors, not panic or silently succeed.
    let faulty = Arc::new(p2kvs_storage::FaultyEnv::over_mem());
    {
        let mut opts = Options::rocksdb_like(faulty.clone());
        opts.sync = SyncPolicy::Always;
        let db = Db::open(opts, "db").unwrap();
        db.put(&wo(), b"k", b"v").unwrap();
    }
    faulty.set_plan(p2kvs_storage::FaultPlan {
        fail_read: Some(faulty.reads() + 1),
        ..Default::default()
    });
    let opts = Options::rocksdb_like(faulty.clone());
    let err = match Db::open(opts, "db") {
        Ok(_) => panic!("open must fail on an injected recovery read error"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("injected fault"), "{err}");
    // One-shot: the retry recovers everything.
    let db = Db::open(Options::rocksdb_like(faulty), "db").unwrap();
    assert_eq!(db.get(b"k").unwrap().unwrap(), b"v");
}

#[test]
fn parallel_compaction_db_matches_serial_db() {
    // Differential end-to-end check: the same operation stream applied to
    // a single-threaded-compaction DB and to a multi-threaded, partitioned
    // one must leave byte-identical live contents.
    let run = |threads: usize, subs: usize| {
        let mut opts = small_opts(Arc::new(MemEnv::new()));
        opts.compaction_threads = threads;
        opts.subcompactions = subs;
        let db = Db::open(opts, "db").unwrap();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..6000u64 {
            x = x.wrapping_mul(0xd1342543de82ef95).wrapping_add(1);
            let key = format!("user{:06}", x % 2000);
            if x % 11 == 0 {
                db.delete(&wo(), key.as_bytes()).unwrap();
            } else {
                db.put(&wo(), key.as_bytes(), format!("val-{i}-{x:x}").as_bytes())
                    .unwrap();
            }
        }
        db.flush().unwrap();
        db.wait_idle().unwrap();
        let all = db.range(b"", b"\x7f").unwrap();
        assert!(!all.is_empty());
        (all, db.level_sizes())
    };
    let (serial, _) = run(1, 1);
    let (parallel, _) = run(3, 4);
    assert_eq!(serial, parallel, "live contents diverged under parallel compaction");
}

#[test]
fn concurrent_level_compactions_keep_db_consistent() {
    // Hammer a small-memtable DB so L0→L1 and deeper compactions overlap
    // in time, then verify every surviving key reads back correctly.
    let mut opts = small_opts(Arc::new(MemEnv::new()));
    opts.compaction_threads = 3;
    opts.subcompactions = 4;
    opts.memtable_size = 16 << 10;
    let db = Arc::new(Db::open(opts, "db").unwrap());
    let threads: Vec<_> = (0..3u64)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..1500u64 {
                    let key = format!("w{t}-{:05}", i % 500);
                    db.put(&wo(), key.as_bytes(), format!("{t}:{i}").as_bytes())
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    db.flush().unwrap();
    db.wait_idle().unwrap();
    for t in 0..3u64 {
        for k in 0..500u64 {
            let key = format!("w{t}-{k:05}");
            let got = db.get(key.as_bytes()).unwrap();
            // Last write for this key was iteration 1000+k.
            assert_eq!(
                got.as_deref(),
                Some(format!("{t}:{}", 1000 + k).as_bytes()),
                "key {key}"
            );
        }
    }
    assert!(db.stats().compactions.load(std::sync::atomic::Ordering::Relaxed) > 0);
}

#[test]
fn compaction_spreads_output_over_queues() {
    // On a multi-queue device with a pinned home queue, sustained write
    // load must land flush/WAL bytes on the home queue and compaction
    // bytes on the other queues.
    use p2kvs_storage::{DeviceProfile, SimEnv};
    let env = Arc::new(SimEnv::with_profile(DeviceProfile::instant().with_queues(4)));
    let mut opts = small_opts(env.clone());
    opts.compaction_threads = 2;
    opts.subcompactions = 3;
    opts.io_queue = Some(0);
    let db = Db::open(opts, "db").unwrap();
    for i in 0..4000u64 {
        let key = format!("user{:06}", i % 1200);
        db.put(&wo(), key.as_bytes(), vec![b'x'; 100].as_slice()).unwrap();
    }
    db.flush().unwrap();
    db.wait_idle().unwrap();
    let snap = env.io_stats();
    assert!(snap.queues[0].bytes_written > 0, "home queue idle: {:?}", snap.queues[0]);
    let off_home: u64 = (1..4).map(|q| snap.queues[q].bytes_written).sum();
    assert!(
        off_home > 0,
        "compaction wrote nothing off the home queue; per-queue: {:?}",
        (0..4).map(|q| snap.queues[q].bytes_written).collect::<Vec<_>>()
    );
}
