//! The YCSB core workloads of the paper's Table 1.

use rand::Rng;

use crate::generator::{KeySpace, Latest, ScrambledZipfian, Uniform};

/// Request distributions used by Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    Uniform,
    Zipfian,
    Latest,
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// PUT of a new key (LOAD, D, E inserts).
    Insert { key: Vec<u8>, value: Vec<u8> },
    /// UPDATE of an existing key.
    Update { key: Vec<u8>, value: Vec<u8> },
    /// GET.
    Read { key: Vec<u8> },
    /// SCAN from `key` for `len` items.
    Scan { key: Vec<u8>, len: usize },
    /// GET then UPDATE of the same key (workload F).
    ReadModifyWrite { key: Vec<u8>, value: Vec<u8> },
}

/// Named workloads from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// 100% PUT, uniform.
    Load,
    /// 50% UPDATE, 50% GET, zipfian.
    A,
    /// 5% UPDATE, 95% GET, zipfian.
    B,
    /// 100% GET, zipfian.
    C,
    /// 5% PUT, 95% GET, latest.
    D,
    /// 5% PUT, 95% SCAN, uniform.
    E,
    /// 50% RMW, 50% GET, zipfian.
    F,
}

impl WorkloadKind {
    /// All Table 1 workloads in order.
    pub fn all() -> [WorkloadKind; 7] {
        use WorkloadKind::*;
        [Load, A, B, C, D, E, F]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Load => "LOAD",
            WorkloadKind::A => "A",
            WorkloadKind::B => "B",
            WorkloadKind::C => "C",
            WorkloadKind::D => "D",
            WorkloadKind::E => "E",
            WorkloadKind::F => "F",
        }
    }

    /// The request distribution of Table 1.
    pub fn distribution(&self) -> Distribution {
        match self {
            WorkloadKind::Load | WorkloadKind::E => Distribution::Uniform,
            WorkloadKind::D => Distribution::Latest,
            _ => Distribution::Zipfian,
        }
    }
}

/// A fully parameterized workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which Table 1 mix.
    pub kind: WorkloadKind,
    /// Records loaded before the run (existing key population).
    pub record_count: u64,
    /// Operations to perform.
    pub op_count: u64,
    /// Value size in bytes (paper default: 128-byte KV pairs).
    pub value_size: usize,
    /// Maximum SCAN length (workload E; YCSB default 100).
    pub max_scan_len: usize,
}

impl Workload {
    /// Builds a Table 1 workload with the paper's 128-byte values.
    pub fn table1(kind: WorkloadKind, record_count: u64, op_count: u64) -> Workload {
        Workload {
            kind,
            record_count,
            op_count,
            value_size: 128,
            max_scan_len: 100,
        }
    }

    /// Per-thread operation generator.
    pub fn generator(&self, thread: usize) -> OpGenerator {
        OpGenerator::new(self.clone(), thread as u64)
    }
}

/// Stateful per-thread operation stream.
pub struct OpGenerator {
    spec: Workload,
    keys: KeySpace,
    uniform: Uniform,
    zipf: ScrambledZipfian,
    latest: Latest,
    /// Next insert index (thread-striped so threads never collide).
    insert_cursor: u64,
    thread: u64,
    rng: rand::rngs::SmallRng,
}

impl OpGenerator {
    fn new(spec: Workload, thread: u64) -> OpGenerator {
        use rand::SeedableRng;
        let n = spec.record_count.max(1);
        OpGenerator {
            keys: KeySpace::hashed(),
            uniform: Uniform::new(n),
            zipf: ScrambledZipfian::new(n),
            latest: Latest::new(n),
            insert_cursor: 0,
            thread,
            rng: rand::rngs::SmallRng::seed_from_u64(0x9e37 ^ thread),
            spec,
        }
    }

    fn existing_key(&mut self) -> Vec<u8> {
        let i = match self.spec.kind.distribution() {
            Distribution::Uniform => self.uniform.next(&mut self.rng),
            Distribution::Zipfian => self.zipf.next(&mut self.rng),
            Distribution::Latest => self
                .latest
                .next(&mut self.rng, self.spec.record_count.saturating_sub(1)),
        };
        self.keys.key(i)
    }

    fn fresh_key(&mut self) -> (Vec<u8>, u64) {
        // Stripe inserts by thread so concurrent generators are disjoint.
        let i = self.spec.record_count + self.insert_cursor * 1024 + self.thread;
        self.insert_cursor += 1;
        (self.keys.key(i), i)
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> OpKind {
        let value_size = self.spec.value_size;
        match self.spec.kind {
            WorkloadKind::Load => {
                let (key, i) = self.fresh_key();
                OpKind::Insert {
                    value: self.keys.value(i, value_size),
                    key,
                }
            }
            WorkloadKind::A => self.mix(0.50, value_size, false),
            WorkloadKind::B => self.mix(0.05, value_size, false),
            WorkloadKind::C => OpKind::Read {
                key: self.existing_key(),
            },
            WorkloadKind::D => {
                if self.rng.gen::<f64>() < 0.05 {
                    let (key, i) = self.fresh_key();
                    OpKind::Insert {
                        value: self.keys.value(i, value_size),
                        key,
                    }
                } else {
                    OpKind::Read {
                        key: self.existing_key(),
                    }
                }
            }
            WorkloadKind::E => {
                if self.rng.gen::<f64>() < 0.05 {
                    let (key, i) = self.fresh_key();
                    OpKind::Insert {
                        value: self.keys.value(i, value_size),
                        key,
                    }
                } else {
                    let len = self.rng.gen_range(1..=self.spec.max_scan_len);
                    OpKind::Scan {
                        key: self.existing_key(),
                        len,
                    }
                }
            }
            WorkloadKind::F => {
                if self.rng.gen::<f64>() < 0.50 {
                    let key = self.existing_key();
                    let v = self.keys.value(self.insert_cursor, value_size);
                    OpKind::ReadModifyWrite { key, value: v }
                } else {
                    OpKind::Read {
                        key: self.existing_key(),
                    }
                }
            }
        }
    }

    /// Write-fraction mix helper (workloads A/B).
    fn mix(&mut self, update_ratio: f64, value_size: usize, _latest: bool) -> OpKind {
        if self.rng.gen::<f64>() < update_ratio {
            let key = self.existing_key();
            let v = self.keys.value(self.insert_cursor, value_size);
            self.insert_cursor += 1;
            OpKind::Update { key, value: v }
        } else {
            OpKind::Read {
                key: self.existing_key(),
            }
        }
    }

    /// Keys used to pre-load the table (`record_count` items).
    pub fn load_keys(spec: &Workload) -> impl Iterator<Item = (Vec<u8>, Vec<u8>)> + '_ {
        let keys = KeySpace::hashed();
        (0..spec.record_count).map(move |i| (keys.key(i), keys.value(i, spec.value_size)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_ops(kind: WorkloadKind, n: usize) -> std::collections::HashMap<&'static str, usize> {
        let spec = Workload::table1(kind, 10_000, n as u64);
        let mut g = spec.generator(0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let label = match g.next_op() {
                OpKind::Insert { .. } => "insert",
                OpKind::Update { .. } => "update",
                OpKind::Read { .. } => "read",
                OpKind::Scan { .. } => "scan",
                OpKind::ReadModifyWrite { .. } => "rmw",
            };
            *counts.entry(label).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn load_is_all_inserts() {
        let c = count_ops(WorkloadKind::Load, 1000);
        assert_eq!(c["insert"], 1000);
    }

    #[test]
    fn workload_a_is_half_updates() {
        let c = count_ops(WorkloadKind::A, 20_000);
        let updates = c["update"] as f64 / 20_000.0;
        assert!((0.45..0.55).contains(&updates), "update ratio {updates}");
    }

    #[test]
    fn workload_b_is_mostly_reads() {
        let c = count_ops(WorkloadKind::B, 20_000);
        assert!(c["read"] > 18_000);
        assert!(c["update"] > 500);
    }

    #[test]
    fn workload_c_is_all_reads() {
        let c = count_ops(WorkloadKind::C, 1000);
        assert_eq!(c["read"], 1000);
    }

    #[test]
    fn workload_d_inserts_and_reads() {
        let c = count_ops(WorkloadKind::D, 20_000);
        assert!(c["read"] > 18_000);
        assert!(c["insert"] > 500);
    }

    #[test]
    fn workload_e_scans() {
        let c = count_ops(WorkloadKind::E, 20_000);
        assert!(c["scan"] > 18_000);
        assert!(c["insert"] > 500);
    }

    #[test]
    fn workload_f_has_rmw() {
        let c = count_ops(WorkloadKind::F, 20_000);
        let rmw = c["rmw"] as f64 / 20_000.0;
        assert!((0.45..0.55).contains(&rmw), "rmw ratio {rmw}");
    }

    #[test]
    fn insert_keys_are_disjoint_across_threads() {
        let spec = Workload::table1(WorkloadKind::Load, 100, 1000);
        let mut g0 = spec.generator(0);
        let mut g1 = spec.generator(1);
        let mut keys = std::collections::HashSet::new();
        for _ in 0..500 {
            for g in [&mut g0, &mut g1] {
                if let OpKind::Insert { key, .. } = g.next_op() {
                    assert!(keys.insert(key), "duplicate insert key across threads");
                }
            }
        }
    }

    #[test]
    fn scan_lengths_bounded() {
        let spec = Workload::table1(WorkloadKind::E, 1000, 1000);
        let mut g = spec.generator(0);
        for _ in 0..1000 {
            if let OpKind::Scan { len, .. } = g.next_op() {
                assert!((1..=100).contains(&len));
            }
        }
    }

    #[test]
    fn load_keys_count_matches() {
        let spec = Workload::table1(WorkloadKind::A, 500, 0);
        assert_eq!(OpGenerator::load_keys(&spec).count(), 500);
    }

    #[test]
    fn table1_distributions() {
        assert_eq!(WorkloadKind::Load.distribution(), Distribution::Uniform);
        assert_eq!(WorkloadKind::A.distribution(), Distribution::Zipfian);
        assert_eq!(WorkloadKind::D.distribution(), Distribution::Latest);
        assert_eq!(WorkloadKind::E.distribution(), Distribution::Uniform);
        assert_eq!(WorkloadKind::all().len(), 7);
    }
}
