//! YCSB-style workload generation and a multi-threaded runner.
//!
//! Reimplements the parts of the Yahoo! Cloud Serving Benchmark the paper
//! evaluates with (Table 1): request distributions (uniform,
//! scrambled-zipfian with θ = 0.99, latest), the core workloads LOAD and
//! A–F, plus the `db_bench`-style micro workloads (fillseq, fillrandom,
//! overwrite, readseq, readrandom) used by Figs 1 and 12–15.
//!
//! The runner drives anything implementing [`KvClient`], so the same
//! workload bytes hit RocksDB-mode `lsmkv`, `p2kvs`, KVell and WiredTiger.

pub mod generator;
pub mod micro;
pub mod runner;
pub mod workload;

pub use generator::{KeySpace, Latest, ScrambledZipfian, Uniform, Zipfian};
pub use runner::{KvClient, RunConfig, RunResult};
pub use workload::{OpKind, Workload, WorkloadKind};
