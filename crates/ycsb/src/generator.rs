//! Request-distribution generators (YCSB semantics).

use p2kvs_util::hash::{fnv1a64, mix64};
use rand::Rng;

/// Default zipfian skew used by YCSB (`θ = 0.99`).
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Uniform choice over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Uniform {
    n: u64,
}

impl Uniform {
    /// Creates a generator over `[0, n)`.
    pub fn new(n: u64) -> Uniform {
        Uniform { n: n.max(1) }
    }

    /// Draws the next item.
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(0..self.n)
    }
}

/// Zipfian over `[0, n)` with items ranked by popularity (item 0 hottest)
/// — Gray et al.'s rejection-free method, as used by YCSB.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Zipfian {
    /// Creates a zipfian generator over `[0, n)` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        let n = n.max(1);
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Creates the standard YCSB zipfian (θ = 0.99).
    pub fn ycsb(n: u64) -> Zipfian {
        Zipfian::new(n, ZIPFIAN_CONSTANT)
    }

    /// Draws the next rank.
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// `ζ(2, θ)` (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Zipfian popularity scattered over the key space (YCSB
/// `ScrambledZipfianGenerator`): hot items are random keys, not
/// lexicographic neighbours — this is what makes hash partitioning spread
/// hot keys across p2KVS workers (§4.2).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
    n: u64,
}

impl ScrambledZipfian {
    /// Creates a scrambled zipfian over `[0, n)`.
    pub fn new(n: u64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::ycsb(n),
            n: n.max(1),
        }
    }

    /// Draws the next item.
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        mix64(self.inner.next(rng)) % self.n
    }
}

/// "Latest" distribution: skewed toward the most recently inserted items
/// (workload D). The caller advances `max` as inserts happen.
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    /// Creates a latest-skewed generator for a key space that currently
    /// holds `n` items.
    pub fn new(n: u64) -> Latest {
        Latest {
            zipf: Zipfian::ycsb(n.max(1)),
        }
    }

    /// Draws an item given the current newest index `max`.
    pub fn next(&self, rng: &mut impl Rng, max: u64) -> u64 {
        let off = self.zipf.next(rng);
        max.saturating_sub(off)
    }
}

/// Maps item indices to keys and generates deterministic values.
#[derive(Debug, Clone)]
pub struct KeySpace {
    /// Keys are ordered (`user0000000001`) instead of hashed — used by
    /// sequential-fill micro workloads.
    pub ordered: bool,
}

impl KeySpace {
    /// Hashed key space (YCSB default).
    pub fn hashed() -> KeySpace {
        KeySpace { ordered: false }
    }

    /// Ordered key space (fillseq).
    pub fn ordered() -> KeySpace {
        KeySpace { ordered: true }
    }

    /// The key for item `i`.
    pub fn key(&self, i: u64) -> Vec<u8> {
        if self.ordered {
            format!("user{i:020}").into_bytes()
        } else {
            format!("user{:020}", fnv1a64(&i.to_le_bytes())).into_bytes()
        }
    }

    /// A deterministic value of `size` bytes for item `i`.
    pub fn value(&self, i: u64, size: usize) -> Vec<u8> {
        let mut out = vec![0u8; size];
        let mut x = mix64(i ^ 0x5bd1_e995);
        for chunk in out.chunks_mut(8) {
            x = mix64(x);
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_range() {
        let g = Uniform::new(100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            seen[g.next(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() > 95);
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let g = Zipfian::ycsb(10_000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 10_000];
        const N: u32 = 100_000;
        for _ in 0..N {
            let v = g.next(&mut rng);
            assert!(v < 10_000);
            counts[v as usize] += 1;
        }
        // Item 0 must be by far the hottest; top-10 items take a large
        // share (YCSB zipfian ~ top 10 of 10k ≈ 25%+).
        let top10: u32 = counts[..10].iter().sum();
        assert!(counts[0] > N / 20, "item0 count {}", counts[0]);
        assert!(top10 > N / 5, "top10 {top10}");
        // But the tail is still exercised.
        assert!(counts[5000..].iter().filter(|&&c| c > 0).count() > 100);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_items() {
        let g = ScrambledZipfian::new(10_000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(g.next(&mut rng)).or_insert(0u32) += 1;
        }
        // Still skewed: one item dominates...
        let max = counts.values().max().copied().unwrap();
        assert!(max > 2_000, "hottest item only {max}");
        // ...but the hottest items are scattered, not items 0..k.
        let mut by_count: Vec<_> = counts.iter().collect();
        by_count.sort_by_key(|(_, c)| std::cmp::Reverse(**c));
        let hot_ids: Vec<u64> = by_count[..5].iter().map(|(i, _)| **i).collect();
        assert!(
            hot_ids.iter().any(|&i| i > 1000),
            "hot items should be scattered: {hot_ids:?}"
        );
    }

    #[test]
    fn latest_prefers_recent() {
        let g = Latest::new(100_000);
        let mut rng = StdRng::seed_from_u64(9);
        let max = 50_000u64;
        let mut recent = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            let v = g.next(&mut rng, max);
            assert!(v <= max);
            if v > max - 100 {
                recent += 1;
            }
        }
        assert!(recent > N / 10, "recent hits {recent}");
    }

    #[test]
    fn keyspace_is_deterministic() {
        let ks = KeySpace::hashed();
        assert_eq!(ks.key(42), ks.key(42));
        assert_ne!(ks.key(42), ks.key(43));
        let v = ks.value(7, 128);
        assert_eq!(v.len(), 128);
        assert_eq!(v, ks.value(7, 128));
        assert_ne!(v, ks.value(8, 128));
        // Ordered keys sort by index.
        let os = KeySpace::ordered();
        assert!(os.key(1) < os.key(2));
        assert!(os.key(99) < os.key(100));
    }

    #[test]
    fn value_sizes_not_multiple_of_8() {
        let ks = KeySpace::hashed();
        for size in [0usize, 1, 7, 9, 100, 1023] {
            assert_eq!(ks.value(1, size).len(), size);
        }
    }
}
