//! Multi-threaded workload runner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use p2kvs_util::histogram::Histogram;
use p2kvs_util::rate::RateLimiter;

use crate::workload::{OpKind, OpGenerator, Workload};

/// The client interface the runner drives. Implemented by the bench crate
/// for every engine and for the p2KVS store.
pub trait KvClient: Send + Sync {
    /// Insert or update.
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String>;

    /// Point lookup.
    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String>;

    /// Update (defaults to insert semantics).
    fn update(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.insert(key, value)
    }

    /// Scan `len` items from `key`; returns the number retrieved.
    fn scan(&self, key: &[u8], len: usize) -> Result<usize, String>;
}

/// Run parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Client (user) threads.
    pub threads: usize,
    /// Offered load in ops/s across all threads (0 = unlimited).
    pub rate_limit: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 1,
            rate_limit: 0,
        }
    }
}

/// Aggregate results of one run.
#[derive(Clone)]
pub struct RunResult {
    /// Operations completed.
    pub ops: u64,
    /// Wall time.
    pub elapsed: Duration,
    /// Per-operation latency (nanoseconds).
    pub latency: Histogram,
    /// Operations that returned an error.
    pub errors: u64,
}

impl RunResult {
    /// Throughput in operations per second.
    pub fn qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{:.0} ops/s over {} ops ({:.2}s); lat {}",
            self.qps(),
            self.ops,
            self.elapsed.as_secs_f64(),
            self.latency.summary_us()
        )
    }
}

/// Pre-loads `spec.record_count` records via `threads` loader threads.
pub fn load_table<C: KvClient + ?Sized>(client: &C, spec: &Workload, threads: usize) -> Result<(), String> {
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let mut handles: Vec<std::thread::ScopedJoinHandle<'_, Result<(), String>>> = Vec::new();
        for _ in 0..threads.max(1) {
            let next = &next;
            handles.push(scope.spawn(move || {
                let keys = crate::generator::KeySpace::hashed();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= spec.record_count {
                        return Ok(());
                    }
                    client.insert(&keys.key(i), &keys.value(i, spec.value_size))?;
                }
            }));
        }
        for h in handles {
            h.join().expect("loader thread panicked")?;
        }
        Ok(())
    })
}

/// Runs `spec.op_count` operations against `client` with `config.threads`
/// user threads, each drawing from its own generator.
pub fn run_workload<C: KvClient + ?Sized>(client: &C, spec: &Workload, config: &RunConfig) -> RunResult {
    let threads = config.threads.max(1);
    let remaining = AtomicU64::new(spec.op_count);
    let limiter = RateLimiter::new(config.rate_limit);
    let start = Instant::now();
    let results: Vec<(Histogram, u64, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let remaining = &remaining;
            let limiter = &limiter;
            let mut gen: OpGenerator = spec.generator(t);
            handles.push(scope.spawn(move || {
                let mut hist = Histogram::new();
                let mut done = 0u64;
                let mut errors = 0u64;
                loop {
                    if remaining
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_err()
                    {
                        break;
                    }
                    let op = gen.next_op();
                    limiter.acquire();
                    let t0 = Instant::now();
                    let ok = execute(client, op);
                    hist.record(t0.elapsed().as_nanos() as u64);
                    done += 1;
                    if !ok {
                        errors += 1;
                    }
                }
                (hist, done, errors)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut latency = Histogram::new();
    let mut ops = 0;
    let mut errors = 0;
    for (h, d, e) in results {
        latency.merge(&h);
        ops += d;
        errors += e;
    }
    RunResult {
        ops,
        elapsed,
        latency,
        errors,
    }
}

fn execute<C: KvClient + ?Sized>(client: &C, op: OpKind) -> bool {
    match op {
        OpKind::Insert { key, value } => client.insert(&key, &value).is_ok(),
        OpKind::Update { key, value } => client.update(&key, &value).is_ok(),
        OpKind::Read { key } => client.read(&key).is_ok(),
        OpKind::Scan { key, len } => client.scan(&key, len).is_ok(),
        OpKind::ReadModifyWrite { key, value } => {
            client.read(&key).is_ok() && client.update(&key, &value).is_ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadKind;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// In-memory reference client.
    #[derive(Default)]
    struct MapClient {
        map: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
        reads: AtomicU64,
        writes: AtomicU64,
    }

    impl KvClient for MapClient {
        fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }

        fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            Ok(self.map.lock().get(key).cloned())
        }

        fn scan(&self, _key: &[u8], len: usize) -> Result<usize, String> {
            Ok(len)
        }
    }

    #[test]
    fn load_then_run_completes_exact_op_count() {
        let client = MapClient::default();
        let spec = Workload::table1(WorkloadKind::A, 1000, 5000);
        load_table(&client, &spec, 4).unwrap();
        assert_eq!(client.map.lock().len(), 1000);
        let result = run_workload(&client, &spec, &RunConfig { threads: 4, rate_limit: 0 });
        assert_eq!(result.ops, 5000);
        assert_eq!(result.errors, 0);
        assert!(result.qps() > 0.0);
        assert_eq!(result.latency.count(), 5000);
        // Workload A reads should mostly hit loaded keys.
        assert!(client.reads.load(Ordering::Relaxed) > 2000);
    }

    #[test]
    fn rate_limit_caps_throughput() {
        let client = MapClient::default();
        let spec = Workload::table1(WorkloadKind::C, 100, 500);
        load_table(&client, &spec, 1).unwrap();
        let result = run_workload(
            &client,
            &spec,
            &RunConfig {
                threads: 2,
                rate_limit: 10_000,
            },
        );
        assert!(
            result.elapsed >= Duration::from_millis(40),
            "500 ops at 10k/s should take ≥ 50ms, took {:?}",
            result.elapsed
        );
    }

    #[test]
    fn summary_renders() {
        let client = MapClient::default();
        let spec = Workload::table1(WorkloadKind::C, 10, 10);
        load_table(&client, &spec, 1).unwrap();
        let result = run_workload(&client, &spec, &RunConfig::default());
        let s = result.summary();
        assert!(s.contains("ops/s"));
    }
}
