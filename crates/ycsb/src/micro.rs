//! `db_bench`-style micro workloads (Figs 1, 12–15).
//!
//! Five single-purpose operation streams: `fillseq`, `fillrandom`,
//! `overwrite`, `readseq`, `readrandom` — the exact set Fig 1 runs on the
//! three device profiles.

use rand::SeedableRng;

use crate::generator::{KeySpace, Uniform};
use crate::runner::KvClient;
use crate::workload::OpKind;

/// The five micro workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKind {
    /// Sequential PUT of fresh keys.
    FillSeq,
    /// Random PUT of fresh keys.
    FillRandom,
    /// Random UPDATE of existing keys.
    Overwrite,
    /// Sequential GET (forward scan order).
    ReadSeq,
    /// Random GET.
    ReadRandom,
}

impl MicroKind {
    /// All micro workloads in Fig 1 order.
    pub fn all() -> [MicroKind; 5] {
        use MicroKind::*;
        [FillSeq, FillRandom, Overwrite, ReadSeq, ReadRandom]
    }

    /// Display name (db_bench convention).
    pub fn name(&self) -> &'static str {
        match self {
            MicroKind::FillSeq => "fillseq",
            MicroKind::FillRandom => "fillrandom",
            MicroKind::Overwrite => "overwrite",
            MicroKind::ReadSeq => "readseq",
            MicroKind::ReadRandom => "readrandom",
        }
    }

    /// Whether the workload needs the table pre-loaded with `n` keys.
    pub fn needs_load(&self) -> bool {
        matches!(
            self,
            MicroKind::Overwrite | MicroKind::ReadSeq | MicroKind::ReadRandom
        )
    }
}

/// Per-thread micro-op stream over a key space of `n` items.
pub struct MicroGenerator {
    kind: MicroKind,
    ordered: KeySpace,
    hashed: KeySpace,
    uniform: Uniform,
    n: u64,
    cursor: u64,
    thread: u64,
    value_size: usize,
    rng: rand::rngs::SmallRng,
}

impl MicroGenerator {
    /// Creates the stream for `thread` over `n` existing keys.
    pub fn new(kind: MicroKind, n: u64, value_size: usize, thread: u64) -> MicroGenerator {
        MicroGenerator {
            kind,
            ordered: KeySpace::ordered(),
            hashed: KeySpace::hashed(),
            uniform: Uniform::new(n.max(1)),
            n: n.max(1),
            cursor: 0,
            thread,
            value_size,
            rng: rand::rngs::SmallRng::seed_from_u64(0xabcd ^ thread),
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> OpKind {
        let i = self.cursor;
        self.cursor += 1;
        match self.kind {
            MicroKind::FillSeq => {
                // Thread-striped ordered keys.
                let idx = i * 1024 + self.thread;
                OpKind::Insert {
                    key: self.ordered.key(idx),
                    value: self.ordered.value(idx, self.value_size),
                }
            }
            MicroKind::FillRandom => {
                let idx = i * 1024 + self.thread;
                OpKind::Insert {
                    key: self.hashed.key(idx),
                    value: self.hashed.value(idx, self.value_size),
                }
            }
            MicroKind::Overwrite => {
                let idx = self.uniform.next(&mut self.rng);
                OpKind::Update {
                    key: self.hashed.key(idx),
                    value: self.hashed.value(idx ^ i, self.value_size),
                }
            }
            MicroKind::ReadSeq => OpKind::Read {
                key: self.hashed.key(i % self.n),
            },
            MicroKind::ReadRandom => OpKind::Read {
                key: self.hashed.key(self.uniform.next(&mut self.rng)),
            },
        }
    }
}

/// Runs `ops` micro operations with `threads` threads; returns completed
/// ops and elapsed seconds (errors count as completed for timing).
pub fn run_micro<C: KvClient + ?Sized>(
    client: &C,
    kind: MicroKind,
    existing: u64,
    ops: u64,
    value_size: usize,
    threads: usize,
) -> crate::runner::RunResult {
    use std::sync::atomic::{AtomicU64, Ordering};
    let remaining = AtomicU64::new(ops);
    let start = std::time::Instant::now();
    let results: Vec<(p2kvs_util::histogram::Histogram, u64, u64)> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads.max(1) {
                let remaining = &remaining;
                let mut gen = MicroGenerator::new(kind, existing, value_size, t as u64);
                handles.push(scope.spawn(move || {
                    let mut hist = p2kvs_util::histogram::Histogram::new();
                    let mut done = 0u64;
                    let mut errors = 0u64;
                    loop {
                        if remaining
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                                v.checked_sub(1)
                            })
                            .is_err()
                        {
                            break;
                        }
                        let op = gen.next_op();
                        let t0 = std::time::Instant::now();
                        let ok = match op {
                            OpKind::Insert { key, value } => client.insert(&key, &value).is_ok(),
                            OpKind::Update { key, value } => client.update(&key, &value).is_ok(),
                            OpKind::Read { key } => client.read(&key).is_ok(),
                            _ => unreachable!("micro workloads have no scans"),
                        };
                        hist.record(t0.elapsed().as_nanos() as u64);
                        done += 1;
                        if !ok {
                            errors += 1;
                        }
                    }
                    (hist, done, errors)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("micro thread panicked"))
                .collect()
        });
    let elapsed = start.elapsed();
    let mut latency = p2kvs_util::histogram::Histogram::new();
    let mut total = 0;
    let mut errors = 0;
    for (h, d, e) in results {
        latency.merge(&h);
        total += d;
        errors += e;
    }
    crate::runner::RunResult {
        ops: total,
        elapsed,
        latency,
        errors,
    }
}

/// Loads `n` hashed keys (prerequisite of overwrite/readseq/readrandom).
pub fn load_hashed<C: KvClient + ?Sized>(client: &C, n: u64, value_size: usize, threads: usize) {
    use std::sync::atomic::{AtomicU64, Ordering};
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let next = &next;
            scope.spawn(move || {
                let keys = KeySpace::hashed();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let _ = client.insert(&keys.key(i), &keys.value(i, value_size));
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapClient {
        map: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
    }

    impl KvClient for MapClient {
        fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn scan(&self, _key: &[u8], len: usize) -> Result<usize, String> {
            Ok(len)
        }
    }

    #[test]
    fn fillseq_produces_ordered_unique_keys() {
        let mut g = MicroGenerator::new(MicroKind::FillSeq, 0, 16, 0);
        let mut last = Vec::new();
        for _ in 0..100 {
            if let OpKind::Insert { key, .. } = g.next_op() {
                assert!(key > last, "fillseq keys must be increasing");
                last = key;
            } else {
                panic!("fillseq must insert");
            }
        }
    }

    #[test]
    fn fillrandom_keys_unique_across_threads() {
        let mut g0 = MicroGenerator::new(MicroKind::FillRandom, 0, 16, 0);
        let mut g1 = MicroGenerator::new(MicroKind::FillRandom, 0, 16, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            for g in [&mut g0, &mut g1] {
                if let OpKind::Insert { key, .. } = g.next_op() {
                    assert!(seen.insert(key));
                }
            }
        }
    }

    #[test]
    fn run_micro_full_cycle() {
        let client = MapClient::default();
        load_hashed(&client, 1000, 16, 4);
        assert_eq!(client.map.lock().len(), 1000);
        for kind in MicroKind::all() {
            let r = run_micro(&client, kind, 1000, 2000, 16, 4);
            assert_eq!(r.ops, 2000, "{}", kind.name());
            assert_eq!(r.errors, 0);
        }
        // readrandom after load hits existing keys.
        let keys = KeySpace::hashed();
        assert!(client.map.lock().contains_key(&keys.key(0)));
    }

    #[test]
    fn names_and_load_requirements() {
        assert_eq!(MicroKind::FillSeq.name(), "fillseq");
        assert!(!MicroKind::FillSeq.needs_load());
        assert!(MicroKind::ReadRandom.needs_load());
        assert!(MicroKind::Overwrite.needs_load());
        assert_eq!(MicroKind::all().len(), 5);
    }
}
