//! `kvell`: a share-nothing, B-tree-indexed KV store (KVell stand-in).
//!
//! Reproduces the architecture the p2KVS paper compares against in §5.5
//! (KVell, SOSP '19):
//!
//! * **Share nothing** — the key space is hash-partitioned across worker
//!   threads; each worker owns its shard's index, slab files, free lists
//!   and item cache, so no locks are shared between workers.
//! * **In-memory B-tree index** — every key lives in RAM with its disk
//!   location; this is why KVell's memory footprint is an order of
//!   magnitude larger than an LSM engine's (Fig 21b).
//! * **In-place updates, no log, no compaction** — items live in
//!   size-classed slab files and are overwritten in place; writes are
//!   single-slot IOs, giving low write amplification but small random IOs
//!   that cannot saturate the device's sequential bandwidth (Fig 21a).
//! * **Item cache** — a per-shard LRU over slab slots stands in for
//!   KVell's page cache.
//!
//! Commit durability matches KVell's: an item is durable once its slot
//! write completes; there is no WAL to replay, and recovery rebuilds the
//! index by scanning the slabs.

pub mod shard;
pub mod slab;
pub mod store;

pub use store::{KvellDb, KvellOptions, KvellStats};
