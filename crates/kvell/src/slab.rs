//! Size-classed slab files with in-place slot updates.
//!
//! A slab stores fixed-size items:
//!
//! ```text
//! slot := key_len: u16 | val_len: u32 | key | value | padding
//! ```
//!
//! `key_len == 0` marks a free (or deleted) slot. Writes overwrite one
//! slot in place — the KVell commit model: once the slot write completes
//! the item is durable, no log needed. Recovery scans all slots to rebuild
//! the in-memory index.

use std::io;

use p2kvs_storage::{EnvRef, RandomRwFile};

/// Item size classes (slot sizes in bytes, including the 6-byte header).
pub const SIZE_CLASSES: &[usize] = &[64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

/// Slot header bytes (`key_len: u16 | val_len: u32`).
pub const HEADER: usize = 6;

/// Picks the smallest class index fitting `key_len + val_len` payload.
pub fn class_for(key_len: usize, val_len: usize) -> Option<usize> {
    let need = HEADER + key_len + val_len;
    SIZE_CLASSES.iter().position(|&c| c >= need)
}

/// One slab file: an array of `slot_size`d slots.
pub struct Slab {
    file: Box<dyn RandomRwFile>,
    /// Slot size of this slab's class.
    pub slot_size: usize,
    /// Number of slots ever allocated (including freed ones).
    slots: u64,
    free: Vec<u64>,
}

impl Slab {
    /// Opens (or creates) the slab for `class_idx` inside `dir`, scanning
    /// existing slots and reporting live items to `on_item`.
    pub fn open(
        env: &EnvRef,
        dir: &std::path::Path,
        class_idx: usize,
        mut on_item: impl FnMut(u64, Vec<u8>, Vec<u8>),
    ) -> io::Result<Slab> {
        let slot_size = SIZE_CLASSES[class_idx];
        let path = dir.join(format!("{class_idx}.slab"));
        let file = env.new_random_rw(&path)?;
        let slots = file.len() / slot_size as u64;
        let mut free = Vec::new();
        let mut buf = vec![0u8; slot_size];
        for slot in 0..slots {
            file.read_at(slot * slot_size as u64, &mut buf)?;
            match decode(&buf) {
                Some((key, value)) => on_item(slot, key, value),
                None => free.push(slot),
            }
        }
        Ok(Slab {
            file,
            slot_size,
            slots,
            free,
        })
    }

    fn encode(&self, key: &[u8], value: &[u8]) -> Vec<u8> {
        debug_assert!(HEADER + key.len() + value.len() <= self.slot_size);
        let mut buf = vec![0u8; self.slot_size];
        buf[0..2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        buf[2..6].copy_from_slice(&(value.len() as u32).to_le_bytes());
        buf[HEADER..HEADER + key.len()].copy_from_slice(key);
        buf[HEADER + key.len()..HEADER + key.len() + value.len()].copy_from_slice(value);
        buf
    }

    /// Writes `key -> value` into `slot` in place (one slot-sized IO).
    pub fn write_slot(&mut self, slot: u64, key: &[u8], value: &[u8]) -> io::Result<()> {
        let buf = self.encode(key, value);
        self.file.write_at(slot * self.slot_size as u64, &buf)
    }

    /// Allocates a slot (reusing the free list, else growing the file) and
    /// writes the item. Returns the slot index.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> io::Result<u64> {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slots;
                self.slots += 1;
                s
            }
        };
        self.write_slot(slot, key, value)?;
        Ok(slot)
    }

    /// Marks `slot` free (zeroed header) and recycles it.
    pub fn free_slot(&mut self, slot: u64) -> io::Result<()> {
        let zero = vec![0u8; self.slot_size];
        self.file.write_at(slot * self.slot_size as u64, &zero)?;
        self.free.push(slot);
        Ok(())
    }

    /// Reads the item at `slot`, or `None` for a free slot.
    pub fn read_slot(&self, slot: u64) -> io::Result<Option<(Vec<u8>, Vec<u8>)>> {
        let mut buf = vec![0u8; self.slot_size];
        self.file.read_at(slot * self.slot_size as u64, &mut buf)?;
        Ok(decode(&buf))
    }

    /// Total slots (live + free).
    pub fn len(&self) -> u64 {
        self.slots
    }

    /// Whether the slab has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots == 0
    }
}

/// Decodes a slot buffer into `(key, value)`, or `None` if free/corrupt.
fn decode(buf: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let key_len = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    if key_len == 0 {
        return None;
    }
    let val_len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
    if HEADER + key_len + val_len > buf.len() {
        return None;
    }
    Some((
        buf[HEADER..HEADER + key_len].to_vec(),
        buf[HEADER + key_len..HEADER + key_len + val_len].to_vec(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::{Env, MemEnv};
    use std::sync::Arc;

    fn env() -> EnvRef {
        Arc::new(MemEnv::new())
    }

    #[test]
    fn class_selection() {
        assert_eq!(class_for(10, 10), Some(0)); // 26 <= 64
        assert_eq!(class_for(10, 100), Some(1)); // 116 <= 128
        assert_eq!(SIZE_CLASSES[class_for(16, 1024).unwrap()], 2048);
        assert!(class_for(10, 1 << 20).is_none());
    }

    #[test]
    fn insert_read_roundtrip() {
        let env = env();
        env.create_dir_all(std::path::Path::new("s")).unwrap();
        let mut slab = Slab::open(&env, std::path::Path::new("s"), 1, |_, _, _| {}).unwrap();
        let a = slab.insert(b"alpha", b"one").unwrap();
        let b = slab.insert(b"beta", b"two").unwrap();
        assert_ne!(a, b);
        assert_eq!(
            slab.read_slot(a).unwrap().unwrap(),
            (b"alpha".to_vec(), b"one".to_vec())
        );
        assert_eq!(
            slab.read_slot(b).unwrap().unwrap(),
            (b"beta".to_vec(), b"two".to_vec())
        );
    }

    #[test]
    fn in_place_update_does_not_grow() {
        let env = env();
        env.create_dir_all(std::path::Path::new("s")).unwrap();
        let mut slab = Slab::open(&env, std::path::Path::new("s"), 1, |_, _, _| {}).unwrap();
        let slot = slab.insert(b"k", b"v1").unwrap();
        slab.write_slot(slot, b"k", b"v2-longer").unwrap();
        assert_eq!(
            slab.read_slot(slot).unwrap().unwrap(),
            (b"k".to_vec(), b"v2-longer".to_vec())
        );
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn free_and_reuse() {
        let env = env();
        env.create_dir_all(std::path::Path::new("s")).unwrap();
        let mut slab = Slab::open(&env, std::path::Path::new("s"), 0, |_, _, _| {}).unwrap();
        let a = slab.insert(b"a", b"1").unwrap();
        slab.free_slot(a).unwrap();
        assert_eq!(slab.read_slot(a).unwrap(), None);
        let b = slab.insert(b"b", b"2").unwrap();
        assert_eq!(b, a, "free slot must be recycled");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn recovery_scan_reports_live_items() {
        let env = env();
        let dir = std::path::Path::new("s");
        env.create_dir_all(dir).unwrap();
        {
            let mut slab = Slab::open(&env, dir, 0, |_, _, _| {}).unwrap();
            slab.insert(b"keep1", b"v1").unwrap();
            let dead = slab.insert(b"dead", b"x").unwrap();
            slab.insert(b"keep2", b"v2").unwrap();
            slab.free_slot(dead).unwrap();
        }
        let mut seen = Vec::new();
        let _slab = Slab::open(&env, dir, 0, |slot, k, v| seen.push((slot, k, v))).unwrap();
        seen.sort();
        assert_eq!(
            seen,
            vec![
                (0, b"keep1".to_vec(), b"v1".to_vec()),
                (2, b"keep2".to_vec(), b"v2".to_vec()),
            ]
        );
    }

    #[test]
    fn writes_survive_power_failure() {
        // Slot writes are durable immediately: no WAL, no sync dance.
        let mem = Arc::new(MemEnv::new());
        let env: EnvRef = mem.clone();
        let dir = std::path::Path::new("s");
        env.create_dir_all(dir).unwrap();
        {
            let mut slab = Slab::open(&env, dir, 0, |_, _, _| {}).unwrap();
            slab.insert(b"durable", b"yes").unwrap();
        }
        mem.fs().power_failure();
        let mut seen = Vec::new();
        let _ = Slab::open(&env, dir, 0, |_, k, v| seen.push((k, v))).unwrap();
        assert_eq!(seen, vec![(b"durable".to_vec(), b"yes".to_vec())]);
    }
}
