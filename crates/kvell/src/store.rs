//! The share-nothing store: worker threads over hash-partitioned shards.
//!
//! Clients enqueue requests to the owning worker's channel and block on a
//! per-request completion — the same thread architecture KVell uses, and
//! structurally the same shape as the p2KVS accessing layer (which is the
//! point of the paper's §5.5 comparison: both avoid shared structures, but
//! the storage engines underneath differ).

use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use p2kvs_util::hash::fnv1a64;
use p2kvs_util::timing::BusyClock;
use p2kvs_storage::EnvRef;

use crate::shard::Shard;

/// Store configuration.
#[derive(Clone)]
pub struct KvellOptions {
    /// Environment for slab files.
    pub env: EnvRef,
    /// Number of share-nothing workers.
    pub workers: usize,
    /// Item cache capacity per shard, in bytes.
    pub cache_bytes_per_shard: usize,
    /// Pin workers to cores.
    pub pin_workers: bool,
}

impl KvellOptions {
    /// Defaults over the given env: 4 workers, 4 MiB cache each.
    pub fn new(env: EnvRef) -> KvellOptions {
        KvellOptions {
            env,
            workers: 4,
            cache_bytes_per_shard: 4 << 20,
            pin_workers: false,
        }
    }
}

enum Op {
    Put(Vec<u8>, Vec<u8>),
    Get(Vec<u8>),
    Delete(Vec<u8>),
    Scan(Vec<u8>, usize),
    MemUsage,
    Len,
}

enum Reply {
    Done,
    Value(Option<Vec<u8>>),
    Existed(bool),
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    Usage(usize),
    Count(usize),
}

struct Request {
    op: Op,
    reply: Sender<io::Result<Reply>>,
}

/// Point-in-time store statistics.
#[derive(Debug, Clone)]
pub struct KvellStats {
    /// Busy time per worker since open.
    pub worker_busy: Vec<std::time::Duration>,
    /// Wall time since open.
    pub uptime: std::time::Duration,
}

/// The KVell-style store.
pub struct KvellDb {
    senders: Vec<Sender<Request>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    clocks: Vec<Arc<BusyClock>>,
    opened: Instant,
    workers: usize,
}

impl KvellDb {
    /// Opens (or recovers) a store under `dir`.
    pub fn open(opts: KvellOptions, dir: impl Into<PathBuf>) -> io::Result<KvellDb> {
        let dir = dir.into();
        let workers = opts.workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut clocks = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded::<Request>();
            let shard_dir = dir.join(format!("shard{w}"));
            let mut shard = Shard::open(opts.env.clone(), shard_dir, opts.cache_bytes_per_shard)?;
            let clock = Arc::new(BusyClock::new());
            let clock2 = clock.clone();
            let pin = opts.pin_workers;
            let handle = std::thread::Builder::new()
                .name(format!("kvell-worker-{w}"))
                .spawn(move || {
                    if pin {
                        p2kvs_util::affinity::pin_to_core(w);
                    }
                    while let Ok(req) = rx.recv() {
                        let result = clock2.time(|| match req.op {
                            Op::Put(k, v) => shard.put(&k, &v).map(|()| Reply::Done),
                            Op::Get(k) => shard.get(&k).map(Reply::Value),
                            Op::Delete(k) => shard.delete(&k).map(Reply::Existed),
                            Op::Scan(start, n) => shard.scan(&start, n).map(Reply::Entries),
                            Op::MemUsage => Ok(Reply::Usage(shard.mem_usage())),
                            Op::Len => Ok(Reply::Count(shard.len())),
                        });
                        let _ = req.reply.send(result);
                    }
                })
                .map_err(io::Error::other)?;
            senders.push(tx);
            handles.push(handle);
            clocks.push(clock);
        }
        Ok(KvellDb {
            senders,
            handles,
            clocks,
            opened: Instant::now(),
            workers,
        })
    }

    fn worker_of(&self, key: &[u8]) -> usize {
        (fnv1a64(key) % self.workers as u64) as usize
    }

    fn call(&self, worker: usize, op: Op) -> io::Result<Reply> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.senders[worker]
            .send(Request { op, reply: tx })
            .map_err(|_| io::Error::other("kvell worker gone"))?;
        rx.recv().map_err(|_| io::Error::other("kvell worker gone"))?
    }

    /// Inserts or updates `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> io::Result<()> {
        match self.call(self.worker_of(key), Op::Put(key.to_vec(), value.to_vec()))? {
            Reply::Done => Ok(()),
            _ => unreachable!("put reply"),
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self.call(self.worker_of(key), Op::Get(key.to_vec()))? {
            Reply::Value(v) => Ok(v),
            _ => unreachable!("get reply"),
        }
    }

    /// Deletes `key`; returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> io::Result<bool> {
        match self.call(self.worker_of(key), Op::Delete(key.to_vec()))? {
            Reply::Existed(e) => Ok(e),
            _ => unreachable!("delete reply"),
        }
    }

    /// Global SCAN: queries every shard for `count` items past `start` and
    /// merges (KVell's index makes per-shard scans cheap; the cross-shard
    /// merge is the same filter step p2KVS's parallel SCAN uses).
    pub fn scan(&self, start: &[u8], count: usize) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut all = Vec::new();
        for w in 0..self.workers {
            match self.call(w, Op::Scan(start.to_vec(), count))? {
                Reply::Entries(mut e) => all.append(&mut e),
                _ => unreachable!("scan reply"),
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.truncate(count);
        Ok(all)
    }

    /// Dumps every live entry, merged in key order — one full-index pass
    /// per worker instead of the O(chunks) re-seeks a paginated scan
    /// would cost. Each worker materializes its shard atomically (the
    /// worker thread serializes the dump against its own writes), so a
    /// caller that has quiesced external writers gets a consistent copy.
    pub fn dump(&self) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut all = Vec::new();
        for w in 0..self.workers {
            match self.call(w, Op::Scan(Vec::new(), usize::MAX))? {
                Reply::Entries(mut e) => all.append(&mut e),
                _ => unreachable!("dump reply"),
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(all)
    }

    /// Total live keys.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for w in 0..self.workers {
            match self.call(w, Op::Len)? {
                Reply::Count(c) => n += c,
                _ => unreachable!("len reply"),
            }
        }
        Ok(n)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Approximate memory footprint (indexes + caches).
    pub fn mem_usage(&self) -> io::Result<usize> {
        let mut n = 0;
        for w in 0..self.workers {
            match self.call(w, Op::MemUsage)? {
                Reply::Usage(u) => n += u,
                _ => unreachable!("mem reply"),
            }
        }
        Ok(n)
    }

    /// Worker utilization statistics.
    pub fn stats(&self) -> KvellStats {
        KvellStats {
            worker_busy: self.clocks.iter().map(|c| c.busy()).collect(),
            uptime: self.opened.elapsed(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for KvellDb {
    fn drop(&mut self) {
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::MemEnv;

    fn db(workers: usize) -> KvellDb {
        let env: EnvRef = Arc::new(MemEnv::new());
        let mut opts = KvellOptions::new(env);
        opts.workers = workers;
        KvellDb::open(opts, "kvell").unwrap()
    }

    #[test]
    fn basic_crud_across_workers() {
        let db = db(4);
        for i in 0..200 {
            db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        assert_eq!(db.len().unwrap(), 200);
        for i in 0..200 {
            assert_eq!(
                db.get(format!("key{i:04}").as_bytes()).unwrap().unwrap(),
                format!("v{i}").as_bytes()
            );
        }
        assert!(db.delete(b"key0100").unwrap());
        assert_eq!(db.get(b"key0100").unwrap(), None);
        assert_eq!(db.len().unwrap(), 199);
    }

    #[test]
    fn scan_merges_across_shards() {
        let db = db(4);
        for i in 0..100 {
            db.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        let got = db.scan(b"k010", 5).unwrap();
        let keys: Vec<_> = got.iter().map(|(k, _)| String::from_utf8(k.clone()).unwrap()).collect();
        assert_eq!(keys, vec!["k010", "k011", "k012", "k013", "k014"]);
    }

    #[test]
    fn dump_returns_everything_in_order() {
        let db = db(4);
        for i in (0..150).rev() {
            db.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        db.delete(b"k075").unwrap();
        let all = db.dump().unwrap();
        assert_eq!(all.len(), 149);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "key order");
        assert!(!all.iter().any(|(k, _)| k == b"k075"));
        assert_eq!(all, db.scan(b"", usize::MAX).unwrap());
    }

    #[test]
    fn concurrent_clients() {
        let db = Arc::new(db(4));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let k = format!("t{t}-{i}");
                        db.put(k.as_bytes(), b"v").unwrap();
                        assert_eq!(db.get(k.as_bytes()).unwrap().unwrap(), b"v");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len().unwrap(), 1600);
    }

    #[test]
    fn reopen_recovers() {
        let env: EnvRef = Arc::new(MemEnv::new());
        {
            let mut opts = KvellOptions::new(env.clone());
            opts.workers = 2;
            let db = KvellDb::open(opts, "kv").unwrap();
            for i in 0..100 {
                db.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
        }
        let mut opts = KvellOptions::new(env);
        opts.workers = 2;
        let db = KvellDb::open(opts, "kv").unwrap();
        assert_eq!(db.len().unwrap(), 100);
        assert_eq!(db.get(b"k42").unwrap().unwrap(), b"v42");
    }

    #[test]
    fn stats_report_busy_time() {
        let db = db(2);
        for i in 0..500 {
            db.put(format!("k{i}").as_bytes(), &[0u8; 100]).unwrap();
        }
        let stats = db.stats();
        assert_eq!(stats.worker_busy.len(), 2);
        assert!(stats.worker_busy.iter().any(|d| !d.is_zero()));
        assert!(db.mem_usage().unwrap() > 0);
    }
}
