//! One share-nothing shard: in-memory B-tree index over slab slots.
//!
//! A shard is owned by exactly one worker thread, so nothing here is
//! synchronized — that absence of shared-structure contention is KVell's
//! core design point, mirrored by p2KVS's per-worker instances.

use std::collections::BTreeMap;

use p2kvs_util::lru::ByteLru;
use std::io;
use std::path::PathBuf;

use p2kvs_storage::EnvRef;

use crate::slab::{class_for, Slab, HEADER, SIZE_CLASSES};

/// Disk location of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    class: usize,
    slot: u64,
}

/// One worker's private store.
pub struct Shard {
    env: EnvRef,
    dir: PathBuf,
    index: BTreeMap<Vec<u8>, Loc>,
    slabs: Vec<Option<Slab>>,
    cache: ByteLru,
}

impl Shard {
    /// Opens the shard in `dir`, rebuilding the index from the slabs.
    pub fn open(env: EnvRef, dir: PathBuf, cache_bytes: usize) -> io::Result<Shard> {
        env.create_dir_all(&dir)?;
        let mut index = BTreeMap::new();
        let mut slabs: Vec<Option<Slab>> = (0..SIZE_CLASSES.len()).map(|_| None).collect();
        for (class, slot_entry) in slabs.iter_mut().enumerate() {
            let path = dir.join(format!("{class}.slab"));
            if env.exists(&path) {
                let slab = Slab::open(&env, &dir, class, |slot, key, _value| {
                    index.insert(key, Loc { class, slot });
                })?;
                *slot_entry = Some(slab);
            }
        }
        Ok(Shard {
            env,
            dir,
            index,
            slabs,
            cache: ByteLru::new(cache_bytes),
        })
    }

    fn slab_mut(&mut self, class: usize) -> io::Result<&mut Slab> {
        if self.slabs[class].is_none() {
            self.slabs[class] = Some(Slab::open(&self.env, &self.dir, class, |_, _, _| {})?);
        }
        Ok(self.slabs[class].as_mut().expect("slab just ensured"))
    }

    /// Inserts or updates `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        let class = class_for(key.len(), value.len()).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("item too large: {} bytes", key.len() + value.len() + HEADER),
            )
        })?;
        match self.index.get(key).copied() {
            Some(loc) if loc.class == class => {
                // In-place update: the KVell fast path.
                self.slab_mut(class)?.write_slot(loc.slot, key, value)?;
            }
            Some(loc) => {
                let slot = self.slab_mut(class)?.insert(key, value)?;
                self.slab_mut(loc.class)?.free_slot(loc.slot)?;
                self.index.insert(key.to_vec(), Loc { class, slot });
            }
            None => {
                let slot = self.slab_mut(class)?.insert(key, value)?;
                self.index.insert(key.to_vec(), Loc { class, slot });
            }
        }
        self.cache.insert(key, value);
        Ok(())
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        if let Some(v) = self.cache.get(key) {
            return Ok(Some(v));
        }
        let Some(loc) = self.index.get(key).copied() else {
            return Ok(None);
        };
        let item = self.slabs[loc.class]
            .as_ref()
            .and_then(|s| s.read_slot(loc.slot).transpose())
            .transpose()?;
        match item {
            Some((stored_key, value)) => {
                debug_assert_eq!(stored_key, key);
                self.cache.insert(key, &value);
                Ok(Some(value))
            }
            None => Ok(None),
        }
    }

    /// Deletes `key`; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> io::Result<bool> {
        let Some(loc) = self.index.remove(key) else {
            return Ok(false);
        };
        self.cache.remove(key);
        self.slab_mut(loc.class)?.free_slot(loc.slot)?;
        Ok(true)
    }

    /// Up to `count` items with keys `>= start`, in order.
    pub fn scan(&mut self, start: &[u8], count: usize) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let keys: Vec<Vec<u8>> = self
            .index
            .range(start.to_vec()..)
            .take(count)
            .map(|(k, _)| k.clone())
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(v) = self.get(&k)? {
                out.push((k, v));
            }
        }
        Ok(out)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the shard holds no keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Approximate memory footprint: index (keys + node overhead) plus the
    /// item cache. The large index term is KVell's signature cost.
    pub fn mem_usage(&self) -> usize {
        let index: usize = self
            .index
            .keys()
            .map(|k| k.len() + std::mem::size_of::<Loc>() + 48)
            .sum();
        index + self.cache.usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::MemEnv;
    use std::sync::Arc;

    fn shard() -> Shard {
        let env: EnvRef = Arc::new(MemEnv::new());
        Shard::open(env, PathBuf::from("shard0"), 64 << 10).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let mut s = shard();
        s.put(b"k", b"v").unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap(), b"v");
        assert!(s.delete(b"k").unwrap());
        assert_eq!(s.get(b"k").unwrap(), None);
        assert!(!s.delete(b"k").unwrap());
    }

    #[test]
    fn update_same_class_in_place() {
        let mut s = shard();
        s.put(b"k", b"v1").unwrap();
        s.put(b"k", b"v2").unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap(), b"v2");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn update_across_size_classes_moves_item() {
        let mut s = shard();
        s.put(b"k", b"small").unwrap();
        let big = vec![7u8; 1000];
        s.put(b"k", &big).unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap(), big);
        // Back to small: the big slot is freed and reusable.
        s.put(b"k", b"small-again").unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap(), b"small-again");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn scan_is_ordered() {
        let mut s = shard();
        for i in [5, 1, 9, 3, 7] {
            s.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let got = s.scan(b"k3", 3).unwrap();
        let keys: Vec<_> = got.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"k3".to_vec(), b"k5".to_vec(), b"k7".to_vec()]);
        assert!(s.scan(b"z", 10).unwrap().is_empty());
    }

    #[test]
    fn reopen_recovers_index() {
        let env: EnvRef = Arc::new(MemEnv::new());
        {
            let mut s = Shard::open(env.clone(), PathBuf::from("sh"), 0).unwrap();
            for i in 0..100 {
                s.put(format!("key{i:03}").as_bytes(), format!("val{i}").as_bytes())
                    .unwrap();
            }
            s.delete(b"key050").unwrap();
        }
        let mut s = Shard::open(env, PathBuf::from("sh"), 0).unwrap();
        assert_eq!(s.len(), 99);
        assert_eq!(s.get(b"key000").unwrap().unwrap(), b"val0");
        assert_eq!(s.get(b"key050").unwrap(), None);
        assert_eq!(s.get(b"key099").unwrap().unwrap(), b"val99");
    }

    #[test]
    fn cache_serves_repeat_reads_without_io() {
        let env: EnvRef = Arc::new(MemEnv::new());
        let mut s = Shard::open(env.clone(), PathBuf::from("sh"), 64 << 10).unwrap();
        s.put(b"hot", b"value").unwrap();
        let r0 = env.io_stats().bytes_read;
        s.get(b"hot").unwrap();
        assert_eq!(env.io_stats().bytes_read, r0, "cached after put");
    }

    #[test]
    fn mem_usage_grows_with_index() {
        let mut s = shard();
        let before = s.mem_usage();
        for i in 0..1000 {
            s.put(format!("key{i:06}").as_bytes(), b"v").unwrap();
        }
        assert!(s.mem_usage() > before + 1000 * 10);
    }

    #[test]
    fn oversized_item_rejected() {
        let mut s = shard();
        assert!(s.put(b"k", &vec![0u8; 1 << 20]).is_err());
    }
}
