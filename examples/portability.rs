//! Portability: the same p2KVS code over three engine personalities.
//!
//! §4.6 of the paper ports p2KVS to RocksDB, LevelDB and WiredTiger by
//! touching only open/submit/close. This example runs one workload over
//! all three adapters (plus standalone KVell for contrast) and prints how
//! the OBM adapts: write-merging only where the engine has `WriteBatch`,
//! read-merging only where it has `multiget`.
//!
//! ```text
//! cargo run --release -p p2kvs-examples --bin portability
//! ```

use std::sync::Arc;
use std::time::Instant;

use p2kvs::engine::{LsmFactory, WtFactory};
use p2kvs::{Capabilities, KvsEngine, P2Kvs, P2KvsOptions};
use p2kvs_storage::{DeviceProfile, SimEnv};

const OPS: u64 = 5_000;

fn workload<E: KvsEngine>(store: &Arc<P2Kvs<E>>) -> (f64, f64) {
    // Concurrent writers then concurrent readers.
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..OPS / 4 {
                    let k = format!("key{:08}", i * 4 + t);
                    store.put(k.as_bytes(), b"value-128-bytes-.................").unwrap();
                }
            });
        }
    });
    let write_qps = OPS as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..OPS / 4 {
                    let k = format!("key{:08}", (i * 7 + t) % OPS);
                    store.get(k.as_bytes()).unwrap().expect("loaded key");
                }
            });
        }
    });
    (write_qps, OPS as f64 / t0.elapsed().as_secs_f64())
}

fn describe(caps: Capabilities) -> String {
    format!(
        "batch-write: {:3}  multiget: {:3}",
        if caps.batch_write { "yes" } else { "no" },
        if caps.multiget { "yes" } else { "no" }
    )
}

fn report<E: KvsEngine>(name: &str, store: Arc<P2Kvs<E>>) {
    let caps = store.engines()[0].capabilities();
    let (w, r) = workload(&store);
    let snap = store.snapshot();
    println!(
        "{name:<22} {}  | {w:>8.0} writes/s {r:>8.0} reads/s | OBM avg batch {:.2}",
        describe(caps),
        snap.avg_batch_size()
    );
}

fn main() {
    println!("p2KVS over three engine personalities (4 workers, 4 user threads):\n");
    let opts = || {
        let mut o = P2KvsOptions::with_workers(4);
        o.pin_workers = false;
        o
    };

    // RocksDB mode: every fast path available.
    {
        let env = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
        let factory = LsmFactory::new(lsmkv::Options::rocksdb_like(env));
        report("lsmkv (RocksDB mode)", Arc::new(P2Kvs::open(factory, "port-rocks", opts()).unwrap()));
    }
    // LevelDB mode: WriteBatch but no multiget.
    {
        let env = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
        let factory = LsmFactory::new(lsmkv::Options::leveldb_like(env));
        report("lsmkv (LevelDB mode)", Arc::new(P2Kvs::open(factory, "port-level", opts()).unwrap()));
    }
    // WiredTiger: neither fast path; OBM degrades to per-request calls.
    {
        let env = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
        let factory = WtFactory::new(wtiger::WtOptions::new(env));
        report("wtiger (WiredTiger)", Arc::new(P2Kvs::open(factory, "port-wt", opts()).unwrap()));
    }
    // Contrast: standalone KVell (its own share-nothing workers).
    {
        let env: p2kvs_storage::EnvRef =
            Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
        let mut kopts = kvell::KvellOptions::new(env);
        kopts.workers = 4;
        let db = Arc::new(kvell::KvellDb::open(kopts, "port-kvell").unwrap());
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let db = db.clone();
                scope.spawn(move || {
                    for i in 0..OPS / 4 {
                        db.put(format!("key{:08}", i * 4 + t).as_bytes(), b"value").unwrap();
                    }
                });
            }
        });
        let w = OPS as f64 / t0.elapsed().as_secs_f64();
        println!(
            "{:<22} (standalone, no OBM)       | {w:>8.0} writes/s | mem {} KiB (all-in-memory index)",
            "kvell",
            db.mem_usage().unwrap() / 1024
        );
    }
}
