//! Runnable examples; see the [[bin]] targets.
