//! Crash consistency: the §4.5 kill-during-write experiment.
//!
//! Reproduces the paper's recovery demonstration: transactions span
//! multiple instances; the process "crashes" (engines stop without
//! syncing, then the simulated device drops unsynced bytes); on reopen,
//! p2KVS rolls back every transaction whose commit record is missing while
//! keeping every committed one — across all instances at once.
//!
//! ```text
//! cargo run -p p2kvs-examples --bin crash_recovery
//! ```

use std::sync::Arc;

use p2kvs::engine::{GsnFilter, LsmFactory};
use p2kvs::{KvsEngine, P2Kvs, P2KvsOptions, WriteOp};
use p2kvs_storage::MemEnv;

fn transfer(i: u64, note: &str) -> Vec<WriteOp> {
    // A "bank transfer": debit + credit + journal entry, spread across the
    // key space so the sub-batches land on different instances.
    vec![
        WriteOp::Put {
            key: format!("acct/src/{i}").into_bytes(),
            value: format!("-100 ({note})").into_bytes(),
        },
        WriteOp::Put {
            key: format!("acct/dst/{i}").into_bytes(),
            value: format!("+100 ({note})").into_bytes(),
        },
        WriteOp::Put {
            key: format!("journal/{i}").into_bytes(),
            value: note.as_bytes().to_vec(),
        },
    ]
}

fn main() {
    let mem_env = Arc::new(MemEnv::new());
    let env: p2kvs_storage::EnvRef = mem_env.clone();
    let factory = || LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone()));
    let opts = || {
        let mut o = P2KvsOptions::with_workers(4);
        o.pin_workers = false;
        o
    };

    // --- Phase 1: commit some transactions, leave one in the crash window.
    {
        let store = P2Kvs::open(factory(), "bank", opts()).expect("open");
        for i in 0..10 {
            store.write_batch(transfer(i, "committed")).unwrap();
        }
        println!("phase 1 -> committed 10 transfers");

        // Simulate a transaction caught mid-flight: its sub-batches reach
        // the instances (tagged with a GSN), but the process dies before
        // the commit record is written. We drive the engines directly to
        // freeze that exact moment.
        let doomed_gsn = 1_000_000;
        for (i, engine) in store.engines().iter().enumerate() {
            engine
                .write_batch(
                    &[WriteOp::Put {
                        key: format!("acct/src/ghost-{i}").into_bytes(),
                        value: b"-100 (uncommitted)".to_vec(),
                    }],
                    doomed_gsn,
                )
                .unwrap();
        }
        println!("phase 1 -> transfer #11 written to all instances but NOT committed");
        store.close();
    }
    // Power failure: everything not fsynced is gone; the WAL records of
    // committed transactions were synced, so they survive.
    mem_env.fs().power_failure();
    println!("crash   -> power failure injected (unsynced bytes dropped)\n");

    // --- Phase 2: recover. -------------------------------------------------
    {
        let store = P2Kvs::open(factory(), "bank", opts()).expect("recover");
        let mut committed = 0;
        for i in 0..10 {
            let src = store.get(format!("acct/src/{i}").as_bytes()).unwrap();
            let dst = store.get(format!("acct/dst/{i}").as_bytes()).unwrap();
            assert!(src.is_some() && dst.is_some(), "committed transfer {i} lost!");
            committed += 1;
        }
        println!("phase 2 -> all {committed} committed transfers intact");
        for i in 0..store.workers() {
            let ghost = store.get(format!("acct/src/ghost-{i}").as_bytes()).unwrap();
            assert!(ghost.is_none(), "uncommitted sub-batch {i} resurrected!");
        }
        println!("phase 2 -> uncommitted transfer rolled back on every instance");

        // The GSN filter is the mechanism: show it directly.
        let filter: GsnFilter = Arc::new(|gsn| gsn == 0);
        drop(filter); // (constructed internally by P2Kvs::open from TXNLOG)
        println!("\nAtomicity across instances held through the crash. ✔");
    }
}
