//! Causal tracing demo: sample every request, then render the slowest
//! request's span tree — queue-wait, OBM batch membership, the engine
//! call with its WAL/memtable/read phases, and simulated device I/O —
//! alongside the live introspection snapshot and the flight recorder's
//! recent control-plane history. Finishes by writing the whole capture
//! as Chrome-trace JSON for ui.perfetto.dev.
//!
//! ```text
//! cargo run -p p2kvs-examples --bin trace_demo
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions, SpanKind, SpanRecord};
use p2kvs_storage::{DeviceProfile, SimEnv};

fn main() {
    // A simulated NVMe device (per-IO latency + bandwidth accounting) so
    // the device_io spans carry real busy time, and shards decoupled
    // from workers so a migration shows up in the flight recorder.
    let env: p2kvs_storage::EnvRef = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 64 << 10; // Small memtables: flushes get journaled too.
    let mut opts = P2KvsOptions::with_workers(2);
    opts.shards = 4;
    opts.pin_workers = false;
    opts.trace_sample = 1; // Demo: trace every request (default is 1/64).
    let store = P2Kvs::open(LsmFactory::new(lsm), "trace-demo-db", opts).expect("open store");

    // --- Workload: puts, async burst, gets, a scan, a migration ---------
    for i in 0..2_000u32 {
        let key = format!("item:{:05}", i % 800);
        store.put(key.as_bytes(), format!("value-{i}").as_bytes()).unwrap();
    }
    for i in 0..2_000u32 {
        store.get(format!("item:{:05}", i % 800).as_bytes()).unwrap();
    }
    let _ = store.scan(b"item:", 200).unwrap();
    store.migrate_shard(0, 1).expect("handoff");
    for i in 0..200u32 {
        store.put(format!("post:{i:04}").as_bytes(), b"after-migration").unwrap();
    }

    // --- The slowest sampled request, as a span tree ---------------------
    let spans = store.trace_spans();
    let mut traces: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for s in &spans {
        traces.entry(s.trace_id).or_default().push(*s);
    }
    let slowest = traces
        .values()
        .max_by_key(|t| t.iter().map(|s| s.dur_us).max().unwrap_or(0))
        .expect("at least one sampled trace");
    println!("===== Slowest sampled request (trace {}) =====", slowest[0].trace_id);
    for s in slowest {
        let depth = match s.kind {
            SpanKind::QueueWait | SpanKind::Batch => 0,
            SpanKind::Engine => 1,
            _ => 2,
        };
        let extra = match s.kind {
            SpanKind::Batch => format!("  [batch #{} merged {} ops]", s.batch_id, s.batch_size),
            SpanKind::DeviceIo => format!("  [{} device bytes]", s.aux),
            _ => String::new(),
        };
        println!(
            "{}{:<10} worker={} shard={} start={}us dur={}us{}",
            "  ".repeat(depth),
            s.kind.name(),
            s.worker,
            s.shard,
            s.start_us,
            s.dur_us,
            extra
        );
    }

    // --- Live introspection ----------------------------------------------
    let view = store.introspect();
    println!("\n===== introspect() =====");
    println!(
        "map epoch {} | {} migrations | {} spans recorded | journal seq {}",
        view.map_epoch, view.migrations, view.trace_spans_recorded, view.flight_last_seq
    );
    for w in &view.workers {
        println!(
            "worker {}: shards {:?}, queue depth {}, active scans {}",
            w.worker, w.shards, w.queue_depth, w.active_scans
        );
    }

    // --- The flight recorder's recent history -----------------------------
    println!("\n===== flight recorder (last 12 control-plane events) =====");
    for r in store.flight_records(12) {
        println!(
            "  seq {:>4}  +{:>8}us  {:<17} a={} b={} c={} gsn={}",
            r.seq,
            r.ts_us,
            r.kind.name(),
            r.a,
            r.b,
            r.c,
            r.gsn
        );
    }

    // --- Perfetto export ---------------------------------------------------
    let json = store.export_trace();
    std::fs::write("trace_demo.json", &json).expect("write trace_demo.json");
    println!(
        "\nwrote trace_demo.json ({} bytes) — open it at https://ui.perfetto.dev \
         (or chrome://tracing) to see every sampled request and journal event on a timeline",
        json.len()
    );
}
