//! Quickstart: open a p2KVS store over 4 RocksDB-mode instances and run
//! the basic operations from the paper's API surface — PUT/GET/DELETE,
//! asynchronous PUT, RANGE, SCAN, and a cross-instance transaction.
//!
//! ```text
//! cargo run -p p2kvs-examples --bin quickstart
//! ```

use std::sync::mpsc;
use std::sync::Arc;

use lsmkv::Options;
use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions, WriteOp};
use p2kvs_storage::MemEnv;

fn main() {
    // Engines live in an environment; here an in-memory one so the example
    // is self-contained. Swap in `p2kvs_storage::StdEnv` for a real disk or
    // `SimEnv` for a simulated device.
    let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
    let factory = LsmFactory::new(Options::rocksdb_like(env));
    let mut opts = P2KvsOptions::with_workers(4);
    opts.pin_workers = false; // Demo-friendly on small machines.
    let store = P2Kvs::open(factory, "quickstart-db", opts).expect("open store");

    // --- Basic synchronous operations -----------------------------------
    store.put(b"user:alice", b"{\"karma\": 10}").unwrap();
    store.put(b"user:bob", b"{\"karma\": 7}").unwrap();
    let alice = store.get(b"user:alice").unwrap().expect("alice exists");
    println!("alice  -> {}", String::from_utf8_lossy(&alice));
    store.delete(b"user:bob").unwrap();
    assert!(store.get(b"user:bob").unwrap().is_none());

    // --- Asynchronous writes (the paper's async interface, §4.1) --------
    let (tx, rx) = mpsc::channel();
    for i in 0..100 {
        let tx = tx.clone();
        store
            .put_async(
                format!("event:{i:04}").as_bytes(),
                format!("payload-{i}").as_bytes(),
                move |result| {
                    result.expect("async write");
                    tx.send(()).unwrap();
                },
            )
            .unwrap();
    }
    for _ in 0..100 {
        rx.recv().unwrap();
    }
    println!("async  -> 100 writes acknowledged");

    // --- RANGE and SCAN (§4.4) ------------------------------------------
    let range = store.range(b"event:0010", b"event:0015").unwrap();
    println!(
        "range  -> {:?}",
        range.iter().map(|(k, _)| String::from_utf8_lossy(k).into_owned()).collect::<Vec<_>>()
    );
    assert_eq!(range.len(), 5);
    let scan = store.scan(b"event:0090", 4).unwrap();
    assert_eq!(scan.len(), 4);
    println!("scan   -> {} entries from event:0090", scan.len());

    // --- Cross-instance transaction (§4.5) -------------------------------
    store
        .write_batch(vec![
            WriteOp::Put { key: b"account:1".to_vec(), value: b"90".to_vec() },
            WriteOp::Put { key: b"account:2".to_vec(), value: b"110".to_vec() },
        ])
        .unwrap();
    println!(
        "txn    -> account:1={} account:2={}",
        String::from_utf8_lossy(&store.get(b"account:1").unwrap().unwrap()),
        String::from_utf8_lossy(&store.get(b"account:2").unwrap().unwrap()),
    );

    // --- Introspection ----------------------------------------------------
    let snap = store.snapshot();
    println!(
        "stats  -> {} ops across {} workers, avg batch {:.2}, mem {} KiB",
        snap.total_ops(),
        snap.workers.len(),
        snap.avg_batch_size(),
        snap.mem_usage / 1024
    );
}
