//! A realistic domain scenario: the metadata store of a messaging service.
//!
//! The paper motivates p2KVS with production workloads dominated by small
//! KV pairs (90% under 1 KiB at Facebook). This example models exactly
//! that: many clients appending small message-metadata records, a mailbox
//! index updated transactionally with each message, and readers fetching
//! recent mailboxes — a PUT-heavy, small-value workload with occasional
//! range reads, running over a simulated NVMe device.
//!
//! ```text
//! cargo run --release -p p2kvs-examples --bin message_store
//! ```

use std::sync::Arc;
use std::time::Instant;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions, WriteOp};
use p2kvs_storage::{DeviceProfile, SimEnv};

const USERS: u64 = 200;
const MESSAGES_PER_SENDER: u64 = 60;
const SENDERS: usize = 8;

fn msg_key(user: u64, seq: u64) -> Vec<u8> {
    format!("msg/{user:06}/{seq:08}").into_bytes()
}

fn mailbox_key(user: u64) -> Vec<u8> {
    format!("mbox/{user:06}").into_bytes()
}

fn main() {
    let env = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
    let mut engine_opts = lsmkv::Options::rocksdb_like(env.clone());
    engine_opts.memtable_size = 1 << 20;
    let factory = LsmFactory::new(engine_opts);
    let mut opts = P2KvsOptions::with_workers(4);
    opts.pin_workers = false;
    let store = Arc::new(P2Kvs::open(factory, "message-store", opts).expect("open store"));

    // --- Ingest: concurrent senders, one transaction per message ---------
    // Each message writes its body record and bumps the recipient's
    // mailbox head atomically; the two keys usually land on different
    // instances, exercising the GSN transaction path (§4.5).
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for s in 0..SENDERS {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..MESSAGES_PER_SENDER {
                    let user = (i * SENDERS as u64 + s as u64) % USERS;
                    let seq = i;
                    let body = format!(
                        "{{\"from\": {s}, \"ts\": {seq}, \"text\": \"hello #{i} from sender {s}\"}}"
                    );
                    store
                        .write_batch(vec![
                            WriteOp::Put {
                                key: msg_key(user, seq),
                                value: body.into_bytes(),
                            },
                            WriteOp::Put {
                                key: mailbox_key(user),
                                value: format!("{seq}").into_bytes(),
                            },
                        ])
                        .expect("deliver message");
                }
            });
        }
    });
    let delivered = SENDERS as u64 * MESSAGES_PER_SENDER;
    println!(
        "ingest  -> {delivered} messages in {:.2?} ({:.0} msgs/s, transactional)",
        t0.elapsed(),
        delivered as f64 / t0.elapsed().as_secs_f64()
    );

    // --- Read path: fetch a user's recent messages -----------------------
    let user = 7u64;
    let head: u64 = String::from_utf8(store.get(&mailbox_key(user)).unwrap().expect("mailbox"))
        .unwrap()
        .parse()
        .unwrap();
    let inbox = store
        .range(&msg_key(user, 0), &msg_key(user, u64::MAX / 2))
        .unwrap();
    println!(
        "inbox   -> user {user}: head seq {head}, {} messages; newest: {}",
        inbox.len(),
        String::from_utf8_lossy(&inbox.last().unwrap().1)
    );

    // --- Moderation sweep: scan a window of mailboxes --------------------
    let mailboxes = store.scan(b"mbox/", 25).unwrap();
    println!("sweep   -> first {} mailboxes via SCAN", mailboxes.len());
    assert!(mailboxes.iter().all(|(k, _)| k.starts_with(b"mbox/")));

    // --- Health check -----------------------------------------------------
    let snap = store.snapshot();
    let io = p2kvs_storage::Env::io_stats(&*env);
    println!(
        "health  -> {} ops, OBM avg batch {:.2}, merge ratio {:.0}%, {} KiB resident, {} KiB written to device",
        snap.total_ops(),
        snap.avg_batch_size(),
        snap.merge_ratio() * 100.0,
        snap.mem_usage / 1024,
        io.bytes_written / 1024,
    );
}
