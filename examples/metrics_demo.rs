//! Observability demo: open a 4-worker store, run a mixed workload, and
//! inspect it through the metrics layer — queue-wait/service histograms
//! per request class, live queue depths, engine-internal breakdowns, the
//! slow-request trace ring, and both text expositions.
//!
//! ```text
//! cargo run -p p2kvs-examples --bin metrics_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use lsmkv::Options;
use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::MemEnv;

fn main() {
    let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
    let factory = LsmFactory::new(Options::rocksdb_like(env));
    let mut opts = P2KvsOptions::with_workers(4);
    opts.pin_workers = false; // Demo-friendly on small machines.
    // Print a one-line stats summary to stderr twice a second while the
    // workload runs (the optional reporter thread).
    opts.report_interval = Some(Duration::from_millis(500));
    // Trace anything slower than 200µs end-to-end into the ring buffer.
    opts.slow_request_threshold = Duration::from_micros(200);
    let store = P2Kvs::open(factory, "metrics-demo-db", opts).expect("open store");

    // --- Mixed workload: puts, gets, deletes, a scan ---------------------
    for i in 0..5_000u32 {
        let key = format!("user:{:05}", i % 2_000);
        match i % 10 {
            0..=5 => store.put(key.as_bytes(), format!("v{i}").as_bytes()).unwrap(),
            6..=8 => {
                store.get(key.as_bytes()).unwrap();
            }
            _ => store.delete(key.as_bytes()).unwrap(),
        }
    }
    let _ = store.scan(b"user:", 100).unwrap();

    // --- The snapshot, both renders --------------------------------------
    let snapshot = store.metrics_snapshot();
    println!("===== Prometheus text exposition =====");
    print!("{}", snapshot.render_prometheus());
    println!("\n===== JSON exposition (the repro artifact format) =====");
    print!("{}", snapshot.render_json());

    // --- Queue-wait vs. service split, per class -------------------------
    println!("\n===== Queue-wait vs. service (p50/p99, µs) =====");
    for base in ["p2kvs_queue_wait_ns", "p2kvs_service_ns"] {
        for (name, h) in snapshot.histograms_of(base) {
            if h.count == 0 {
                continue;
            }
            println!(
                "{name}: n={} p50={:.1}us p99={:.1}us p99.9={:.1}us max={:.1}us",
                h.count,
                h.p50 as f64 / 1e3,
                h.p99 as f64 / 1e3,
                h.p999 as f64 / 1e3,
                h.max as f64 / 1e3,
            );
        }
    }

    // --- Recent slow requests --------------------------------------------
    let slow = store.recent_slow_requests(5);
    println!("\n===== {} most recent slow requests =====", slow.len());
    for ev in slow {
        println!(
            "worker={} class={} queue_wait={:.1}us service={:.1}us batch={}",
            ev.worker,
            ev.class_label(),
            ev.queue_wait_ns as f64 / 1e3,
            ev.service_ns as f64 / 1e3,
            ev.batch_size,
        );
    }

    store.close();
}
