//! Support library for the cross-crate integration tests.
//!
//! The [`crash`] module is the deterministic fault-injection harness
//! behind `tests/crash_matrix.rs` and the differential property test in
//! `tests/properties.rs`: a seeded workload over a real [`p2kvs::P2Kvs`]
//! store on a [`p2kvs_storage::FaultyEnv`], an acked-writes oracle, and
//! the crash-point matrix driver that power-fails the store at each
//! globally numbered sync point and validates recovery.

pub mod crash;
