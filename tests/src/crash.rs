//! The crash-point recovery matrix: a seeded workload over a real
//! [`P2Kvs`] store on a [`FaultyEnv`], an acked-writes oracle, and a
//! driver that power-fails the store at chosen sync points and validates
//! what recovery brings back.
//!
//! # How a matrix run works
//!
//! 1. **Dry run** — execute the workload with no fault plan and read
//!    [`FaultyEnv::sync_points`]: the number of globally numbered sync
//!    requests (WAL, TXNLOG, MANIFEST, SSTs, ...) the workload issues.
//!    Crashing *at* sync point N yields the durable state between syncs
//!    N-1 and N, so those numbers enumerate every distinct durable state.
//! 2. **Crash runs** — for each sampled point, run the same workload on a
//!    fresh env with `crash_at_sync = N` (plus a deterministic torn-tail
//!    budget so part of the crashing file's unsynced bytes survive).
//!    Operations issued after the crash fail; the driver records every
//!    ack in an [`Oracle`].
//! 3. **Recover + validate** — [`FaultyEnv::heal`] the env (power comes
//!    back), reopen through [`P2Kvs::open`] (TXNLOG recovery + GSN-
//!    filtered WAL replay), and check the recovered state against the
//!    oracle.
//!
//! # The oracle
//!
//! The workload runs `SyncPolicy::Always`, so an acked-Ok write is
//! durable by contract. Per key, the recovered value must equal the
//! effect of some attempted write at issue-order index >= the last
//! acked-Ok index (a failed or unacked later write *may* still have
//! reached the durable prefix — e.g. a torn tail that survived — but an
//! acked write may never be lost). Cross-instance transactions must be
//! atomic: a run's txn keys are fresh and unique, so after recovery each
//! transaction is all-present (mandatory when its commit was acked) or
//! all-absent.
//!
//! Workloads are deterministic in the *sequence of operations* (keys,
//! values, op kinds derive from the seed only), not in engine-internal
//! interleaving — which is why each crash run validates against the acks
//! it observed itself.

use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use lsmkv::SyncPolicy;
use p2kvs::engine::LsmFactory;
use p2kvs::{HashPartitioner, JournalKind, P2Kvs, P2KvsOptions, Partitioner, WriteOp};
use p2kvs_storage::{
    DeviceModel, DeviceProfile, EnvRef, FaultPlan, FaultyEnv, MemEnv, MemFs, QueueId,
};
use p2kvs_util::hash::mix64;

/// Workers (and therefore engine instances) every matrix store runs.
pub const WORKERS: usize = 4;
/// Distinct keys the plain/async phases write to.
const KEY_POOL: u64 = 24;
/// Rounds of (plain ops, async burst, cross-instance transaction).
const ROUNDS: usize = 8;
/// Blocking single-key ops per round.
const PLAIN_PER_ROUND: usize = 22;
/// `put_async` ops per round (quiesced before the round's transaction).
const BURST_PER_ROUND: usize = 8;
/// Keys per cross-instance transaction (spanning >= 2 instances).
const TXN_KEYS: usize = 4;
/// Bound on waiting for an async ack; trips only if a worker wedges.
const ACK_TIMEOUT: Duration = Duration::from_secs(30);

/// Splitmix-style deterministic RNG over [`mix64`] — no external crates,
/// identical on every platform.
pub struct Rng(u64);

impl Rng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Rng {
        Rng(mix64(seed ^ 0x9e37_79b9_7f4a_7c15))
    }

    /// Next 64 random bits.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.0)
    }

    /// Uniform draw from `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One attempted write to one key, in issue order.
#[derive(Clone)]
struct KeyWrite {
    /// Key state after this write applies (`None` = deleted).
    effect: Option<Vec<u8>>,
    /// Whether the store acked it Ok (durable under `SyncPolicy::Always`).
    acked: bool,
}

#[derive(Default, Clone)]
struct KeyHistory {
    writes: Vec<KeyWrite>,
}

/// A cross-instance transaction the workload attempted.
#[derive(Clone)]
pub struct TxnRecord {
    /// Fresh keys, unique to this transaction, spanning >= 2 instances.
    pub keys: Vec<Vec<u8>>,
    /// Value written to each key.
    pub values: Vec<Vec<u8>>,
    /// Whether `write_batch` returned Ok (commit record durable).
    pub acked: bool,
}

/// Everything one workload run attempted and which acks came back.
/// `Clone` lets the backup matrix freeze a copy at the cut — the acked
/// state an online backup's restore must reproduce exactly.
#[derive(Default, Clone)]
pub struct Oracle {
    keys: HashMap<Vec<u8>, KeyHistory>,
    /// Transactions in issue order.
    pub txns: Vec<TxnRecord>,
}

impl Oracle {
    fn record(&mut self, key: &[u8], effect: Option<Vec<u8>>, acked: bool) -> usize {
        let hist = self.keys.entry(key.to_vec()).or_default();
        hist.writes.push(KeyWrite { effect, acked });
        hist.writes.len() - 1
    }

    fn mark_acked(&mut self, key: &[u8], idx: usize) {
        self.keys.get_mut(key).expect("recorded key").writes[idx].acked = true;
    }

    /// Checks a recovered state (as a point-lookup function) against the
    /// oracle; returns human-readable violations, empty when consistent.
    pub fn check(&self, get: impl FnMut(&[u8]) -> Option<Vec<u8>>) -> Vec<String> {
        self.check_inner(get, true)
    }

    /// Like [`Oracle::check`] but without the all-or-nothing claim for
    /// *unacked* transactions. A failed cross-instance batch has no undo
    /// path: its applied sub-batches stay visible in the live store, and
    /// if a later flush writes them into an SST they survive recovery
    /// too (the flush-before-commit limitation — see DESIGN.md). Full
    /// rollback is only guaranteed when the failure is a crash, which
    /// freezes the store before any such flush; that case uses `check`.
    pub fn check_acked_only(&self, get: impl FnMut(&[u8]) -> Option<Vec<u8>>) -> Vec<String> {
        self.check_inner(get, false)
    }

    fn check_inner(
        &self,
        mut get: impl FnMut(&[u8]) -> Option<Vec<u8>>,
        unacked_atomicity: bool,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        for (key, hist) in &self.keys {
            let got = get(key);
            let last_acked = hist.writes.iter().rposition(|w| w.acked);
            if last_acked.is_none() && got.is_none() {
                continue; // Nothing acked; "never applied" is fine.
            }
            let start = last_acked.unwrap_or(0);
            let allowed = hist.writes[start..]
                .iter()
                .any(|w| w.effect.as_deref() == got.as_deref());
            if !allowed {
                violations.push(format!(
                    "key {}: recovered {} but the last acked write (index {start} \
                     of {}) and everything after it have different effects",
                    String::from_utf8_lossy(key),
                    got.as_deref().map_or("<absent>".into(), |v| String::from_utf8_lossy(v).into_owned()),
                    hist.writes.len(),
                ));
            }
        }
        for (t, txn) in self.txns.iter().enumerate() {
            let mut present = 0;
            let mut wrong = 0;
            for (k, v) in txn.keys.iter().zip(&txn.values) {
                match get(k) {
                    Some(got) if got == *v => present += 1,
                    Some(_) => wrong += 1,
                    None => {}
                }
            }
            if wrong > 0 {
                violations.push(format!("txn {t}: {wrong} key(s) hold foreign values"));
            }
            if txn.acked && present != txn.keys.len() {
                violations.push(format!(
                    "txn {t}: committed (acked) but only {present}/{} keys recovered",
                    txn.keys.len()
                ));
            } else if unacked_atomicity && !txn.acked && present != 0 && present != txn.keys.len() {
                violations.push(format!(
                    "txn {t}: atomicity violated — {present}/{} keys recovered",
                    txn.keys.len()
                ));
            }
        }
        violations
    }
}

/// Engine options every matrix store uses: always-sync WAL (acked => the
/// oracle may demand durability), memtables small enough that flushes,
/// SST writes and MANIFEST edits all land inside the workload's sync-
/// point range, and backpressure limits high enough that a post-crash
/// flush backlog can never stall (and so wedge) the finite workload.
pub fn engine_options(env: EnvRef) -> lsmkv::Options {
    let mut o = lsmkv::Options::rocksdb_like(env);
    o.sync = SyncPolicy::Always;
    o.memtable_size = 1 << 10;
    o.target_file_size = 2 << 10;
    o.base_level_size = 8 << 10;
    o.max_immutable_memtables = 8;
    o.l0_slowdown_trigger = 50;
    o.l0_stop_trigger = 100;
    o.compaction_threads = 1;
    o.read_pool_threads = 0;
    o
}

/// Store options for the matrix: [`WORKERS`] instances, no core pinning
/// (CI runners), no metrics sampling overhead. Uses the paper layout
/// (`shards == workers`, no balancer) so engine dir `instance-{i}`
/// holds exactly partition `i` of the store's own `HashPartitioner` —
/// [`unfiltered_partial_txn`] relies on that mapping.
pub fn store_options() -> P2KvsOptions {
    let mut o = P2KvsOptions::paper_layout(WORKERS);
    o.pin_workers = false;
    o.metrics = false;
    o
}

/// Store options for the migration matrix: shards decoupled from
/// workers (`2×` [`WORKERS`]) so ownership handoffs are meaningful;
/// balancer off — the driver migrates at deterministic points instead.
pub fn migration_store_options() -> P2KvsOptions {
    let mut o = P2KvsOptions::with_workers(WORKERS);
    o.shards = 2 * WORKERS;
    o.pin_workers = false;
    o.metrics = false;
    o
}

/// Store options for the cached matrix: the migration layout plus a
/// live hot-record read cache, so crash points land while cached reads,
/// fills, write invalidations, and migration-driven cache flushes are
/// all in flight. The cache is volatile by design — recovery must not
/// depend on it in any way.
pub fn cached_store_options() -> P2KvsOptions {
    let mut o = migration_store_options();
    o.cache_capacity = 1 << 20;
    o
}

fn open_store(env: &EnvRef) -> p2kvs::Result<P2Kvs<lsmkv::Db>> {
    P2Kvs::open(LsmFactory::new(engine_options(env.clone())), "db", store_options())
}

fn pool_key(i: u64) -> Vec<u8> {
    format!("key-{i:03}").into_bytes()
}

/// Deterministic fresh keys for round `round`'s transaction, salted until
/// they span at least two instances under the store's own partitioner.
fn txn_keys(round: usize) -> Vec<Vec<u8>> {
    let part = HashPartitioner::new(WORKERS);
    let mut salt = 0u64;
    loop {
        let keys: Vec<Vec<u8>> = (0..TXN_KEYS)
            .map(|j| format!("txn-{round}-{salt}-{j}").into_bytes())
            .collect();
        let spanned: HashSet<usize> = keys.iter().map(|k| part.shard_of(k)).collect();
        if spanned.len() >= 2 {
            return keys;
        }
        salt += 1;
    }
}

/// Runs the seeded workload against `store`, recording every attempted
/// write and every ack. The op sequence depends only on `seed`; after a
/// crash fires, the remaining ops simply come back as errors (unacked).
pub fn run_workload(store: &P2Kvs<lsmkv::Db>, seed: u64) -> Oracle {
    run_workload_hooked(store, seed, |_, _| {})
}

/// Like [`run_workload`] but invoking `hook(round, store)` at the end
/// of every round — the migration matrix uses it to hand shard
/// ownership between workers in the middle of the stream of acked
/// writes. The hook does not touch the RNG, so the op sequence stays
/// identical to the hook-free run.
pub fn run_workload_hooked(
    store: &P2Kvs<lsmkv::Db>,
    seed: u64,
    mut hook: impl FnMut(usize, &P2Kvs<lsmkv::Db>),
) -> Oracle {
    run_workload_with_oracle(store, seed, |round, st, _| hook(round, st))
}

/// Like [`run_workload_hooked`] but the hook also sees the oracle as
/// recorded so far. The backup matrix clones it the moment an online
/// backup's cut lands: with the workload quiesced between rounds, the
/// clone is exactly the acked state a restore of that backup must
/// reproduce.
pub fn run_workload_with_oracle(
    store: &P2Kvs<lsmkv::Db>,
    seed: u64,
    mut hook: impl FnMut(usize, &P2Kvs<lsmkv::Db>, &Oracle),
) -> Oracle {
    let mut rng = Rng::new(seed);
    let mut oracle = Oracle::default();
    let mut op_no: u64 = 0;
    for round in 0..ROUNDS {
        for _ in 0..PLAIN_PER_ROUND {
            op_no += 1;
            let key = pool_key(rng.below(KEY_POOL));
            if rng.below(7) == 0 {
                let acked = store.delete(&key).is_ok();
                oracle.record(&key, None, acked);
            } else {
                let value = format!("v-{op_no}-{:08x}", rng.next() as u32).into_bytes();
                let acked = store.put(&key, &value).is_ok();
                oracle.record(&key, Some(value), acked);
            }
        }
        // Async burst, then quiesce: every callback is awaited before the
        // transaction below, so no non-transactional write is in flight
        // during the txn's [apply, commit] window (see DESIGN.md on the
        // flush-before-commit limitation).
        let (tx, rx) = mpsc::channel::<(Vec<u8>, usize, bool)>();
        let mut enqueued = 0;
        for _ in 0..BURST_PER_ROUND {
            op_no += 1;
            let key = pool_key(rng.below(KEY_POOL));
            let value = format!("a-{op_no}-{:08x}", rng.next() as u32).into_bytes();
            let idx = oracle.record(&key, Some(value.clone()), false);
            let tx = tx.clone();
            let key_for_cb = key.clone();
            let pushed = store.put_async(&key, &value, move |r| {
                let _ = tx.send((key_for_cb, idx, r.is_ok()));
            });
            if pushed.is_ok() {
                enqueued += 1;
            }
        }
        drop(tx);
        for _ in 0..enqueued {
            match rx.recv_timeout(ACK_TIMEOUT) {
                Ok((key, idx, true)) => oracle.mark_acked(&key, idx),
                Ok(_) => {}
                Err(_) => panic!("async ack timed out — a worker wedged after a fault"),
            }
        }
        // One cross-instance transaction at a time, on fresh keys.
        let keys = txn_keys(round);
        let mut values = Vec::with_capacity(keys.len());
        for _ in &keys {
            op_no += 1;
            values.push(format!("t-{op_no}-{:08x}", rng.next() as u32).into_bytes());
        }
        let ops: Vec<WriteOp> = keys
            .iter()
            .zip(&values)
            .map(|(k, v)| WriteOp::Put { key: k.clone(), value: v.clone() })
            .collect();
        let acked = store.write_batch(ops).is_ok();
        for (k, v) in keys.iter().zip(&values) {
            oracle.record(k, Some(v.clone()), acked);
        }
        oracle.txns.push(TxnRecord { keys, values, acked });
        hook(round, store, &oracle);
    }
    oracle
}

/// Dry-runs the workload and returns the total number of sync points it
/// exposes — the crash-point space of the matrix.
pub fn dry_run_sync_points(seed: u64) -> u64 {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    let store = open_store(&env).expect("fault-free open");
    run_workload(&store, seed);
    store.close();
    faulty.sync_points()
}

/// The result of one crash run.
pub struct CrashPointOutcome {
    /// The sync point the crash was planned at.
    pub point: u64,
    /// Whether the crash actually fired (a run can issue slightly fewer
    /// syncs than the dry run when group commit merges differently).
    pub crashed: bool,
    /// Oracle violations found in the recovered store; empty = pass.
    pub violations: Vec<String>,
    /// Flight-recorder records recovery parsed back out of `FLIGHT.log`.
    /// Usually positive (the creation-time `StoreOpen` is synced); zero
    /// only when the crash landed inside the journal's own first syncs.
    pub recovered_flight: usize,
}

/// Flight-recorder checks for a recovered store: the journal parsed back
/// from `FLIGHT.log` must be a gap-free sequence rooted at the store's
/// very first record (its creation-time [`JournalKind::StoreOpen`]). A
/// crash may cost unsynced *suffix* records — the torn tail — but must
/// never punch a hole in the middle or lose the head once later records
/// survived.
pub fn flight_journal_violations(store: &P2Kvs<lsmkv::Db>) -> Vec<String> {
    let mut v = Vec::new();
    let recs = store.recovered_flight_records();
    if let Some(gap) = p2kvs::obs::sequence_gap(recs) {
        v.push(format!("flight journal recovered with a hole: {gap}"));
    }
    if let Some(first) = recs.first() {
        if first.seq != 1 {
            v.push(format!(
                "flight journal lost its head: first recovered seq is {} (want 1)",
                first.seq
            ));
        }
        if first.kind != JournalKind::StoreOpen {
            v.push(format!(
                "flight journal's first record is {}, not store_open",
                first.kind.name()
            ));
        }
    }
    v
}

/// Runs the workload with a crash planned at sync point `point`, heals,
/// recovers through [`P2Kvs::open`], and validates against the oracle.
pub fn run_crash_point(seed: u64, point: u64) -> CrashPointOutcome {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    faulty.set_plan(FaultPlan {
        crash_at_sync: Some(point),
        // Vary the torn-write length deterministically with the point so
        // the matrix also covers partial unsynced tails surviving.
        torn_tail: (point % 17) as usize,
        ..FaultPlan::default()
    });
    let oracle = match open_store(&env) {
        // A crash with a small `point` fires during store creation.
        Err(_) => Oracle::default(),
        Ok(store) => {
            let oracle = run_workload(&store, seed);
            store.close();
            oracle
        }
    };
    let crashed = faulty.crashed();
    faulty.heal();
    let store = match open_store(&env) {
        Ok(s) => s,
        Err(e) => {
            return CrashPointOutcome {
                point,
                crashed,
                violations: vec![format!("recovery failed to reopen the store: {e}")],
                recovered_flight: 0,
            }
        }
    };
    let mut violations = oracle.check(|k| store.get(k).expect("post-recovery read"));
    violations.extend(flight_journal_violations(&store));
    let recovered_flight = store.recovered_flight_records().len();
    store.close();
    CrashPointOutcome { point, crashed, violations, recovered_flight }
}

/// Crash-matrix variant exercising the epoch-fenced handoff: the store
/// opens with shards decoupled from workers
/// ([`migration_store_options`]) and every round ends with a
/// deterministic shard migration, so sampled sync points land before,
/// during, and after handoffs. Recovery reopens under a fresh
/// (round-robin) map — durability must not depend on which worker
/// happened to own a shard at the crash.
pub fn run_crash_point_with_migration(seed: u64, point: u64) -> CrashPointOutcome {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    faulty.set_plan(FaultPlan {
        crash_at_sync: Some(point),
        torn_tail: (point % 17) as usize,
        ..FaultPlan::default()
    });
    let open = |env: &EnvRef| {
        P2Kvs::open(
            LsmFactory::new(engine_options(env.clone())),
            "db",
            migration_store_options(),
        )
    };
    let oracle = match open(&env) {
        // A crash with a small `point` fires during store creation.
        Err(_) => Oracle::default(),
        Ok(store) => {
            let shards = store.shards();
            let oracle = run_workload_hooked(&store, seed, |round, st| {
                // Walk a different shard across the workers each round.
                // After the crash fires the handoff marker push fails —
                // ignore it, the remaining workload ops fail the same
                // way.
                let _ = st.migrate_shard(round % shards, (round + 1) % WORKERS);
            });
            store.close();
            oracle
        }
    };
    let crashed = faulty.crashed();
    faulty.heal();
    let store = match open(&env) {
        Ok(s) => s,
        Err(e) => {
            return CrashPointOutcome {
                point,
                crashed,
                violations: vec![format!("recovery failed to reopen the store: {e}")],
                recovered_flight: 0,
            }
        }
    };
    let mut violations = oracle.check(|k| store.get(k).expect("post-recovery read"));
    violations.extend(flight_journal_violations(&store));
    let recovered_flight = store.recovered_flight_records().len();
    store.close();
    CrashPointOutcome { point, crashed, violations, recovered_flight }
}

/// Crash-matrix variant exercising the elastic worker pool: the store
/// opens with the migration layout ([`migration_store_options`]) and
/// every round ends with a `scale_workers` call thrashing the pool
/// around its opening size — even rounds grow to `WORKERS + 1` (fresh
/// rings spawn and take shards from the balancer's next moves), odd
/// rounds shrink to `WORKERS - 1` (the two highest live workers drain
/// *every* shard they own through the epoch-fenced handoff, then their
/// rings close and the threads join). Sampled sync points therefore
/// land before, during, and after in-flight scale operations — between
/// a retiring worker's per-shard drains, right after a `worker_spawn`
/// journal record, mid-join. Recovery reopens with the fixed-size
/// layout: durability must not depend on how many workers were alive,
/// or which were mid-retirement, when the power failed.
pub fn run_crash_point_during_scale(seed: u64, point: u64) -> CrashPointOutcome {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    faulty.set_plan(FaultPlan {
        crash_at_sync: Some(point),
        torn_tail: (point % 17) as usize,
        ..FaultPlan::default()
    });
    let open = |env: &EnvRef| {
        P2Kvs::open(
            LsmFactory::new(engine_options(env.clone())),
            "db",
            migration_store_options(),
        )
    };
    let oracle = match open(&env) {
        // A crash with a small `point` fires during store creation.
        Err(_) => Oracle::default(),
        Ok(store) => {
            let oracle = run_workload_hooked(&store, seed, |round, st| {
                // After the crash fires the drains and journal appends
                // hit the dead env; `scale_workers` still completes or
                // errors (the handoff path is queue redirection, not
                // I/O) and the remaining workload ops fail the same way.
                let n = if round % 2 == 0 { WORKERS + 1 } else { WORKERS - 1 };
                let _ = st.scale_workers(n);
            });
            store.close();
            oracle
        }
    };
    let crashed = faulty.crashed();
    faulty.heal();
    let store = match open(&env) {
        Ok(s) => s,
        Err(e) => {
            return CrashPointOutcome {
                point,
                crashed,
                violations: vec![format!("recovery failed to reopen the store: {e}")],
                recovered_flight: 0,
            }
        }
    };
    let mut violations = oracle.check(|k| store.get(k).expect("post-recovery read"));
    violations.extend(flight_journal_violations(&store));
    let recovered_flight = store.recovered_flight_records().len();
    store.close();
    CrashPointOutcome { point, crashed, violations, recovered_flight }
}

/// Cached crash-matrix variant: the migration layout with the read
/// cache enabled ([`cached_store_options`]) and the per-round hook
/// extended with point reads, so the crash can land while the cache
/// holds hot entries, a write is invalidating, or a handoff is flushing
/// a shard's cached set. The cache is volatile, so the oracle contract
/// is unchanged — and on reopen the store must journal its open-time
/// `cache_flush` reset record *after* every recovered record, proving a
/// recovered store never trusts pre-crash cache state.
pub fn run_crash_point_cached(seed: u64, point: u64) -> CrashPointOutcome {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    faulty.set_plan(FaultPlan {
        crash_at_sync: Some(point),
        torn_tail: (point % 17) as usize,
        ..FaultPlan::default()
    });
    let open = |env: &EnvRef| {
        P2Kvs::open(
            LsmFactory::new(engine_options(env.clone())),
            "db",
            cached_store_options(),
        )
    };
    let oracle = match open(&env) {
        // A crash with a small `point` fires during store creation.
        Err(_) => Oracle::default(),
        Ok(store) => {
            let shards = store.shards();
            let oracle = run_workload_hooked(&store, seed, |round, st| {
                // Reads warm the cache between rounds (none touch the
                // RNG, so the op sequence matches the uncached runs);
                // the migration then flushes the shards it hands off.
                for i in 0..KEY_POOL {
                    let _ = st.get(&pool_key(i));
                }
                let _ = st.migrate_shard(round % shards, (round + 1) % WORKERS);
            });
            store.close();
            oracle
        }
    };
    let crashed = faulty.crashed();
    faulty.heal();
    let store = match open(&env) {
        Ok(s) => s,
        Err(e) => {
            return CrashPointOutcome {
                point,
                crashed,
                violations: vec![format!("recovery failed to reopen the store: {e}")],
                recovered_flight: 0,
            }
        }
    };
    let mut violations = oracle.check(|k| store.get(k).expect("post-recovery read"));
    violations.extend(flight_journal_violations(&store));
    // The reopen must stamp a fresh cache reset (`cache_flush` with the
    // sentinel shard) into the live journal, sequenced after everything
    // recovery brought back.
    let recovered_max = store.recovered_flight_records().last().map_or(0, |r| r.seq);
    let live = store.flight_records(usize::MAX);
    if !live
        .iter()
        .any(|r| r.kind == JournalKind::CacheFlush && r.a == u64::MAX && r.seq > recovered_max)
    {
        violations.push(format!(
            "reopen journaled no cache_flush reset record after recovered seq {recovered_max}"
        ));
    }
    let recovered_flight = store.recovered_flight_records().len();
    store.close();
    CrashPointOutcome { point, crashed, violations, recovered_flight }
}

/// Which round's hook starts the online backup in the backup matrix.
const BACKUP_ROUND: usize = 2;
/// Which round's hook reaps the streamer — three rounds of foreground
/// writes, migrations, and transactions overlap the streaming window.
const BACKUP_WAIT_ROUND: usize = 5;

/// The result of one backup-under-crash run.
pub struct BackupCrashOutcome {
    /// The sync point the crash was planned at.
    pub point: u64,
    /// Whether the crash actually fired.
    pub crashed: bool,
    /// Whether the online backup's streamer completed (durable MANIFEST).
    /// `false` under an early crash — the matrix then asserts the
    /// partial directory is *rejected* by restore.
    pub backup_completed: bool,
    /// Violations across the recovered store and the restored copy.
    pub violations: Vec<String>,
}

/// Dry-runs the backup workload (same op stream, plus the online backup
/// and its streaming syncs) and returns the sync-point space. The
/// streamer runs concurrently with foreground syncs, so the numbering is
/// not exactly reproducible run-to-run — the count only sizes the
/// matrix; every crash run validates against its own observed acks.
pub fn dry_run_sync_points_with_backup(seed: u64) -> u64 {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    let store = P2Kvs::open(
        LsmFactory::new(engine_options(env.clone())),
        "db",
        migration_store_options(),
    )
    .expect("fault-free open");
    let shards = store.shards();
    let mut handle = None;
    run_workload_with_oracle(&store, seed, |round, st, _| {
        let _ = st.migrate_shard(round % shards, (round + 1) % WORKERS);
        if round == BACKUP_ROUND {
            handle = st.backup("backup").ok();
        }
        if round == BACKUP_WAIT_ROUND {
            if let Some(h) = handle.take() {
                h.wait().expect("fault-free backup");
            }
        }
    });
    store.close();
    faulty.sync_points()
}

/// Backup-torture crash run: the migration workload with an online
/// backup cut at round [`BACKUP_ROUND`] and streamed concurrently with
/// the next three rounds, power-failed at sync point `point` — which can
/// land before the cut, inside the freeze window, mid-stream, or after
/// the `MANIFEST` sync. After healing:
///
/// * the primary store must recover per the standard oracle contract
///   (backup machinery must never weaken crash recovery), and
/// * a **completed** backup must restore to a store byte-identical to
///   the cut-time acked state — with nothing from past the cut leaking
///   in — no matter where the crash landed, while
/// * an **incomplete** backup directory must be rejected by
///   [`P2Kvs::restore`] with a clean [`p2kvs::Error::Backup`], never
///   fabricating a store from partial files.
pub fn run_crash_point_with_backup(seed: u64, point: u64) -> BackupCrashOutcome {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    faulty.set_plan(FaultPlan {
        crash_at_sync: Some(point),
        torn_tail: (point % 17) as usize,
        ..FaultPlan::default()
    });
    let open = |env: &EnvRef| {
        P2Kvs::open(
            LsmFactory::new(engine_options(env.clone())),
            "db",
            migration_store_options(),
        )
    };
    let mut handle: Option<p2kvs::BackupHandle> = None;
    let mut cut: Option<Oracle> = None;
    let mut completed = false;
    let oracle = match open(&env) {
        // A crash with a small `point` fires during store creation.
        Err(_) => Oracle::default(),
        Ok(store) => {
            let shards = store.shards();
            let oracle = run_workload_with_oracle(&store, seed, |round, st, so_far| {
                // Keep the handoff pressure of the migration matrix: the
                // cut must hold across shard ownership changes both
                // before the freeze and during streaming.
                let _ = st.migrate_shard(round % shards, (round + 1) % WORKERS);
                if round == BACKUP_ROUND {
                    // After the crash the cut may fail outright (marker
                    // pushes or the freeze hit dead queues) — that run
                    // simply has no backup to restore.
                    if let Ok(h) = st.backup("backup") {
                        handle = Some(h);
                        cut = Some(so_far.clone());
                    }
                }
                if round == BACKUP_WAIT_ROUND {
                    if let Some(h) = handle.take() {
                        completed = h.wait().is_ok();
                    }
                }
            });
            store.close();
            oracle
        }
    };
    if let Some(h) = handle.take() {
        completed = h.wait().is_ok();
    }
    let crashed = faulty.crashed();
    faulty.heal();
    let mut violations = Vec::new();
    // 1. The primary store recovers per the standard contract.
    match open(&env) {
        Ok(store) => {
            violations.extend(oracle.check(|k| store.get(k).expect("post-recovery read")));
            violations.extend(flight_journal_violations(&store));
            store.close();
        }
        Err(e) => violations.push(format!("recovery failed to reopen the store: {e}")),
    }
    let restore = |dest: &str| {
        P2Kvs::restore(
            LsmFactory::new(engine_options(env.clone())),
            "backup",
            dest,
            migration_store_options(),
        )
    };
    if completed {
        // 2a. A completed backup restores to the cut, crash or no crash.
        let cut = cut.as_ref().expect("a completed backup implies a recorded cut");
        match restore("restored") {
            Ok(restored) => {
                violations.extend(
                    cut.check(|k| restored.get(k).expect("restored-copy read"))
                        .into_iter()
                        .map(|v| format!("restored copy: {v}")),
                );
                // Nothing leaks past the horizon: transactions issued
                // after the cut use fresh keys, so every one of them
                // must be absent from the copy.
                for (t, txn) in oracle.txns.iter().enumerate().skip(cut.txns.len()) {
                    for k in &txn.keys {
                        if restored.get(k).expect("restored-copy read").is_some() {
                            violations.push(format!(
                                "restored copy: post-cut txn {t} key {} leaked past the horizon",
                                String::from_utf8_lossy(k)
                            ));
                        }
                    }
                }
                // The copy carried the flight journal: gap-free, rooted
                // at the source's creation record, with the cut's own
                // provenance in it.
                violations.extend(
                    flight_journal_violations(&restored)
                        .into_iter()
                        .map(|v| format!("restored copy: {v}")),
                );
                let kinds: Vec<JournalKind> = restored
                    .recovered_flight_records()
                    .iter()
                    .map(|r| r.kind)
                    .collect();
                for want in [JournalKind::BackupBegin, JournalKind::BackupComplete] {
                    if !kinds.contains(&want) {
                        violations.push(format!(
                            "restored copy: recovered journal lacks {}",
                            want.name()
                        ));
                    }
                }
                restored.close();
            }
            Err(e) => violations.push(format!("restore of a completed backup failed: {e}")),
        }
    } else if crashed {
        // 2b. The backup never completed; whatever partial directory the
        // crash left behind must be rejected cleanly.
        match restore("restored") {
            Err(p2kvs::Error::Backup(_)) => {}
            Err(e) => violations.push(format!(
                "partial backup rejected with the wrong error kind: {e}"
            )),
            Ok(_) => {
                violations.push("restore opened a store from a partial backup".into())
            }
        }
    }
    BackupCrashOutcome { point, crashed, backup_completed: completed, violations }
}

/// Submission queues the queue-targeted subcompaction matrix models.
pub const QUEUE_MATRIX_QUEUES: usize = 4;

/// Engine options for the subcompaction matrix: the standard crash-
/// matrix tuning plus parallel compaction — two background jobs at
/// disjoint levels and three-way range-partitioned subcompactions, so a
/// major compaction has several output files in flight on different
/// queues when the power fails.
pub fn parallel_engine_options(env: EnvRef) -> lsmkv::Options {
    let mut o = engine_options(env);
    o.compaction_threads = 2;
    o.subcompactions = 3;
    o
}

/// A [`FaultyEnv`] over an instant-timing multi-queue device: the fault
/// layer counts appends and syncs **per submission queue** (the same
/// pin-then-ambient resolution the timing layer uses), so
/// [`FaultPlan::crash_at_queue_sync`] can target "the Nth sync on queue
/// q" deterministically even while concurrent compaction threads make
/// the *global* interleaving nondeterministic.
pub fn faulty_multi_queue(queues: usize) -> Arc<FaultyEnv> {
    let fs = Arc::new(MemFs::new());
    let device = Arc::new(DeviceModel::from_profile(
        DeviceProfile::instant().with_queues(queues),
    ));
    let inner = Arc::new(MemEnv::with_parts(fs.clone(), Some(device)));
    Arc::new(FaultyEnv::new(inner, fs))
}

/// Dry-runs the parallel workload on the multi-queue env and returns the
/// per-queue sync counts — the crash-point space of the queue matrix.
/// With queue affinity on (`WORKERS` == queues), shard `s`'s WAL and
/// flushes ride queue `s`, while subcompaction outputs spread over the
/// queues *after* the instance's home queue; every queue therefore
/// exposes both WAL and compaction-output sync points. Counts on
/// off-home queues vary slightly run-to-run (compaction scheduling is
/// load-dependent); they size the matrix, and every crash run validates
/// against the acks it observed itself.
pub fn dry_run_queue_sync_points(seed: u64) -> Vec<u64> {
    let faulty = faulty_multi_queue(QUEUE_MATRIX_QUEUES);
    let env: EnvRef = faulty.clone();
    let store = P2Kvs::open(
        LsmFactory::new(parallel_engine_options(env.clone())),
        "db",
        store_options(),
    )
    .expect("fault-free open");
    run_workload(&store, seed);
    store.close();
    (0..QUEUE_MATRIX_QUEUES).map(|q| faulty.sync_points_on(q)).collect()
}

/// Queue-targeted crash run: the parallel workload power-failed when the
/// `point`-th sync lands **on queue `queue`** — with subcompactions
/// spreading output files across queues, points on an instance's
/// off-home queues land in the middle of multi-threaded compactions,
/// between one subcompaction's output sync and its siblings'. After
/// healing, recovery must satisfy the standard oracle contract, and a
/// full store scan must read every surviving SST end to end: a version
/// edit that installed a truncated or torn subcompaction output would
/// surface here as a read error or a lost acked write.
pub fn run_queue_crash_point(seed: u64, queue: QueueId, point: u64) -> CrashPointOutcome {
    let faulty = faulty_multi_queue(QUEUE_MATRIX_QUEUES);
    let env: EnvRef = faulty.clone();
    faulty.set_plan(FaultPlan {
        crash_at_queue_sync: Some((queue, point)),
        // Deterministic torn-tail budget, varied so the matrix also
        // covers partially surviving unsynced compaction output.
        torn_tail: ((point + queue as u64) % 17) as usize,
        ..FaultPlan::default()
    });
    let open = |env: &EnvRef| {
        P2Kvs::open(
            LsmFactory::new(parallel_engine_options(env.clone())),
            "db",
            store_options(),
        )
    };
    let oracle = match open(&env) {
        // A crash with a small `point` fires during store creation.
        Err(_) => Oracle::default(),
        Ok(store) => {
            let oracle = run_workload(&store, seed);
            store.close();
            oracle
        }
    };
    let crashed = faulty.crashed();
    faulty.heal();
    let store = match open(&env) {
        Ok(s) => s,
        Err(e) => {
            return CrashPointOutcome {
                point,
                crashed,
                violations: vec![format!("recovery failed to reopen the store: {e}")],
                recovered_flight: 0,
            }
        }
    };
    let mut violations = oracle.check(|k| store.get(k).expect("post-recovery read"));
    violations.extend(flight_journal_violations(&store));
    // Truncated-output check: walk the whole recovered keyspace. The
    // scan touches every SST the recovered version sets reference — an
    // installed-but-torn compaction output fails the read here even when
    // the affected keys also exist in older, still-live files.
    if let Err(e) = store.range(b"", &[0xffu8; 8]) {
        violations.push(format!(
            "full scan of the recovered store failed — a version set references \
             unreadable (truncated?) compaction output: {e}"
        ));
    }
    let recovered_flight = store.recovered_flight_records().len();
    store.close();
    CrashPointOutcome { point, crashed, violations, recovered_flight }
}

/// The sampled crash points for a space of `total` sync points: every one
/// of the first 160, then a stride over the rest. Dense early coverage
/// catches creation/metadata crashes; the stride keeps the matrix bounded
/// while still visiting late flush/compaction states.
pub fn sample_points(total: u64) -> Vec<u64> {
    let dense_until = 160.min(total);
    let mut points: Vec<u64> = (1..=dense_until).collect();
    if total > dense_until {
        let rest = total - dense_until;
        let stride = (rest / 80).max(1);
        let mut p = dense_until + stride;
        while p <= total {
            points.push(p);
            p += stride;
        }
    }
    points
}

/// Negative control: runs the workload with a crash at `point`, then
/// reopens every instance **directly and without the GSN recovery
/// filter**. Returns `Some((present, total))` when some transaction that
/// was in flight at the crash is *partially* visible — the exact state
/// the p2KVS rollback (§4.5) exists to hide. `None` when the crash did
/// not fire, no transaction was in flight, or the naked replay happened
/// to be all-or-nothing at this point.
pub fn unfiltered_partial_txn(seed: u64, point: u64) -> Option<(usize, usize)> {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    faulty.set_plan(FaultPlan {
        crash_at_sync: Some(point),
        ..FaultPlan::default()
    });
    let store = open_store(&env).ok()?;
    let oracle = run_workload(&store, seed);
    store.close();
    if !faulty.crashed() {
        return None;
    }
    faulty.heal();
    let part = HashPartitioner::new(WORKERS);
    let dbs: Vec<Option<lsmkv::Db>> = (0..WORKERS)
        .map(|i| lsmkv::Db::open(engine_options(env.clone()), format!("db/instance-{i}")).ok())
        .collect();
    for txn in oracle.txns.iter().filter(|t| !t.acked) {
        let mut present = 0;
        for (k, v) in txn.keys.iter().zip(&txn.values) {
            let db = match &dbs[part.shard_of(k)] {
                Some(db) => db,
                None => continue,
            };
            if db.get(k).ok().flatten().as_deref() == Some(v.as_slice()) {
                present += 1;
            }
        }
        if present > 0 && present < txn.keys.len() {
            return Some((present, txn.keys.len()));
        }
    }
    None
}

/// Differential fault run (no crash): executes the workload on a store
/// whose env injects a transient sync failure at global sync `fail_sync`
/// and a transient read failure at global read `fail_read`, then checks
/// the **live** store and the **reopened** store against the oracle.
/// Returns the violations found (empty = the faulted history stayed
/// inside the oracle envelope).
pub fn differential_fault_run(
    seed: u64,
    fail_sync: Option<u64>,
    fail_read: Option<u64>,
) -> Vec<String> {
    let faulty = Arc::new(FaultyEnv::over_mem());
    let env: EnvRef = faulty.clone();
    faulty.set_plan(FaultPlan {
        fail_sync,
        fail_read,
        ..FaultPlan::default()
    });
    let store = match open_store(&env) {
        Ok(s) => s,
        // The injected fault hit store creation; a retry must succeed
        // (transient model) and there is no history to validate.
        Err(first) => {
            faulty.heal();
            match open_store(&env) {
                Ok(s) => {
                    s.close();
                    return Vec::new();
                }
                Err(e) => {
                    return vec![format!(
                        "transient fault at creation ({first}) wedged the store: reopen failed: {e}"
                    )]
                }
            }
        }
    };
    let oracle = run_workload(&store, seed);
    faulty.heal();
    // `check_acked_only`: a transiently failed cross-instance batch has
    // no undo path, so its applied sub-batches legitimately stay visible
    // (live, and — via the flush-before-commit window — possibly after
    // reopen too). Crash runs use the full check instead.
    let mut violations = oracle.check_acked_only(|k| store.get(k).expect("live read after heal"));
    store.close();
    match open_store(&env) {
        Ok(reopened) => {
            violations.extend(
                oracle
                    .check_acked_only(|k| reopened.get(k).expect("post-reopen read"))
                    .into_iter()
                    .map(|v| format!("after reopen: {v}")),
            );
            violations.extend(flight_journal_violations(&reopened));
            // No crash happened, so even unsynced journal appends reached
            // the env: the whole history must come back, not a prefix.
            if reopened.recovered_flight_records().is_empty() {
                violations.push("no crash, yet reopen recovered an empty flight journal".into());
            }
            reopened.close();
        }
        Err(e) => violations.push(format!("reopen after transient faults failed: {e}")),
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_accepts_exact_acked_state() {
        let mut o = Oracle::default();
        o.record(b"k", Some(b"v1".to_vec()), true);
        o.record(b"k", Some(b"v2".to_vec()), true);
        let state: HashMap<Vec<u8>, Vec<u8>> =
            [(b"k".to_vec(), b"v2".to_vec())].into_iter().collect();
        assert!(o.check(|k| state.get(k).cloned()).is_empty());
    }

    #[test]
    fn oracle_rejects_lost_acked_write() {
        let mut o = Oracle::default();
        o.record(b"k", Some(b"v1".to_vec()), true);
        // Recovered as v0-era absent: the acked write was lost.
        let v = o.check(|_| None);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn oracle_allows_unacked_tail_to_survive_or_not() {
        let mut o = Oracle::default();
        o.record(b"k", Some(b"v1".to_vec()), true);
        o.record(b"k", Some(b"v2".to_vec()), false); // in flight at crash
        let with_tail: HashMap<Vec<u8>, Vec<u8>> =
            [(b"k".to_vec(), b"v2".to_vec())].into_iter().collect();
        let without: HashMap<Vec<u8>, Vec<u8>> =
            [(b"k".to_vec(), b"v1".to_vec())].into_iter().collect();
        assert!(o.check(|k| with_tail.get(k).cloned()).is_empty());
        assert!(o.check(|k| without.get(k).cloned()).is_empty());
        // ...but rolling back past the acked write is a violation.
        assert!(!o.check(|_| None).is_empty());
    }

    #[test]
    fn oracle_rejects_partial_transaction() {
        let mut o = Oracle::default();
        let keys = vec![b"ta".to_vec(), b"tb".to_vec()];
        let values = vec![b"1".to_vec(), b"2".to_vec()];
        for (k, v) in keys.iter().zip(&values) {
            o.record(k, Some(v.clone()), false);
        }
        o.txns.push(TxnRecord { keys, values, acked: false });
        let partial: HashMap<Vec<u8>, Vec<u8>> =
            [(b"ta".to_vec(), b"1".to_vec())].into_iter().collect();
        let v = o.check(|k| partial.get(k).cloned());
        assert!(v.iter().any(|m| m.contains("atomicity")), "{v:?}");
        // The acked-only variant tolerates exactly this partial state
        // (no-undo limitation for transient failures).
        assert!(o.check_acked_only(|k| partial.get(k).cloned()).is_empty());
        // All-absent and all-present are both fine for an unacked txn.
        assert!(o.check(|_| None).is_empty());
        let full: HashMap<Vec<u8>, Vec<u8>> = [
            (b"ta".to_vec(), b"1".to_vec()),
            (b"tb".to_vec(), b"2".to_vec()),
        ]
        .into_iter()
        .collect();
        assert!(o.check(|k| full.get(k).cloned()).is_empty());
    }

    #[test]
    fn oracle_rejects_partial_committed_transaction() {
        let mut o = Oracle::default();
        let keys = vec![b"ta".to_vec(), b"tb".to_vec()];
        let values = vec![b"1".to_vec(), b"2".to_vec()];
        for (k, v) in keys.iter().zip(&values) {
            o.record(k, Some(v.clone()), true);
        }
        o.txns.push(TxnRecord { keys, values, acked: true });
        assert!(!o.check(|_| None).is_empty());
    }

    #[test]
    fn txn_keys_span_multiple_instances() {
        let part = HashPartitioner::new(WORKERS);
        for round in 0..ROUNDS {
            let keys = txn_keys(round);
            let spanned: HashSet<usize> = keys.iter().map(|k| part.shard_of(k)).collect();
            assert!(spanned.len() >= 2, "round {round}");
        }
    }

    #[test]
    fn workload_is_deterministic_and_exposes_enough_sync_points() {
        let a = dry_run_sync_points(7);
        assert!(a >= 220, "only {a} sync points — matrix space too small");
    }

    #[test]
    fn fault_free_run_has_no_violations() {
        let faulty = Arc::new(FaultyEnv::over_mem());
        let env: EnvRef = faulty.clone();
        let store = open_store(&env).unwrap();
        let oracle = run_workload(&store, 7);
        assert!(oracle.txns.iter().all(|t| t.acked));
        let v = oracle.check(|k| store.get(k).unwrap());
        assert!(v.is_empty(), "{v:?}");
        store.close();
        // And the state survives a clean reopen.
        let store = open_store(&env).unwrap();
        let v = oracle.check(|k| store.get(k).unwrap());
        assert!(v.is_empty(), "{v:?}");
        store.close();
    }

    #[test]
    fn a_few_crash_points_recover_cleanly() {
        for point in [3, 40, 120] {
            let out = run_crash_point(7, point);
            assert!(out.crashed, "point {point} did not fire");
            assert!(out.violations.is_empty(), "point {point}: {:?}", out.violations);
            // Once the crash lands past store creation the synced
            // creation-time journal prefix must survive recovery.
            if point >= 40 {
                assert!(
                    out.recovered_flight > 0,
                    "point {point}: no flight records recovered"
                );
            }
        }
    }

    #[test]
    fn migration_workload_stays_consistent_without_faults() {
        let faulty = Arc::new(FaultyEnv::over_mem());
        let env: EnvRef = faulty.clone();
        let store = P2Kvs::open(
            LsmFactory::new(engine_options(env.clone())),
            "db",
            migration_store_options(),
        )
        .unwrap();
        let shards = store.shards();
        let oracle = run_workload_hooked(&store, 7, |round, st| {
            st.migrate_shard(round % shards, (round + 1) % WORKERS).unwrap();
        });
        assert!(store.migrations() >= 1, "at least one real handoff happened");
        assert!(oracle.txns.iter().all(|t| t.acked));
        let v = oracle.check(|k| store.get(k).unwrap());
        assert!(v.is_empty(), "{v:?}");
        store.close();
        // The state survives a reopen under a fresh round-robin map.
        let store = P2Kvs::open(
            LsmFactory::new(engine_options(env.clone())),
            "db",
            migration_store_options(),
        )
        .unwrap();
        let v = oracle.check(|k| store.get(k).unwrap());
        assert!(v.is_empty(), "{v:?}");
        store.close();
    }

    #[test]
    fn scale_workload_stays_consistent_without_faults() {
        let faulty = Arc::new(FaultyEnv::over_mem());
        let env: EnvRef = faulty.clone();
        let store = P2Kvs::open(
            LsmFactory::new(engine_options(env.clone())),
            "db",
            migration_store_options(),
        )
        .unwrap();
        let oracle = run_workload_hooked(&store, 7, |round, st| {
            let n = if round % 2 == 0 { WORKERS + 1 } else { WORKERS - 1 };
            st.scale_workers(n).unwrap();
        });
        // The last round (7, odd) left the pool at WORKERS - 1.
        assert_eq!(store.workers(), WORKERS - 1);
        assert!(oracle.txns.iter().all(|t| t.acked));
        let v = oracle.check(|k| store.get(k).unwrap());
        assert!(v.is_empty(), "{v:?}");
        // Every scale operation is journaled: four grows from the even
        // rounds plus the regrow after each shrink, and matching drains.
        let recs = store.flight_records(usize::MAX);
        let spawns = recs.iter().filter(|r| r.kind == JournalKind::WorkerSpawn).count();
        let retires = recs.iter().filter(|r| r.kind == JournalKind::WorkerRetire).count();
        assert!(spawns >= 4, "only {spawns} worker_spawn records");
        assert!(retires >= 4, "only {retires} worker_retire records");
        store.close();
        // The state survives a reopen at the fixed size.
        let store = P2Kvs::open(
            LsmFactory::new(engine_options(env.clone())),
            "db",
            migration_store_options(),
        )
        .unwrap();
        let v = oracle.check(|k| store.get(k).unwrap());
        assert!(v.is_empty(), "{v:?}");
        store.close();
    }

    #[test]
    fn scale_crash_points_recover_cleanly() {
        for point in [25, 90, 170] {
            let out = run_crash_point_during_scale(17, point);
            assert!(out.crashed, "point {point} did not fire");
            assert!(out.violations.is_empty(), "point {point}: {:?}", out.violations);
        }
    }

    #[test]
    fn a_few_crash_points_recover_cleanly_with_cache() {
        for point in [25, 90, 170] {
            let out = run_crash_point_cached(13, point);
            assert!(out.crashed, "point {point} did not fire");
            assert!(out.violations.is_empty(), "point {point}: {:?}", out.violations);
        }
    }

    #[test]
    fn migration_crash_points_recover_cleanly() {
        for point in [25, 90, 170] {
            let out = run_crash_point_with_migration(11, point);
            assert!(out.crashed, "point {point} did not fire");
            assert!(out.violations.is_empty(), "point {point}: {:?}", out.violations);
        }
    }

    #[test]
    fn fault_free_backup_run_restores_the_cut_exactly() {
        // No crash planned: the online backup completes, the restored
        // copy matches the cut, and the post-cut rounds stay out of it.
        let out = run_crash_point_with_backup(7, u64::MAX);
        assert!(!out.crashed);
        assert!(out.backup_completed, "fault-free backup must complete");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn a_few_backup_crash_points_recover_cleanly() {
        // Point 30 lands inside store creation (before the cut — the
        // partial-directory rejection path); the later points land
        // around the freeze window and the streaming window.
        for point in [30, 150, 250] {
            let out = run_crash_point_with_backup(7, point);
            assert!(out.crashed, "point {point} did not fire");
            assert!(out.violations.is_empty(), "point {point}: {:?}", out.violations);
        }
    }

    #[test]
    fn queue_workload_exposes_sync_points_on_every_queue() {
        let per_queue = dry_run_queue_sync_points(7);
        assert_eq!(per_queue.len(), QUEUE_MATRIX_QUEUES);
        for (q, &n) in per_queue.iter().enumerate() {
            assert!(
                n >= 10,
                "queue {q} saw only {n} sync points — affinity routed nothing there \
                 ({per_queue:?})"
            );
        }
    }

    #[test]
    fn a_few_queue_crash_points_recover_cleanly() {
        for (queue, point) in [(0, 20), (1, 15), (2, 10), (3, 10)] {
            let out = run_queue_crash_point(7, queue, point);
            assert!(out.crashed, "queue {queue} point {point} did not fire");
            assert!(
                out.violations.is_empty(),
                "queue {queue} point {point}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn differential_runs_with_transient_faults_stay_in_envelope() {
        for seed in 0..3u64 {
            let v = differential_fault_run(seed, Some(30 + seed * 17), Some(10 + seed * 5));
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }
}
