//! Cross-crate integration: the full stack from YCSB workloads down
//! through the p2KVS framework, the LSM engine, and the simulated device.

use std::sync::Arc;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::{DeviceProfile, Env, SimEnv};
use ycsb::runner::{load_table, run_workload, KvClient, RunConfig};
use ycsb::workload::{Workload, WorkloadKind};

struct Client<E: p2kvs::KvsEngine>(P2Kvs<E>);

impl<E: p2kvs::KvsEngine> KvClient for Client<E> {
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.0.put(key, value).map_err(|e| e.to_string())
    }
    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.0.get(key).map_err(|e| e.to_string())
    }
    fn scan(&self, key: &[u8], len: usize) -> Result<usize, String> {
        self.0.scan(key, len).map(|v| v.len()).map_err(|e| e.to_string())
    }
}

fn open_store(env: Arc<SimEnv>, workers: usize) -> Client<lsmkv::Db> {
    let mut engine_opts = lsmkv::Options::rocksdb_like(env);
    engine_opts.memtable_size = 256 << 10;
    engine_opts.target_file_size = 128 << 10;
    let factory = LsmFactory::new(engine_opts);
    let mut opts = P2KvsOptions::with_workers(workers);
    opts.pin_workers = false;
    Client(P2Kvs::open(factory, "fullstack", opts).unwrap())
}

#[test]
fn ycsb_suite_runs_clean_over_p2kvs_on_simulated_nvme() {
    let env = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
    let client = open_store(env.clone(), 4);
    for kind in WorkloadKind::all() {
        let spec = Workload::table1(kind, 2_000, if kind == WorkloadKind::E { 300 } else { 2_000 });
        if kind != WorkloadKind::Load {
            load_table(&client, &spec, 4).unwrap();
        }
        let r = run_workload(&client, &spec, &RunConfig { threads: 4, rate_limit: 0 });
        assert_eq!(r.errors, 0, "workload {} had errors", kind.name());
        assert_eq!(r.ops, spec.op_count);
    }
    // The device actually saw traffic.
    let io = env.io_stats();
    assert!(io.bytes_written > 0 && io.wal_bytes > 0);
    assert!(io.syncs > 0, "manifest/txn syncs expected");
}

#[test]
fn workload_survives_power_failure_mid_run() {
    let env = Arc::new(SimEnv::with_profile(DeviceProfile::instant()));
    let factory = || {
        let mut o = lsmkv::Options::rocksdb_like(env.clone());
        o.memtable_size = 64 << 10;
        o.sync = lsmkv::SyncPolicy::Always; // Every group durable.
        LsmFactory::new(o)
    };
    let opts = || {
        let mut o = P2KvsOptions::with_workers(3);
        o.pin_workers = false;
        o
    };
    {
        let store = P2Kvs::open(factory(), "pf", opts()).unwrap();
        for i in 0..2_000 {
            store
                .put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Crash all engines without clean shutdown, then cut power.
        for e in store.engines() {
            // Engines are behind Arc; crash is consumed by owner — emulate
            // by syncing nothing and dropping the store abruptly.
            let _ = e;
        }
        store.close();
    }
    env.fs().power_failure();
    let store = P2Kvs::open(factory(), "pf", opts()).unwrap();
    for i in (0..2_000).step_by(97) {
        assert_eq!(
            store.get(format!("k{i:05}").as_bytes()).unwrap().unwrap(),
            format!("v{i}").as_bytes(),
            "synced write k{i:05} lost after power failure"
        );
    }
}

#[test]
fn all_engines_agree_on_the_same_history() {
    // The same deterministic op sequence applied to every engine in the
    // workspace must produce identical read results.
    let keys = ycsb::generator::KeySpace::hashed();
    let history: Vec<(bool, u64)> = (0..1_500u64)
        .map(|i| {
            let h = p2kvs_util::hash::mix64(i);
            (h % 5 != 0, h % 300) // 80% put / 20% delete over 300 keys
        })
        .collect();

    // Reference model.
    let mut model = std::collections::BTreeMap::new();
    for (i, (is_put, k)) in history.iter().enumerate() {
        if *is_put {
            model.insert(keys.key(*k), format!("v{i}").into_bytes());
        } else {
            model.remove(&keys.key(*k));
        }
    }

    let check = |name: &str, get: &dyn Fn(&[u8]) -> Option<Vec<u8>>| {
        for k in 0..300u64 {
            let key = keys.key(k);
            assert_eq!(get(&key), model.get(&key).cloned(), "{name} diverges on key {k}");
        }
    };

    // lsmkv directly.
    {
        let db = lsmkv::Db::open(lsmkv::Options::for_test(), "agree-lsm").unwrap();
        let wo = lsmkv::WriteOptions::default();
        for (i, (is_put, k)) in history.iter().enumerate() {
            if *is_put {
                db.put(&wo, &keys.key(*k), format!("v{i}").as_bytes()).unwrap();
            } else {
                db.delete(&wo, &keys.key(*k)).unwrap();
            }
        }
        db.flush().unwrap();
        check("lsmkv", &|k| db.get(k).unwrap());
    }
    // p2kvs over lsmkv.
    {
        let env = Arc::new(SimEnv::with_profile(DeviceProfile::instant()));
        let store = open_store(env, 4).0;
        for (i, (is_put, k)) in history.iter().enumerate() {
            if *is_put {
                store.put(&keys.key(*k), format!("v{i}").as_bytes()).unwrap();
            } else {
                store.delete(&keys.key(*k)).unwrap();
            }
        }
        check("p2kvs", &|k| store.get(k).unwrap());
    }
    // kvell.
    {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let mut o = kvell::KvellOptions::new(env);
        o.workers = 3;
        let db = kvell::KvellDb::open(o, "agree-kv").unwrap();
        for (i, (is_put, k)) in history.iter().enumerate() {
            if *is_put {
                db.put(&keys.key(*k), format!("v{i}").as_bytes()).unwrap();
            } else {
                let _ = db.delete(&keys.key(*k)).unwrap();
            }
        }
        check("kvell", &|k| db.get(k).unwrap());
    }
    // wtiger.
    {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let db = wtiger::WtDb::open(wtiger::WtOptions::new(env), "agree-wt").unwrap();
        for (i, (is_put, k)) in history.iter().enumerate() {
            if *is_put {
                db.put(&keys.key(*k), format!("v{i}").as_bytes()).unwrap();
            } else {
                let _ = db.delete(&keys.key(*k)).unwrap();
            }
        }
        check("wtiger", &|k| db.get(k).unwrap());
    }
}

#[test]
fn scan_results_identical_across_strategies_and_engines() {
    let keys = ycsb::generator::KeySpace::ordered();
    let mut stores: Vec<(&str, Box<dyn Fn(&[u8], usize) -> Vec<Vec<u8>>>)> = Vec::new();

    let env = Arc::new(SimEnv::with_profile(DeviceProfile::instant()));
    let store_pf = {
        let mut o = P2KvsOptions::with_workers(4);
        o.pin_workers = false;
        o.scan_strategy = p2kvs::ScanStrategy::ParallelFull;
        P2Kvs::open(LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone())), "sc-pf", o).unwrap()
    };
    let store_ad = {
        let mut o = P2KvsOptions::with_workers(4);
        o.pin_workers = false;
        o.scan_strategy = p2kvs::ScanStrategy::Adaptive;
        P2Kvs::open(LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone())), "sc-ad", o).unwrap()
    };
    for i in 0..3_000u64 {
        store_pf.put(&keys.key(i), b"v").unwrap();
        store_ad.put(&keys.key(i), b"v").unwrap();
    }
    stores.push((
        "parallel-full",
        Box::new(move |s, n| store_pf.scan(s, n).unwrap().into_iter().map(|(k, _)| k).collect()),
    ));
    stores.push((
        "adaptive",
        Box::new(move |s, n| store_ad.scan(s, n).unwrap().into_iter().map(|(k, _)| k).collect()),
    ));

    for start in [0u64, 1, 1499, 2990] {
        for n in [1usize, 7, 100, 500] {
            let expect: Vec<Vec<u8>> = (start..3_000).take(n).map(|i| keys.key(i)).collect();
            for (name, scan) in &stores {
                assert_eq!(scan(&keys.key(start), n), expect, "{name} start={start} n={n}");
            }
        }
    }
}
