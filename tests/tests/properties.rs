//! Property-based tests: random histories against reference models.

use std::sync::Arc;

use proptest::prelude::*;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions, WriteOp};

/// One step of a random history.
#[derive(Debug, Clone)]
enum Step {
    Put(u8, u8),
    Delete(u8),
    Batch(Vec<(u8, u8)>),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Step::Put(k, v)),
        any::<u8>().prop_map(Step::Delete),
        proptest::collection::vec((any::<u8>(), any::<u8>()), 1..8).prop_map(Step::Batch),
    ]
}

/// One step of the backup-torture history: the plain-op alphabet plus
/// async OBM bursts, cross-instance GSN transactions, and shard
/// migrations — everything that can be in flight around a backup cut.
#[derive(Debug, Clone)]
enum TortureStep {
    Put(u8, u8),
    Delete(u8),
    Burst(Vec<(u8, u8)>),
    Txn(Vec<(u8, u8)>),
    Migrate(u8, u8),
}

fn torture_step_strategy() -> impl Strategy<Value = TortureStep> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| TortureStep::Put(k, v)),
        2 => any::<u8>().prop_map(TortureStep::Delete),
        2 => proptest::collection::vec((any::<u8>(), any::<u8>()), 2..10)
            .prop_map(TortureStep::Burst),
        2 => proptest::collection::vec((any::<u8>(), any::<u8>()), 2..6)
            .prop_map(TortureStep::Txn),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(s, w)| TortureStep::Migrate(s, w)),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("key{k:03}").into_bytes()
}

fn value(v: u8) -> Vec<u8> {
    vec![v; 16]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any history of puts/deletes/transactional batches leaves the p2KVS
    /// store exactly equal to a BTreeMap model — including after a reopen.
    #[test]
    fn p2kvs_matches_model(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = || LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone()));
        let opts = || {
            let mut o = P2KvsOptions::with_workers(3);
            o.pin_workers = false;
            o
        };
        let mut model = std::collections::BTreeMap::new();
        {
            let store = P2Kvs::open(factory(), "prop", opts()).unwrap();
            for step in &steps {
                match step {
                    Step::Put(k, v) => {
                        store.put(&key(*k), &value(*v)).unwrap();
                        model.insert(key(*k), value(*v));
                    }
                    Step::Delete(k) => {
                        store.delete(&key(*k)).unwrap();
                        model.remove(&key(*k));
                    }
                    Step::Batch(kvs) => {
                        store
                            .write_batch(
                                kvs.iter()
                                    .map(|(k, v)| WriteOp::Put { key: key(*k), value: value(*v) })
                                    .collect(),
                            )
                            .unwrap();
                        for (k, v) in kvs {
                            model.insert(key(*k), value(*v));
                        }
                    }
                }
            }
            // Point reads match.
            for k in 0..=255u8 {
                prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
            }
            // Full scan matches the model exactly (order + content).
            let scanned = store.scan(b"", usize::MAX / 4).unwrap();
            let expect: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(&scanned, &expect);
            store.close();
        }
        // Reopen: recovery must restore the same state.
        let store = P2Kvs::open(factory(), "prop", opts()).unwrap();
        for k in 0..=255u8 {
            prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
    }

    /// Differential model check while shard ownership migrates beneath
    /// the workload: a store with shards decoupled from workers (2
    /// workers, 8 shards) and a deliberately tiny read cache matches the
    /// BTreeMap model exactly even when every few steps a shard is
    /// handed to another worker mid-history — per-key issue order
    /// survives the epoch fence, cross-shard `write_batch`es stay
    /// all-or-nothing, and the cache never leaks a stale value across a
    /// write, an eviction, or a handoff flush. Every step is followed by
    /// a read-your-writes probe (the first read may fill the cache, the
    /// second must hit it — both must agree with the model). Checked
    /// live, by full scan, and after a reopen under a fresh round-robin
    /// map.
    #[test]
    fn model_holds_while_shards_migrate(
        steps in proptest::collection::vec(step_strategy(), 1..120),
        stride in 1usize..8,
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = || LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone()));
        let opts = || {
            let mut o = P2KvsOptions::with_workers(2);
            o.shards = 8;
            o.pin_workers = false;
            // Small enough that the 256-key space cycles entries through
            // CLOCK eviction, so stale-on-refill bugs have a chance to
            // surface, not just stale-on-invalidate ones.
            o.cache_capacity = 16 << 10;
            o
        };
        let mut model = std::collections::BTreeMap::new();
        {
            let store = P2Kvs::open(factory(), "prop-mig", opts()).unwrap();
            for (i, step) in steps.iter().enumerate() {
                match step {
                    Step::Put(k, v) => {
                        store.put(&key(*k), &value(*v)).unwrap();
                        model.insert(key(*k), value(*v));
                        // Read-your-writes through the cache: fill, then hit.
                        prop_assert_eq!(store.get(&key(*k)).unwrap(), Some(value(*v)));
                        prop_assert_eq!(store.get(&key(*k)).unwrap(), Some(value(*v)));
                    }
                    Step::Delete(k) => {
                        store.delete(&key(*k)).unwrap();
                        model.remove(&key(*k));
                        prop_assert_eq!(store.get(&key(*k)).unwrap(), None);
                    }
                    Step::Batch(kvs) => {
                        store
                            .write_batch(
                                kvs.iter()
                                    .map(|(k, v)| WriteOp::Put { key: key(*k), value: value(*v) })
                                    .collect(),
                            )
                            .unwrap();
                        for (k, v) in kvs {
                            model.insert(key(*k), value(*v));
                        }
                        // The commit invalidates every touched key before
                        // acking; a later duplicate in the batch wins.
                        for (k, _) in kvs {
                            prop_assert_eq!(
                                store.get(&key(*k)).unwrap(),
                                model.get(&key(*k)).cloned()
                            );
                        }
                    }
                }
                if i % stride == 0 {
                    store
                        .migrate_shard(i % store.shards(), (i / stride) % 2)
                        .unwrap();
                }
            }
            for k in 0..=255u8 {
                prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
            }
            let scanned = store.scan(b"", usize::MAX / 4).unwrap();
            let expect: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(&scanned, &expect);
            store.close();
        }
        // Reopen under a fresh map: recovery must restore the same state.
        let store = P2Kvs::open(factory(), "prop-mig", opts()).unwrap();
        for k in 0..=255u8 {
            prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
    }

    /// Differential model check while the worker pool resizes beneath
    /// the workload: a store with shards decoupled from workers (8
    /// shards) and the deliberately tiny read cache matches the BTreeMap
    /// model exactly even when every few steps the pool is rescaled —
    /// including thrashing all the way down to one worker and back up to
    /// four, so retirements drain *every* shard a worker owns through
    /// the epoch-fenced handoff while the history keeps writing, and
    /// spawns hand fresh rings shards the very next resize takes away
    /// again. Per-key issue order survives the drains, cross-shard
    /// `write_batch`es stay all-or-nothing, the cache never leaks a
    /// stale value across a retirement's flush, and no operation fails
    /// solely because a resize was in flight (every step unwraps).
    /// Checked live, by full scan, and after a reopen at a fixed size.
    #[test]
    fn model_holds_while_pool_resizes(
        steps in proptest::collection::vec(step_strategy(), 1..120),
        stride in 1usize..8,
        targets in proptest::collection::vec(1usize..=4, 1..12),
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = || LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone()));
        let opts = || {
            let mut o = P2KvsOptions::with_workers(2);
            o.shards = 8;
            o.pin_workers = false;
            // Small enough that the 256-key space cycles entries through
            // CLOCK eviction while retirements flush moving shards.
            o.cache_capacity = 16 << 10;
            o
        };
        let mut model = std::collections::BTreeMap::new();
        {
            let store = P2Kvs::open(factory(), "prop-scale", opts()).unwrap();
            let mut resizes = 0usize;
            for (i, step) in steps.iter().enumerate() {
                match step {
                    Step::Put(k, v) => {
                        store.put(&key(*k), &value(*v)).unwrap();
                        model.insert(key(*k), value(*v));
                        // Read-your-writes through the cache: fill, then hit.
                        prop_assert_eq!(store.get(&key(*k)).unwrap(), Some(value(*v)));
                        prop_assert_eq!(store.get(&key(*k)).unwrap(), Some(value(*v)));
                    }
                    Step::Delete(k) => {
                        store.delete(&key(*k)).unwrap();
                        model.remove(&key(*k));
                        prop_assert_eq!(store.get(&key(*k)).unwrap(), None);
                    }
                    Step::Batch(kvs) => {
                        store
                            .write_batch(
                                kvs.iter()
                                    .map(|(k, v)| WriteOp::Put { key: key(*k), value: value(*v) })
                                    .collect(),
                            )
                            .unwrap();
                        for (k, v) in kvs {
                            model.insert(key(*k), value(*v));
                        }
                        for (k, _) in kvs {
                            prop_assert_eq!(
                                store.get(&key(*k)).unwrap(),
                                model.get(&key(*k)).cloned()
                            );
                        }
                    }
                }
                if i % stride == 0 {
                    // Walk the random resize schedule; consecutive 1s and
                    // 4s in `targets` thrash the pool across its full
                    // range (a no-op resize to the current size is also
                    // exercised and must succeed).
                    let n = targets[resizes % targets.len()];
                    store.scale_workers(n).unwrap();
                    prop_assert_eq!(store.workers(), n);
                    resizes += 1;
                }
            }
            for k in 0..=255u8 {
                prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
            }
            let scanned = store.scan(b"", usize::MAX / 4).unwrap();
            let expect: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(&scanned, &expect);
            store.close();
        }
        // Reopen at the fixed opening size: recovery must restore the
        // same state no matter what size the pool closed at.
        let store = P2Kvs::open(factory(), "prop-scale", opts()).unwrap();
        for k in 0..=255u8 {
            prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
    }

    /// Range queries over random histories equal the model's range view.
    #[test]
    fn ranges_match_model(
        steps in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..150),
        lo in any::<u8>(),
        width in 1u8..80,
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = LsmFactory::new(lsmkv::Options::rocksdb_like(env));
        let mut opts = P2KvsOptions::with_workers(4);
        opts.pin_workers = false;
        let store = P2Kvs::open(factory, "prop-range", opts).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (k, v) in &steps {
            store.put(&key(*k), &value(*v)).unwrap();
            model.insert(key(*k), value(*v));
        }
        let hi = lo.saturating_add(width);
        let got = store.range(&key(lo), &key(hi)).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = model
            .range(key(lo)..key(hi))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Differential run under injected transient faults: one WAL/manifest
    /// sync and one file read fail mid-workload, yet every acked-Ok write
    /// stays durable and committed transactions stay atomic — live and
    /// after a clean reopen. Unacked-transaction atomicity is exempt; see
    /// `Oracle::check_acked_only` for the no-undo limitation.
    #[test]
    fn transient_faults_never_lose_acked_writes(
        seed in 0u64..1 << 32,
        sync_n in 1u64..240,
        read_n in 1u64..160,
    ) {
        let violations = p2kvs_integration_tests::crash::differential_fault_run(
            seed,
            Some(sync_n),
            Some(read_n),
        );
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// The whole read-path surface — `scan`, `range`, and the streaming
    /// `iter`/`iter_from`/`iter_range` cursors, consumed per-entry and
    /// paginated — agrees with the BTreeMap model over random histories,
    /// for both scan strategies, with the chunk size forced tiny so every
    /// drain exercises many `ScanNext` resumes.
    #[test]
    fn scan_range_and_iter_match_model(
        steps in proptest::collection::vec(step_strategy(), 1..120),
        start in any::<u8>(),
        count in 0usize..300,
        lo in any::<u8>(),
        width in 0u8..100,
        page in 1usize..64,
        chunk in 1usize..16,
        adaptive in any::<bool>(),
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = LsmFactory::new(lsmkv::Options::rocksdb_like(env));
        let mut opts = P2KvsOptions::with_workers(3);
        opts.pin_workers = false;
        opts.scan_chunk_entries = chunk;
        opts.scan_strategy = if adaptive {
            p2kvs::ScanStrategy::Adaptive
        } else {
            p2kvs::ScanStrategy::ParallelFull
        };
        let store = P2Kvs::open(factory, "prop-iter", opts).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for step in &steps {
            match step {
                Step::Put(k, v) => {
                    store.put(&key(*k), &value(*v)).unwrap();
                    model.insert(key(*k), value(*v));
                }
                Step::Delete(k) => {
                    store.delete(&key(*k)).unwrap();
                    model.remove(&key(*k));
                }
                Step::Batch(kvs) => {
                    store
                        .write_batch(
                            kvs.iter()
                                .map(|(k, v)| WriteOp::Put { key: key(*k), value: value(*v) })
                                .collect(),
                        )
                        .unwrap();
                    for (k, v) in kvs {
                        model.insert(key(*k), value(*v));
                    }
                }
            }
        }
        let all: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();

        // scan(start, count): `count` entries from `start` on.
        let scanned = store.scan(&key(start), count).unwrap();
        let expect: Vec<_> = model
            .range(key(start)..)
            .take(count)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(&scanned, &expect);

        // range(lo, hi): the half-open window.
        let hi = lo.saturating_add(width);
        let got = store.range(&key(lo), &key(hi)).unwrap();
        let expect: Vec<_> = model
            .range(key(lo)..key(hi))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(&got, &expect);

        // iter(): the full store, consumed one entry at a time.
        let streamed: Vec<_> = store.iter().unwrap().map(|r| r.unwrap()).collect();
        prop_assert_eq!(&streamed, &all);

        // iter_from(start): paginated pulls of `page` entries.
        let mut it = store.iter_from(&key(start)).unwrap();
        let mut paged = Vec::new();
        loop {
            let c = it.next_chunk(page).unwrap();
            if c.is_empty() {
                break;
            }
            prop_assert!(c.len() <= page);
            paged.extend(c);
        }
        let expect: Vec<_> = model
            .range(key(start)..)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(&paged, &expect);

        // iter_range(lo, hi) agrees with range().
        let windowed: Vec<_> = store
            .iter_range(&key(lo), &key(hi))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(&windowed, &got);
    }

    /// Snapshot-consistency contract, lsmkv backend (native cursors): an
    /// iterator opened before a burst of writes sees *exactly* the
    /// pre-open state — overwrites, deletes, and inserts issued while the
    /// scan drains (forced across many chunk resumes) are all invisible.
    /// See DESIGN.md §8 for the per-backend contract this pins down.
    #[test]
    fn lsm_iter_snapshot_ignores_concurrent_history(
        preload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80),
        churn in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = LsmFactory::new(lsmkv::Options::rocksdb_like(env));
        let mut opts = P2KvsOptions::with_workers(3);
        opts.pin_workers = false;
        opts.scan_chunk_entries = 2; // many resumes while churn lands
        let store = P2Kvs::open(factory, "prop-snap", opts).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (k, v) in &preload {
            store.put(&key(*k), &value(*v)).unwrap();
            model.insert(key(*k), value(*v));
        }

        // The cursor opens synchronously on every worker, pinning the
        // snapshot *before* any churn below is applied.
        let mut it = store.iter().unwrap();
        for step in &churn {
            match step {
                Step::Put(k, _) => store.put(&key(*k), b"churn").unwrap(),
                Step::Delete(k) => store.delete(&key(*k)).unwrap(),
                Step::Batch(kvs) => {
                    for (k, _) in kvs {
                        store.put(&key(*k), b"churn").unwrap();
                    }
                }
            }
        }
        let drained: Vec<_> = it.by_ref().map(|r| r.unwrap()).collect();
        let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&drained, &expect);
    }

    /// Snapshot-consistency contract, emulated cursors (WiredTiger
    /// model): resume-from-last-key is only read-committed per chunk, so
    /// a concurrent overwrite MAY be visible — but the stream stays
    /// strictly sorted, every key untouched by the churn appears with its
    /// original value, and every surfaced value is one the store actually
    /// held at some point.
    #[test]
    fn emulated_iter_is_monotonic_read_committed(
        preload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80),
        overwrites in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = p2kvs::engine::WtFactory::new(wtiger::WtOptions::new(env));
        let mut opts = P2KvsOptions::with_workers(3);
        opts.pin_workers = false;
        opts.scan_chunk_entries = 2;
        let store = P2Kvs::open(factory, "prop-emu", opts).unwrap();
        let mut before = std::collections::BTreeMap::new();
        for (k, v) in &preload {
            store.put(&key(*k), &value(*v)).unwrap();
            before.insert(key(*k), value(*v));
        }

        let mut it = store.iter().unwrap();
        // Interleave churn with the drain so some chunks predate it and
        // some follow it.
        let mut drained: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        drained.extend(it.next_chunk(3).unwrap());
        let touched: std::collections::BTreeSet<Vec<u8>> = overwrites
            .iter()
            .map(|k| {
                store.put(&key(*k), b"churn").unwrap();
                key(*k)
            })
            .collect();
        loop {
            let c = it.next_chunk(7).unwrap();
            if c.is_empty() {
                break;
            }
            drained.extend(c);
        }

        prop_assert!(drained.windows(2).all(|w| w[0].0 < w[1].0), "not sorted");
        let seen: std::collections::BTreeMap<_, _> = drained.into_iter().collect();
        for (k, v) in &before {
            if touched.contains(k) {
                // Read-committed: either version, but the key is present
                // (overwrites never remove it).
                let got = seen.get(k);
                prop_assert!(
                    got == Some(v) || got.map(|g| g.as_slice()) == Some(b"churn".as_slice()),
                    "key {k:?} surfaced an impossible value"
                );
            } else {
                prop_assert_eq!(seen.get(k), Some(v), "untouched key lost or changed");
            }
        }
        for (k, v) in &seen {
            let valid = before.get(k).map(|old| old == v).unwrap_or(false)
                || (v.as_slice() == b"churn".as_slice() && touched.contains(k));
            prop_assert!(valid, "entry {k:?} was never written with that value");
        }
    }

    /// GSN-consistent online backup, differentially: a random torture
    /// stream (plain ops, async OBM bursts, cross-instance GSN
    /// transactions, shard migrations) with a backup cut at a random
    /// step and streamed **while the suffix keeps writing**. The restore
    /// must be byte-identical — full scan — to the BTreeMap oracle
    /// *filtered to the cut* (every write acked at GSN ≤ the horizon,
    /// nothing past it). Negative control: without the horizon filter
    /// (the final model) the diff must reappear whenever the post-cut
    /// suffix changed state — proving the filter is what the backup
    /// actually implements, not a vacuous equality.
    #[test]
    fn backup_matches_gsn_filtered_oracle(
        steps in proptest::collection::vec(torture_step_strategy(), 2..80),
        cut_at in 0usize..80,
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = || LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone()));
        let opts = || {
            let mut o = P2KvsOptions::with_workers(2);
            o.shards = 8;
            o.pin_workers = false;
            o
        };
        let store = P2Kvs::open(factory(), "prop-backup", opts()).unwrap();
        let workers = 2usize;
        let mut model = std::collections::BTreeMap::new();
        let cut = cut_at.min(steps.len() - 1);
        let mut handle = None;
        let mut cut_model = None;
        for (i, step) in steps.iter().enumerate() {
            if i == cut {
                // The workload is quiesced between steps, so the model
                // clone is exactly the acked state at the horizon.
                handle = Some(store.backup("prop-backup-dir").unwrap());
                cut_model = Some(model.clone());
            }
            match step {
                TortureStep::Put(k, v) => {
                    store.put(&key(*k), &value(*v)).unwrap();
                    model.insert(key(*k), value(*v));
                }
                TortureStep::Delete(k) => {
                    store.delete(&key(*k)).unwrap();
                    model.remove(&key(*k));
                }
                TortureStep::Burst(kvs) => {
                    // Same-class async burst: consecutive puts merge
                    // through OBM on the worker; quiesce before the next
                    // step so the model stays exact.
                    let (tx, rx) = std::sync::mpsc::channel();
                    for (k, v) in kvs {
                        let tx = tx.clone();
                        store
                            .put_async(&key(*k), &value(*v), move |r| {
                                r.unwrap();
                                let _ = tx.send(());
                            })
                            .unwrap();
                        model.insert(key(*k), value(*v));
                    }
                    drop(tx);
                    for _ in 0..kvs.len() {
                        rx.recv().unwrap();
                    }
                }
                TortureStep::Txn(kvs) => {
                    store
                        .write_batch(
                            kvs.iter()
                                .map(|(k, v)| WriteOp::Put { key: key(*k), value: value(*v) })
                                .collect(),
                        )
                        .unwrap();
                    for (k, v) in kvs {
                        model.insert(key(*k), value(*v));
                    }
                }
                TortureStep::Migrate(s, w) => {
                    store
                        .migrate_shard((*s as usize) % store.shards(), (*w as usize) % workers)
                        .unwrap();
                }
            }
        }
        let report = handle.take().unwrap().wait().unwrap();
        let cut_model = cut_model.unwrap();
        // The streamer counted exactly the keys live at the horizon.
        prop_assert_eq!(report.entries, cut_model.len() as u64);

        let restored = P2Kvs::restore(
            factory(),
            "prop-backup-dir",
            "prop-backup-restored",
            opts(),
        )
        .unwrap();
        let got = restored.scan(b"", usize::MAX / 4).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            cut_model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        // Byte-identical at the horizon.
        prop_assert_eq!(&got, &expect);
        // Negative control: the unfiltered (final) model must disagree
        // whenever the suffix changed state.
        let final_state: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        if final_state != expect {
            prop_assert_ne!(&got, &final_state);
        }
        // And taking the backup never perturbed the primary: it still
        // equals the full model, live and for every key.
        for k in 0..=255u8 {
            prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
    }

    /// The KVell engine also matches the model, including after recovery
    /// (index rebuilt by slab scan).
    #[test]
    fn kvell_matches_model(steps in proptest::collection::vec(step_strategy(), 1..100)) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let mut model = std::collections::BTreeMap::new();
        {
            let mut o = kvell::KvellOptions::new(env.clone());
            o.workers = 2;
            let db = kvell::KvellDb::open(o, "prop-kv").unwrap();
            for step in &steps {
                match step {
                    Step::Put(k, v) => {
                        db.put(&key(*k), &value(*v)).unwrap();
                        model.insert(key(*k), value(*v));
                    }
                    Step::Delete(k) => {
                        db.delete(&key(*k)).unwrap();
                        model.remove(&key(*k));
                    }
                    Step::Batch(kvs) => {
                        // KVell has no batch API: apply individually.
                        for (k, v) in kvs {
                            db.put(&key(*k), &value(*v)).unwrap();
                            model.insert(key(*k), value(*v));
                        }
                    }
                }
            }
            for k in 0..=255u8 {
                prop_assert_eq!(db.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
            }
        }
        let mut o = kvell::KvellOptions::new(env);
        o.workers = 2;
        let db = kvell::KvellDb::open(o, "prop-kv").unwrap();
        prop_assert_eq!(db.len().unwrap(), model.len());
        for k in 0..=255u8 {
            prop_assert_eq!(db.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
    }
}
