//! Property-based tests: random histories against reference models.

use std::sync::Arc;

use proptest::prelude::*;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions, WriteOp};

/// One step of a random history.
#[derive(Debug, Clone)]
enum Step {
    Put(u8, u8),
    Delete(u8),
    Batch(Vec<(u8, u8)>),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Step::Put(k, v)),
        any::<u8>().prop_map(Step::Delete),
        proptest::collection::vec((any::<u8>(), any::<u8>()), 1..8).prop_map(Step::Batch),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("key{k:03}").into_bytes()
}

fn value(v: u8) -> Vec<u8> {
    vec![v; 16]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any history of puts/deletes/transactional batches leaves the p2KVS
    /// store exactly equal to a BTreeMap model — including after a reopen.
    #[test]
    fn p2kvs_matches_model(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = || LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone()));
        let opts = || {
            let mut o = P2KvsOptions::with_workers(3);
            o.pin_workers = false;
            o
        };
        let mut model = std::collections::BTreeMap::new();
        {
            let store = P2Kvs::open(factory(), "prop", opts()).unwrap();
            for step in &steps {
                match step {
                    Step::Put(k, v) => {
                        store.put(&key(*k), &value(*v)).unwrap();
                        model.insert(key(*k), value(*v));
                    }
                    Step::Delete(k) => {
                        store.delete(&key(*k)).unwrap();
                        model.remove(&key(*k));
                    }
                    Step::Batch(kvs) => {
                        store
                            .write_batch(
                                kvs.iter()
                                    .map(|(k, v)| WriteOp::Put { key: key(*k), value: value(*v) })
                                    .collect(),
                            )
                            .unwrap();
                        for (k, v) in kvs {
                            model.insert(key(*k), value(*v));
                        }
                    }
                }
            }
            // Point reads match.
            for k in 0..=255u8 {
                prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
            }
            // Full scan matches the model exactly (order + content).
            let scanned = store.scan(b"", usize::MAX / 4).unwrap();
            let expect: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(&scanned, &expect);
            store.close();
        }
        // Reopen: recovery must restore the same state.
        let store = P2Kvs::open(factory(), "prop", opts()).unwrap();
        for k in 0..=255u8 {
            prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
    }

    /// Range queries over random histories equal the model's range view.
    #[test]
    fn ranges_match_model(
        steps in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..150),
        lo in any::<u8>(),
        width in 1u8..80,
    ) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let factory = LsmFactory::new(lsmkv::Options::rocksdb_like(env));
        let mut opts = P2KvsOptions::with_workers(4);
        opts.pin_workers = false;
        let store = P2Kvs::open(factory, "prop-range", opts).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (k, v) in &steps {
            store.put(&key(*k), &value(*v)).unwrap();
            model.insert(key(*k), value(*v));
        }
        let hi = lo.saturating_add(width);
        let got = store.range(&key(lo), &key(hi)).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = model
            .range(key(lo)..key(hi))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Differential run under injected transient faults: one WAL/manifest
    /// sync and one file read fail mid-workload, yet every acked-Ok write
    /// stays durable and committed transactions stay atomic — live and
    /// after a clean reopen. Unacked-transaction atomicity is exempt; see
    /// `Oracle::check_acked_only` for the no-undo limitation.
    #[test]
    fn transient_faults_never_lose_acked_writes(
        seed in 0u64..1 << 32,
        sync_n in 1u64..240,
        read_n in 1u64..160,
    ) {
        let violations = p2kvs_integration_tests::crash::differential_fault_run(
            seed,
            Some(sync_n),
            Some(read_n),
        );
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// The KVell engine also matches the model, including after recovery
    /// (index rebuilt by slab scan).
    #[test]
    fn kvell_matches_model(steps in proptest::collection::vec(step_strategy(), 1..100)) {
        let env: p2kvs_storage::EnvRef = Arc::new(p2kvs_storage::MemEnv::new());
        let mut model = std::collections::BTreeMap::new();
        {
            let mut o = kvell::KvellOptions::new(env.clone());
            o.workers = 2;
            let db = kvell::KvellDb::open(o, "prop-kv").unwrap();
            for step in &steps {
                match step {
                    Step::Put(k, v) => {
                        db.put(&key(*k), &value(*v)).unwrap();
                        model.insert(key(*k), value(*v));
                    }
                    Step::Delete(k) => {
                        db.delete(&key(*k)).unwrap();
                        model.remove(&key(*k));
                    }
                    Step::Batch(kvs) => {
                        // KVell has no batch API: apply individually.
                        for (k, v) in kvs {
                            db.put(&key(*k), &value(*v)).unwrap();
                            model.insert(key(*k), value(*v));
                        }
                    }
                }
            }
            for k in 0..=255u8 {
                prop_assert_eq!(db.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
            }
        }
        let mut o = kvell::KvellOptions::new(env);
        o.workers = 2;
        let db = kvell::KvellDb::open(o, "prop-kv").unwrap();
        prop_assert_eq!(db.len().unwrap(), model.len());
        for k in 0..=255u8 {
            prop_assert_eq!(db.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
    }
}
