//! The backup-torture matrix: GSN-consistent online snapshots under
//! power failure.
//!
//! Drives the migration workload from `p2kvs_integration_tests::crash`
//! with an **online backup** cut mid-stream (round 2 of 8) and streamed
//! concurrently with three more rounds of writes, migrations, and
//! cross-instance transactions, power-failing at sampled globally
//! numbered sync points. Crash points therefore land before the cut,
//! inside the freeze window, mid-stream, on the backup's own file
//! syncs, and after the `MANIFEST` sync. Every run validates:
//!
//! * the primary store recovers per the standard acked-writes oracle —
//!   taking a backup must never weaken crash recovery,
//! * a **completed** backup (durable `MANIFEST`) restores to a store
//!   holding exactly the cut-time acked state: no acked write missing,
//!   nothing from past the horizon leaking in (post-cut transactions
//!   use fresh keys and must be absent), flight journal gap-free with
//!   the cut's own `backup_begin`/`backup_complete` provenance,
//! * an **incomplete** backup directory is rejected by `P2Kvs::restore`
//!   with a clean `Error::Backup` — never a fabricated store.
//!
//! Reproduce a run locally with the seed printed in CI:
//! `P2KVS_BACKUP_SEED=<n> cargo test -p p2kvs-integration-tests
//! --release --test backup_matrix`.

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, WriteOp};
use p2kvs_integration_tests::crash::{
    dry_run_sync_points_with_backup, migration_store_options, run_crash_point_with_backup,
    WORKERS,
};

/// Default seed; override with `P2KVS_BACKUP_SEED` to explore.
const DEFAULT_SEED: u64 = 0xBAC_CAB5;

fn seed() -> u64 {
    match std::env::var("P2KVS_BACKUP_SEED") {
        Ok(s) => s.parse().expect("P2KVS_BACKUP_SEED must be a u64"),
        Err(_) => DEFAULT_SEED,
    }
}

/// The matrix proper: a stride over the full sync-point space (the
/// backup streamer runs concurrently with foreground syncs, so the
/// numbering shifts run-to-run — each run validates against its own
/// observed acks and its own backup fate).
#[test]
fn backup_matrix_recovers_and_restores_at_every_sampled_sync_point() {
    let seed = seed();
    let total = dry_run_sync_points_with_backup(seed);
    assert!(
        total >= 220,
        "workload exposes only {total} sync points — matrix space too small"
    );
    let points: Vec<u64> = (1..=total).step_by(5).collect();
    let mut crashed = 0usize;
    let mut completed = 0usize;
    let mut rejected = 0usize;
    let mut failures = Vec::new();
    for &point in &points {
        let out = run_crash_point_with_backup(seed, point);
        if out.crashed {
            crashed += 1;
            if out.backup_completed {
                completed += 1;
            } else {
                rejected += 1;
            }
        }
        for v in out.violations {
            failures.push(format!("seed {seed}, sync point {point} (backup): {v}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} backup-matrix violations:\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(
        crashed >= points.len() / 2,
        "only {crashed} of {} sampled points actually crashed (seed {seed})"
        , points.len()
    );
    // The matrix is not vacuous on either side of the cut: some crashes
    // must leave a completed backup that restored to the horizon, and
    // some must leave a partial directory that restore rejected.
    assert!(
        completed >= 1,
        "no crashed run completed its backup (seed {seed})"
    );
    assert!(
        rejected >= 1,
        "no crashed run exercised partial-backup rejection (seed {seed})"
    );
}

/// Regression: a `scan` whose cursors were parked in the handoff depot
/// by a migration must neither wedge a subsequent backup freeze nor
/// lose its place. The scan here holds live cursors on every shard,
/// every shard then changes owner (cursor state ferried through the
/// depot), and a backup cuts right behind the replays — the freeze
/// marker forks the engine snapshot without touching the scan table, so
/// the backup completes and the cursor resumes exactly where it parked.
#[test]
fn a_scan_parked_by_migration_never_wedges_the_backup() {
    let engine_opts = lsmkv::Options::for_test();
    let mut opts = migration_store_options();
    opts.scan_chunk_entries = 32; // many small pulls: cursors stay open
    let store = P2Kvs::open(LsmFactory::new(engine_opts.clone()), "scan-db", opts.clone())
        .expect("open");
    let n = 2000u32;
    for i in 0..n {
        store
            .put(format!("scan-{i:05}").as_bytes(), format!("v{i}").as_bytes())
            .expect("put");
    }
    let mut iter = store.iter().expect("open scan");
    let mut got = Vec::new();
    for _ in 0..100 {
        got.push(iter.next_entry().expect("scan chunk").expect("2000 entries"));
    }
    // Park the open cursors: every shard changes owner mid-scan.
    let owners = store.shard_owners();
    for (s, &owner) in owners.iter().enumerate() {
        store.migrate_shard(s, (owner + 1) % WORKERS).expect("migrate");
    }
    // The freeze markers land behind the replayed parcels on the new
    // owners; the backup must complete with the scan still open.
    let report = store
        .backup("scan-backup")
        .expect("cut")
        .wait()
        .expect("stream");
    assert_eq!(report.entries, n as u64, "every acked write is in the cut");
    // A write past the cut, while the scan is still parked mid-key-space.
    store
        .write_batch(vec![WriteOp::Put { key: b"zzz-post".to_vec(), value: b"1".to_vec() }])
        .expect("post-cut write");
    // The parked scan resumes exactly where it left off and sees a
    // consistent ordered view.
    while let Some(e) = iter.next_entry().expect("scan resumes") {
        got.push(e);
    }
    drop(iter);
    assert!(got.len() >= n as usize, "scan lost entries: {}", got.len());
    for (i, (k, v)) in got.iter().take(n as usize).enumerate() {
        assert_eq!(k, format!("scan-{i:05}").as_bytes(), "order broke at {i}");
        assert_eq!(v, format!("v{i}").as_bytes(), "value broke at {i}");
    }
    // The restored copy holds every pre-cut write and not the post-cut one.
    let restored = P2Kvs::restore(
        LsmFactory::new(engine_opts),
        "scan-backup",
        "scan-restored",
        opts,
    )
    .expect("restore");
    for i in (0..n).step_by(97) {
        assert_eq!(
            restored.get(format!("scan-{i:05}").as_bytes()).expect("read").as_deref(),
            Some(format!("v{i}").as_bytes()),
            "restored copy lost key {i}"
        );
    }
    assert_eq!(restored.get(b"zzz-post").expect("read"), None, "post-cut write leaked");
}
