//! Crash-point recovery matrix across the storage/WAL/GSN stack.
//!
//! Drives the seeded workload from `p2kvs_integration_tests::crash` over
//! a [`p2kvs_storage::FaultyEnv`], power-fails the store at each sampled
//! globally numbered sync point, recovers through `P2Kvs::open`, and
//! validates the recovered state against the acked-writes oracle:
//!
//! * no acked-Ok write (`SyncPolicy::Always`) may be lost,
//! * per key, recovery lands on the effect of some issue-order prefix no
//!   older than the last acked write,
//! * cross-instance transactions are atomic — all-present (mandatory when
//!   the commit was acked) or all-absent,
//! * the flight-recorder journal (`FLIGHT.log`) recovers as a gap-free
//!   sequence rooted at the creation-time `store_open` record — a crash
//!   may truncate its tail but never punch holes in the history.
//!
//! Reproduce a run locally with the seed printed in CI:
//! `P2KVS_CRASH_SEED=<n> cargo test -p p2kvs-integration-tests --release
//! --test crash_matrix`.

use p2kvs_integration_tests::crash::{
    dry_run_queue_sync_points, dry_run_sync_points, run_crash_point, run_crash_point_cached,
    run_crash_point_during_scale, run_crash_point_with_migration, run_queue_crash_point,
    sample_points, unfiltered_partial_txn, QUEUE_MATRIX_QUEUES,
};

/// Default seed; override with `P2KVS_CRASH_SEED` to explore.
const DEFAULT_SEED: u64 = 0xCAFE_F00D;

fn seed() -> u64 {
    match std::env::var("P2KVS_CRASH_SEED") {
        Ok(s) => s.parse().expect("P2KVS_CRASH_SEED must be a u64"),
        Err(_) => DEFAULT_SEED,
    }
}

/// The matrix proper: every one of the first 160 sync points plus a
/// stride over the rest — at least 200 crash points all told, each run
/// on a fresh env, each recovery checked against the oracle.
#[test]
fn crash_matrix_recovers_at_every_sampled_sync_point() {
    let seed = seed();
    let total = dry_run_sync_points(seed);
    assert!(
        total >= 220,
        "workload exposes only {total} sync points — matrix space too small"
    );
    let points = sample_points(total);
    assert!(points.len() >= 200, "only {} points sampled", points.len());

    let mut crashed = 0usize;
    let mut journaled = 0usize;
    let mut failures = Vec::new();
    for &point in &points {
        let out = run_crash_point(seed, point);
        if out.crashed {
            crashed += 1;
        }
        if out.recovered_flight > 0 {
            journaled += 1;
        }
        for v in out.violations {
            failures.push(format!("seed {seed}, sync point {point}: {v}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} recovery violations:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // Late points may not fire when a run's engine-internal interleaving
    // merges a few more group commits than the dry run; the bulk must.
    assert!(
        crashed >= 200,
        "only {crashed} of {} sampled points actually crashed (seed {seed})",
        points.len()
    );
    // The flight recorder is not vacuous: only crashes that land inside
    // store creation (before the journal's own first syncs) may recover
    // an empty FLIGHT.log, so the bulk of the matrix must bring records
    // back (each already checked gap-free above).
    assert!(
        journaled >= points.len() / 2,
        "only {journaled} of {} crash points recovered flight records (seed {seed})",
        points.len()
    );
}

/// The handoff matrix: the same oracle discipline, but the store opens
/// with shards decoupled from workers and every workload round ends
/// with an epoch-fenced shard migration, so sampled crash points land
/// before, during, and after handoffs. Recovery reopens under a fresh
/// round-robin map — no acked write may depend on which worker owned a
/// shard when the power failed. Sampled at a stride to bound CI time.
#[test]
fn crash_matrix_recovers_across_shard_migrations() {
    let seed = seed();
    let total = dry_run_sync_points(seed);
    // The migration store opens twice as many instances, so its sync
    // numbering shifts relative to the dry run; a stride over the dry
    // run's range still covers creation, handoff, and steady state.
    let points: Vec<u64> = (1..=total).step_by(5).collect();
    let mut crashed = 0usize;
    let mut journaled = 0usize;
    let mut failures = Vec::new();
    for &point in &points {
        let out = run_crash_point_with_migration(seed, point);
        if out.crashed {
            crashed += 1;
        }
        if out.recovered_flight > 0 {
            journaled += 1;
        }
        for v in out.violations {
            failures.push(format!("seed {seed}, sync point {point} (migration): {v}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} recovery violations under migration:\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(
        crashed >= points.len() / 2,
        "only {crashed} of {} sampled points actually crashed (seed {seed})",
        points.len()
    );
    // Handoffs are journaled (`handoff_out`/`shard_install`); the bulk
    // of the migration matrix must recover those histories gap-free.
    assert!(
        journaled >= points.len() / 2,
        "only {journaled} of {} migration crash points recovered flight records (seed {seed})",
        points.len()
    );
}

/// The elastic-pool matrix: the same oracle discipline, but every
/// workload round ends with a `scale_workers` call thrashing the pool
/// around its opening size — even rounds grow a worker (fresh ring,
/// journaled `worker_spawn`), odd rounds retire two (every owned shard
/// drained through the epoch-fenced handoff, rings closed, threads
/// joined, journaled `worker_retire`). Sampled crash points land
/// before, between, and after the per-shard drains of an in-flight
/// retirement. Recovery reopens at the fixed size: no acked write may
/// depend on how many workers were alive — or which were mid-drain —
/// when the power failed, and the flight journal must come back
/// gap-free. Sampled at a stride to bound CI time.
#[test]
fn crash_matrix_recovers_during_scale() {
    let seed = seed();
    let total = dry_run_sync_points(seed);
    // Scale operations add their own durable journal syncs, so the live
    // run's numbering shifts relative to the dry run; a stride over the
    // dry run's range still covers creation, in-flight drains, spawns,
    // and steady state.
    let points: Vec<u64> = (1..=total).step_by(5).collect();
    let mut crashed = 0usize;
    let mut journaled = 0usize;
    let mut failures = Vec::new();
    for &point in &points {
        let out = run_crash_point_during_scale(seed, point);
        if out.crashed {
            crashed += 1;
        }
        if out.recovered_flight > 0 {
            journaled += 1;
        }
        for v in out.violations {
            failures.push(format!("seed {seed}, sync point {point} (scale): {v}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} recovery violations during scale:\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(
        crashed >= points.len() / 2,
        "only {crashed} of {} sampled points actually crashed (seed {seed})",
        points.len()
    );
    // Spawns and retirements are journaled durably; the bulk of the
    // matrix must recover those histories gap-free.
    assert!(
        journaled >= points.len() / 2,
        "only {journaled} of {} scale crash points recovered flight records (seed {seed})",
        points.len()
    );
}

/// The cached matrix: the migration layout with the hot-record read
/// cache enabled and per-round reads warming it, so crash points land
/// while cached entries, write invalidations, and handoff-driven cache
/// flushes are in flight. The cache is volatile — the oracle contract
/// is identical — and every recovery must journal a fresh `cache_flush`
/// reset record sequenced after everything it recovered (asserted
/// inside `run_crash_point_cached`). Sampled at a stride to bound CI
/// time.
#[test]
fn crash_matrix_recovers_with_the_read_cache_enabled() {
    let seed = seed();
    let total = dry_run_sync_points(seed);
    // The cached store opens the same instances as the migration
    // layout; reads and cache traffic add no syncs (the cache is
    // memory-only and its journal records are non-durable), so a stride
    // over the dry run's range covers creation, warm cache, handoff
    // flushes, and steady state.
    let points: Vec<u64> = (1..=total).step_by(7).collect();
    let mut crashed = 0usize;
    let mut failures = Vec::new();
    for &point in &points {
        let out = run_crash_point_cached(seed, point);
        if out.crashed {
            crashed += 1;
        }
        for v in out.violations {
            failures.push(format!("seed {seed}, sync point {point} (cached): {v}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} recovery violations with the cache on:\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(
        crashed >= points.len() / 2,
        "only {crashed} of {} sampled points actually crashed (seed {seed})",
        points.len()
    );
}

/// The subcompaction matrix: the workload runs with parallel compaction
/// (two background jobs, three-way subcompactions) on a four-queue
/// device with queue affinity on, and the power fails at the Nth sync
/// **of one submission queue** — so sampled points land mid-compaction,
/// after some subcompactions synced their output and before their
/// siblings did. Recovery must satisfy the standard oracle contract and
/// a full scan of the recovered store must read every referenced SST:
/// no version set may install truncated compaction output.
#[test]
fn crash_matrix_recovers_mid_subcompaction_on_every_queue() {
    let seed = seed();
    let per_queue = dry_run_queue_sync_points(seed);
    let mut sampled = 0usize;
    let mut crashed = 0usize;
    let mut failures = Vec::new();
    for (queue, &total) in per_queue.iter().enumerate().take(QUEUE_MATRIX_QUEUES) {
        assert!(
            total >= 10,
            "queue {queue} exposes only {total} sync points — affinity routed \
             nothing there ({per_queue:?})"
        );
        // Per-queue numbering keeps the target deterministic even though
        // concurrent compaction threads shuffle the global order; a
        // stride over each queue's range covers WAL-only points, flush
        // output, and mid-subcompaction output syncs.
        for point in (1..=total).step_by(6) {
            sampled += 1;
            let out = run_queue_crash_point(seed, queue, point);
            if out.crashed {
                crashed += 1;
            }
            for v in out.violations {
                failures.push(format!("seed {seed}, queue {queue}, sync point {point}: {v}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} recovery violations in the queue matrix:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // Off-home-queue sync counts vary with compaction scheduling, so a
    // tail of sampled points may not fire; the bulk must.
    assert!(
        crashed >= sampled / 2,
        "only {crashed} of {sampled} sampled queue points actually crashed (seed {seed})"
    );
}

/// Negative control: the oracle and the GSN rollback are not vacuous.
/// Replaying the same crash states *without* the recovery filter must
/// expose a partially applied cross-instance transaction at some crash
/// point — the state §4.5's rollback exists to hide — while the real
/// recovery path at that very point reports none.
#[test]
fn unfiltered_replay_exposes_partial_transactions() {
    let seed = seed();
    let total = dry_run_sync_points(seed);
    let mut found = None;
    for point in 1..=total {
        if let Some((present, of)) = unfiltered_partial_txn(seed, point) {
            found = Some((point, present, of));
            break;
        }
    }
    let (point, present, of) = found.expect(
        "no crash point left a partial transaction visible to unfiltered replay — \
         the atomicity half of the oracle would be vacuous",
    );
    assert!(present > 0 && present < of);
    let out = run_crash_point(seed, point);
    assert!(
        out.violations.is_empty(),
        "filtered recovery at sync point {point} must hide the partial txn: {:?}",
        out.violations
    );
}
